// The pass registry: every analysis ddplint runs is a Pass — a named
// function from one lexed file (plus the shared configuration) to a list
// of violations. main.cc drives the registry over every file; the waiver
// layer filters afterwards keyed by each violation's rule name, so passes
// never need to know about waivers beyond tagging rules correctly.

#ifndef DDPKIT_TOOLS_DDPLINT_PASSES_H_
#define DDPKIT_TOOLS_DDPLINT_PASSES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ddplint/config.h"
#include "ddplint/lexer.h"
#include "ddplint/waivers.h"

namespace ddplint {

struct Violation {
  std::string path;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;  // complete sentence, both sites where relevant
  std::string fixit;
};

struct PassContext {
  const SourceFile& file;
  const Waivers& waivers;
  /// Null when the corresponding declaration file was not found; passes
  /// that need it skip themselves (main.cc warns once).
  const LockOrderConfig* lock_order;
  const IncludeDagConfig* include_dag;
};

/// One registered analysis. `name` doubles as the --selftest filter group.
struct Pass {
  const char* name;
  void (*run)(const PassContext& ctx, std::vector<Violation>* out);
};

/// All passes in execution order:
///   token-rules        unannotated-mutex, check-in-comm, throw-boundary,
///                      banned-nondeterminism, nodiscard-status,
///                      nodiscard-workhandle, raw-elementwise-loop,
///                      raw-wire-io (the v1 rule set)
///   lock-order         nested acquisitions vs the declared hierarchy
///   blocking-under-lock  blocking calls while a MutexLock is live
///   include-dag        module layering of #include edges
///   store-key-schema   Store keys minted outside comm/store_keys.h
const std::vector<Pass>& Passes();

void RunTokenRules(const PassContext& ctx, std::vector<Violation>* out);
void RunLockOrder(const PassContext& ctx, std::vector<Violation>* out);
void RunBlockingUnderLock(const PassContext& ctx, std::vector<Violation>* out);
void RunIncludeDag(const PassContext& ctx, std::vector<Violation>* out);
void RunStoreKeySchema(const PassContext& ctx, std::vector<Violation>* out);

/// Selftest entry (selftest.cc): runs every embedded case, or only the
/// cases of one pass when `filter` is non-empty. Returns the exit status.
int RunSelfTest(const std::string& filter);

}  // namespace ddplint

#endif  // DDPKIT_TOOLS_DDPLINT_PASSES_H_
