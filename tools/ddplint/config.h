// Declarative configuration for the scope-aware passes.
//
// tools/ddplint/lock_order.txt declares the lock hierarchy (DESIGN.md §8)
// and extends the blocking-call set:
//
//   level <name>                  declare a hierarchy level
//   leaf <name>                   declare a level that must never be held
//                                 across any other mapped acquisition
//   before <a> <b>                a may be held while acquiring b (the
//                                 transitive closure is enforced; cycles
//                                 are a configuration error)
//   mutex <level> <path|*> <pat>  map a mutex to a level. <pat> is either a
//                                 bare identifier (matched against the last
//                                 identifier of an acquisition expression,
//                                 in files whose path contains <path>) or a
//                                 full expression pattern like state->mutex
//                                 (matched against the whole normalized
//                                 expression; use * for any path)
//   blocking <name>               add a call name to the blocking set
//   blocking-suffix <sfx>         add a blocking name suffix (WithRetry)
//
// tools/ddplint/include_dag.txt declares the module layering for src/:
//
//   module <name> : <deps...>     files under src/<name>/ may #include
//                                 "X/..." only for X == <name> or X listed
//                                 in <deps> (transitivity is NOT implied:
//                                 every edge must be declared). The declared
//                                 edges must form a DAG.

#ifndef DDPKIT_TOOLS_DDPLINT_CONFIG_H_
#define DDPKIT_TOOLS_DDPLINT_CONFIG_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ddplint {

struct LockOrderConfig {
  std::set<std::string> levels;
  std::set<std::string> leaves;  // subset of levels
  /// after[a] = every level that a is declared (directly) before.
  std::map<std::string, std::set<std::string>> after;

  struct MutexMap {
    std::string level;
    std::string path_substr;  // "*" = any file
    std::string pattern;      // identifier or full expression pattern
    bool is_expr = false;     // pattern contains -> . ( — match whole expr
  };
  std::vector<MutexMap> mutexes;

  std::set<std::string> blocking_names;
  std::set<std::string> blocking_suffixes;

  /// True when the declared partial order (transitively) places a before b.
  bool Before(const std::string& a, const std::string& b) const;

  /// Maps an acquisition expression (normalized: no '&', no spaces) in the
  /// given file to a declared level; nullopt when unmapped.
  std::optional<std::string> Resolve(const std::string& path,
                                     const std::string& expr) const;
};

struct IncludeDagConfig {
  /// allowed[m] = modules that files under src/<m>/ may include (m itself
  /// is always allowed).
  std::map<std::string, std::set<std::string>> allowed;

  bool Declared(const std::string& module) const {
    return allowed.count(module) > 0;
  }
};

/// Parsers return false and set *error on malformed directives, references
/// to undeclared levels/modules, or cyclic declarations.
bool ParseLockOrder(const std::string& text, LockOrderConfig* out,
                    std::string* error);
bool ParseIncludeDag(const std::string& text, IncludeDagConfig* out,
                     std::string* error);

/// Built-in blocking-call set (the config file only ever extends it):
/// Wait/WaitFor/WaitUntil/WaitAndRethrow, SendAll/RecvAll/SendRecvAll,
/// SendFrame/RecvFrame, ParallelFor/ParallelReduce, sleep_for/sleep_until,
/// Barrier, plus the *WithRetry suffix family. Poll is special-cased by the
/// blocking pass: it only blocks when spun in a loop.
const std::set<std::string>& DefaultBlockingNames();
const std::set<std::string>& DefaultBlockingSuffixes();

}  // namespace ddplint

#endif  // DDPKIT_TOOLS_DDPLINT_CONFIG_H_
