// lock-order: verifies every nested MutexLock acquisition against the
// declared hierarchy (tools/ddplint/lock_order.txt, mirroring DESIGN.md
// §8). Three findings:
//
//   - inversion: the inner lock's level is declared before the outer's —
//     the report cites BOTH acquisition sites.
//   - undeclared nesting: both levels are mapped but no before-path
//     connects outer to inner; the hierarchy file must declare every edge.
//   - leaf held across an acquisition: leaf levels (metrics, trace,
//     telemetry, pool, log) are terminal by contract.
//   - a contradicting ACQUIRED_BEFORE/ACQUIRED_AFTER annotation: the
//     same-class pairs Clang can verify must agree with the cross-class
//     hierarchy this file declares, or the two checkers fight each other.
//
// Pairs with an unmapped side stay silent: the per-file scan sees helpers
// and locals the hierarchy does not speak about, and guessing would drown
// real inversions in noise.

#include <string>
#include <vector>

#include "ddplint/lexer.h"
#include "ddplint/passes.h"
#include "ddplint/scopes.h"

namespace ddplint {
namespace {

const char kRule[] = "lock-order";

std::string Site(const LockSite& lock, const PassContext& ctx) {
  return lock.expr + " (" + ctx.file.path + ":" +
         std::to_string(lock.line + 1) +
         (lock.from_requires ? ", via REQUIRES" : "") + ")";
}

/// Checks `Mutex <member> ACQUIRED_BEFORE(args...)` / ACQUIRED_AFTER
/// declarations against the declared hierarchy: an annotation Clang
/// enforces must not contradict what lock_order.txt declares.
void CheckOrderAnnotations(const PassContext& ctx, const LockOrderConfig& order,
                           std::vector<Violation>* out) {
  for (size_t ln = 0; ln < ctx.file.code.size(); ++ln) {
    const std::string& line = ctx.file.code[ln];
    for (const char* macro : {"ACQUIRED_BEFORE", "ACQUIRED_AFTER"}) {
      const size_t at = line.find(macro);
      if (at == std::string::npos) continue;
      if (at > 0 && IsIdentChar(line[at - 1])) continue;
      const bool before = macro[9] == 'B';

      // The member being declared: the identifier right before the macro.
      size_t end = at;
      while (end > 0 && (line[end - 1] == ' ' || line[end - 1] == '\t')) {
        --end;
      }
      size_t begin = end;
      while (begin > 0 && IsIdentChar(line[begin - 1])) --begin;
      if (begin == end) continue;
      const std::string member = line.substr(begin, end - begin);
      const auto member_level = order.Resolve(ctx.file.path, member);
      if (!member_level.has_value()) continue;

      // The annotation's arguments (same line; multi-line forms are rare
      // enough to stay out of scope for a textual pass).
      const size_t open = line.find('(', at);
      const size_t close =
          open == std::string::npos ? std::string::npos : line.find(')', open);
      if (close == std::string::npos) continue;
      std::string arg;
      std::vector<std::string> args;
      for (size_t i = open + 1; i <= close; ++i) {
        if (i == close || line[i] == ',') {
          if (!arg.empty()) args.push_back(arg);
          arg.clear();
        } else if (line[i] != ' ' && line[i] != '\t' && line[i] != '&') {
          arg.push_back(line[i]);
        }
      }
      for (const std::string& other : args) {
        const auto other_level = order.Resolve(ctx.file.path, other);
        if (!other_level.has_value() || *other_level == *member_level) {
          continue;
        }
        const std::string& first = before ? *member_level : *other_level;
        const std::string& second = before ? *other_level : *member_level;
        if (order.Before(first, second)) continue;
        if (ctx.waivers.Covers(kRule, ln)) continue;
        out->push_back(Violation{
            ctx.file.path, ln + 1, kRule,
            std::string(macro) + "(" + other + ") on " + member +
                " contradicts the declared hierarchy: no 'before " + first +
                " " + second + "' path exists in tools/ddplint/lock_order.txt",
            "make the annotation and the hierarchy file agree — they are "
            "checked by different tools (Clang vs ddplint) and must tell "
            "the same story"});
      }
    }
  }
}

}  // namespace

void RunLockOrder(const PassContext& ctx, std::vector<Violation>* out) {
  if (ctx.lock_order == nullptr) return;
  const LockOrderConfig& order = *ctx.lock_order;
  if (ctx.waivers.file_rules.count(kRule) > 0) return;

  CheckOrderAnnotations(ctx, order, out);

  const ScopeScan scan = ScanScopes(ctx.file, WatchSet{});
  for (const NestedAcquisition& nest : scan.nested) {
    const auto inner = order.Resolve(ctx.file.path, nest.inner.expr);
    if (!inner.has_value()) continue;
    if (ctx.waivers.Covers(kRule, nest.inner.line)) continue;

    for (const LockSite& held : nest.held) {
      const auto outer = order.Resolve(ctx.file.path, held.expr);
      if (!outer.has_value()) continue;

      if (order.leaves.count(*outer) > 0) {
        out->push_back(Violation{
            ctx.file.path, nest.inner.line + 1, kRule,
            "leaf lock " + Site(held, ctx) + " [" + *outer +
                "] is held while acquiring " + Site(nest.inner, ctx) + " [" +
                *inner +
                "] — leaf levels are terminal: nothing may be acquired "
                "under them",
            "release the leaf lock (copy what you need out of the guarded "
            "state) before acquiring the next lock, or demote the level in "
            "tools/ddplint/lock_order.txt if the hierarchy truly changed"});
        continue;
      }
      if (*outer == *inner) continue;  // re-entry is the deadlock pass's job
      if (order.Before(*outer, *inner)) continue;

      if (order.Before(*inner, *outer)) {
        out->push_back(Violation{
            ctx.file.path, nest.inner.line + 1, kRule,
            "lock-order inversion: " + Site(nest.inner, ctx) + " [" + *inner +
                "] acquired while holding " + Site(held, ctx) + " [" + *outer +
                "], but the hierarchy declares " + *inner + " before " +
                *outer,
            "acquire " + *inner + " first (or drop " + *outer +
                " across the call) per DESIGN.md §8; if the hierarchy "
                "itself is wrong, fix tools/ddplint/lock_order.txt in the "
                "same change"});
      } else {
        out->push_back(Violation{
            ctx.file.path, nest.inner.line + 1, kRule,
            "undeclared lock nesting: " + Site(nest.inner, ctx) + " [" +
                *inner + "] acquired while holding " + Site(held, ctx) +
                " [" + *outer + "], but no 'before " + *outer + " " + *inner +
                "' path is declared",
            "declare the edge in tools/ddplint/lock_order.txt (and "
            "DESIGN.md §8) if this nesting is intended, or restructure so "
            "the locks do not nest"});
      }
    }
  }
}

}  // namespace ddplint
