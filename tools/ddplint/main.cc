// ddplint v2 driver — lexes each file once, runs the pass registry, and
// reports:
//
//   ddplint [flags] <path>...        lint files or directory trees
//   ddplint --changed-files          lint the paths listed on stdin (CI
//                                    feeds `git diff --name-only` here)
//   ddplint --selftest[=group]       run the embedded invariant snippets
//   --format=github                  emit ::error workflow annotations
//   --lock-order=<file>              lock hierarchy declaration
//   --include-dag=<file>             module layering declaration
//                                    (both default to tools/ddplint/*.txt
//                                    relative to the working directory; a
//                                    missing file skips the passes that
//                                    need it, with a warning)
//
// Directory walks skip `testdata` components: those trees hold fixtures
// whose violations are the point (the include-DAG regression test).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "ddplint/config.h"
#include "ddplint/lexer.h"
#include "ddplint/passes.h"
#include "ddplint/waivers.h"
#include "tool_util.h"

namespace ddplint {

const std::vector<Pass>& Passes() {
  static const std::vector<Pass>* passes = new std::vector<Pass>{
      {"token-rules", RunTokenRules},
      {"lock-order", RunLockOrder},
      {"blocking-under-lock", RunBlockingUnderLock},
      {"include-dag", RunIncludeDag},
      {"store-key-schema", RunStoreKeySchema},
  };
  return *passes;
}

namespace {

struct Options {
  bool github_format = false;
  const LockOrderConfig* lock_order = nullptr;
  const IncludeDagConfig* include_dag = nullptr;
};

bool LintFile(const std::string& path, const Options& opt,
              std::vector<Violation>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ddplint: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const SourceFile file = Lex(path, buffer.str());
  const Waivers waivers = ExtractWaivers(file);
  const PassContext ctx{file, waivers, opt.lock_order, opt.include_dag};
  for (const Pass& pass : Passes()) pass.run(ctx, out);
  return true;
}

bool LintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

/// Fixture trees are allowed to violate rules — that is what they are for.
bool InTestdata(const std::filesystem::path& p) {
  for (const auto& part : p) {
    if (part == "testdata") return true;
  }
  return false;
}

int LintPaths(const std::vector<std::string>& paths, const Options& opt) {
  std::vector<Violation> violations;
  bool io_error = false;
  for (const std::string& arg : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file() && LintableExtension(entry.path()) &&
            !InTestdata(entry.path())) {
          io_error |= !LintFile(entry.path().string(), opt, &violations);
        }
      }
    } else {
      io_error |= !LintFile(arg, opt, &violations);
    }
  }
  // Directory iteration order is filesystem-dependent; sort for stable
  // CI logs.
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  for (const Violation& v : violations) {
    if (opt.github_format) {
      // Workflow-command annotations; GitHub reads them from stdout.
      std::printf("::error file=%s,line=%zu,title=ddplint %s::%s (fix: %s)\n",
                  v.path.c_str(), v.line, v.rule.c_str(), v.message.c_str(),
                  v.fixit.c_str());
    } else {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n  fix: %s\n", v.path.c_str(),
                   v.line, v.rule.c_str(), v.message.c_str(),
                   v.fixit.c_str());
    }
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "ddplint: %zu violation(s)\n", violations.size());
  }
  return violations.empty() && !io_error ? 0 : 1;
}

/// Loads a pass config: an explicit --flag path must exist (hard error); the
/// default path may be absent, which skips the passes that need it.
template <typename Config>
bool LoadConfig(const std::string& explicit_path,
                const std::string& default_path, const char* what,
                bool (*parse)(const std::string&, Config*, std::string*),
                std::optional<Config>* out) {
  const std::string path =
      explicit_path.empty() ? default_path : explicit_path;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!explicit_path.empty()) {
      std::fprintf(stderr, "ddplint: cannot open %s file %s\n", what,
                   path.c_str());
      return false;
    }
    std::fprintf(stderr,
                 "ddplint: warning: %s not found at %s; the passes that "
                 "need it are skipped\n",
                 what, path.c_str());
    return true;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Config cfg;
  std::string error;
  if (!parse(buffer.str(), &cfg, &error)) {
    std::fprintf(stderr, "ddplint: %s\n", error.c_str());
    return false;
  }
  *out = std::move(cfg);
  return true;
}

int Run(const ddpkit::tools::ToolArgs& args) {
  std::vector<std::string> paths = args.positional;
  if (args.HasFlag("changed-files")) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      std::error_code ec;
      const std::filesystem::path p(line);
      // Deleted files still appear in a diff; non-C++ paths are not ours.
      if (!std::filesystem::is_regular_file(p, ec)) continue;
      if (!LintableExtension(p) || InTestdata(p)) continue;
      paths.push_back(line);
    }
    if (paths.empty()) {
      std::fprintf(stderr, "ddplint: no lintable files among the changes\n");
      return 0;
    }
  } else if (paths.empty()) {
    std::fprintf(stderr, "ddplint: no paths given (or use --changed-files)\n");
    return 1;
  }

  std::optional<LockOrderConfig> lock_order;
  std::optional<IncludeDagConfig> include_dag;
  if (!LoadConfig(args.FlagValue("lock-order"), "tools/ddplint/lock_order.txt",
                  "lock-order config", ParseLockOrder, &lock_order) ||
      !LoadConfig(args.FlagValue("include-dag"),
                  "tools/ddplint/include_dag.txt", "include-dag config",
                  ParseIncludeDag, &include_dag)) {
    return 1;
  }

  Options opt;
  opt.github_format = args.FlagValue("format") == "github";
  opt.lock_order = lock_order ? &*lock_order : nullptr;
  opt.include_dag = include_dag ? &*include_dag : nullptr;
  return LintPaths(paths, opt);
}

}  // namespace

}  // namespace ddplint

int main(int argc, char** argv) {
  ddpkit::tools::ToolSpec spec;
  spec.usage = {
      "[flags] <path>...      # lint .h/.cc files or directory trees",
      "--changed-files        # lint the paths read from stdin",
      "--selftest[=group]     # embedded snippets (token-rules, lexer,",
      "                       # lock-order, blocking-under-lock,",
      "                       # include-dag, store-key-schema, config)",
      "--format=github        # ::error annotations for CI",
      "--lock-order=<file> --include-dag=<file>  # pass configs",
  };
  spec.min_positional = 0;
  spec.max_positional = 4096;
  spec.run = ddplint::Run;
  spec.selftest = [](const ddpkit::tools::ToolArgs& args) {
    return ddplint::RunSelfTest(args.FlagValue("selftest"));
  };
  return ddpkit::tools::RunTool(argc, argv, spec);
}
