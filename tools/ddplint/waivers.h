// Waiver grammar (a reason is MANDATORY — a waiver without one is ignored
// and the violation still fires; reviewed like any code):
//
//   // ddplint: allow(<rule>) <reason>        — this line, or the first
//                                               code line after a comment-
//                                               only waiver block
//   // ddplint: allow-file(<rule>) <reason>   — the whole file

#ifndef DDPKIT_TOOLS_DDPLINT_WAIVERS_H_
#define DDPKIT_TOOLS_DDPLINT_WAIVERS_H_

#include <set>
#include <string>
#include <utility>

#include "ddplint/lexer.h"

namespace ddplint {

struct Waivers {
  std::set<std::string> file_rules;                     // allow-file(rule)
  std::set<std::pair<std::string, size_t>> line_rules;  // (rule, 0-based line)

  bool Covers(const std::string& rule, size_t line) const {
    return file_rules.count(rule) > 0 || line_rules.count({rule, line}) > 0;
  }
};

/// A comment-only waiver covers the first code line after its comment
/// block (the NOLINTNEXTLINE idiom, tolerant of multi-line reasons); a
/// trailing waiver covers its own line. A waiver with no reason after the
/// closing paren is ignored entirely — the reason is part of the contract.
Waivers ExtractWaivers(const SourceFile& file);

}  // namespace ddplint

#endif  // DDPKIT_TOOLS_DDPLINT_WAIVERS_H_
