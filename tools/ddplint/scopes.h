// The brace/paren scope tracker: walks one file's stripped code view and
// reconstructs which locks are textually live at every point.
//
// A lock becomes live through either
//   - a MutexLock declaration (`MutexLock lock(&mu_);`,
//     `ddpkit::MutexLock l(&state->mutex);`) — live until the enclosing
//     brace scope closes, or
//   - a REQUIRES(mu, ...) annotation on a function definition — the listed
//     capabilities are live throughout the body that follows (a REQUIRES
//     on a pure declaration, terminated by ';' before any '{', binds
//     nothing).
//
// The scan is per-file and per-scope: a helper that is called under a lock
// but neither takes it nor declares REQUIRES is invisible, which is the
// usual under-approximation trade a textual linter makes.

#ifndef DDPKIT_TOOLS_DDPLINT_SCOPES_H_
#define DDPKIT_TOOLS_DDPLINT_SCOPES_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "ddplint/lexer.h"

namespace ddplint {

struct LockSite {
  std::string expr;  // normalized acquisition expression: no '&', no spaces
  size_t line = 0;   // 0-based
  int depth = 0;     // brace depth the lock lives at
  bool from_requires = false;
};

/// An acquisition made while other locks were live (lock-order pass input).
struct NestedAcquisition {
  LockSite inner;
  std::vector<LockSite> held;  // outer locks, outermost first
};

/// A call to a watched name made while locks were live (blocking pass
/// input).
struct WatchedCall {
  std::string callee;
  size_t line = 0;  // 0-based
  std::string first_arg;  // normalized like LockSite::expr; empty if none
  bool in_loop_header = false;  // `while`/`for` appears on the same line
  std::vector<LockSite> held;
};

struct ScopeScan {
  std::vector<NestedAcquisition> nested;
  std::vector<WatchedCall> calls;
};

/// `watched` decides which call names are recorded (exact names plus
/// suffix matches); acquisition tracking is unconditional.
struct WatchSet {
  std::set<std::string> names;
  std::set<std::string> suffixes;

  bool Matches(const std::string& ident) const;
};

ScopeScan ScanScopes(const SourceFile& file, const WatchSet& watched);

}  // namespace ddplint

#endif  // DDPKIT_TOOLS_DDPLINT_SCOPES_H_
