#include "ddplint/lexer.h"

#include <algorithm>
#include <cctype>

namespace ddplint {
namespace {

/// Lexer state that survives a newline. Everything else (plain // comments,
/// char literals without a trailing backslash) terminates at end of line.
enum class State {
  kCode,
  kBlockComment,
  kLineComment,  // only carried across lines by a backslash continuation
  kString,       // only carried across lines by a backslash continuation
  kChar,         // same
  kRawString,    // carried until the closing )delim" sequence
};

/// True when the characters ending at `end` (exclusive) spell a raw-string
/// prefix — R, u8R, uR, UR or LR — starting at an identifier boundary.
/// `line[end]` is the opening double quote.
bool RawPrefixEndsAt(const std::string& line, size_t end) {
  if (end == 0 || line[end - 1] != 'R') return false;
  size_t start = end - 1;  // position of 'R'
  if (start >= 2 && line.compare(start - 2, 2, "u8") == 0) {
    start -= 2;
  } else if (start >= 1 &&
             (line[start - 1] == 'u' || line[start - 1] == 'U' ||
              line[start - 1] == 'L')) {
    start -= 1;
  }
  return start == 0 || !IsIdentChar(line[start - 1]);
}

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsBlankLine(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

bool LineHasToken(const std::string& code, const Token& token) {
  size_t pos = 0;
  while ((pos = code.find(token.text, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const size_t end = pos + token.text.size();
    const bool right_ok =
        token.prefix_match || end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

std::string NormalizePath(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool InDir(const std::string& path, const std::string& dir) {
  const size_t at = path.find(dir);
  if (at == std::string::npos) return false;
  return at == 0 || path[at - 1] == '/';
}

bool MentionsFile(const std::string& path, const std::string& stem) {
  return path.find(stem) != std::string::npos;
}

bool IsHeaderPath(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const size_t n = std::char_traits<char>::length(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with(".h") || ends_with(".hpp");
}

SourceFile Lex(const std::string& path, const std::string& content) {
  SourceFile file;
  file.path = NormalizePath(path);

  // Split into physical lines (the views stay line-addressable so every
  // diagnostic can cite file:line).
  {
    std::string line;
    for (const char c : content) {
      if (c == '\n') {
        file.raw.push_back(std::move(line));
        line.clear();
      } else {
        line.push_back(c);
      }
    }
    if (!line.empty() || file.raw.empty()) file.raw.push_back(std::move(line));
  }

  State state = State::kCode;
  char quote = '"';
  std::string raw_delim;        // the )delim" terminator of a raw string
  StringLiteral* open_literal = nullptr;  // literal spanning into this line

  file.code.reserve(file.raw.size());
  for (size_t ln = 0; ln < file.raw.size(); ++ln) {
    const std::string& line = file.raw[ln];
    std::string code(line.size(), ' ');
    size_t i = 0;

    while (i < line.size()) {
      switch (state) {
        case State::kBlockComment:
          if (line.compare(i, 2, "*/") == 0) {
            state = State::kCode;
            i += 2;
          } else {
            ++i;
          }
          continue;

        case State::kLineComment:
          // Consumed to end of line below (after the switch we only get
          // here when a continuation carried the comment over).
          i = line.size();
          continue;

        case State::kRawString:
          if (line.compare(i, raw_delim.size(), raw_delim) == 0) {
            state = State::kCode;
            i += raw_delim.size();
            open_literal = nullptr;
          } else {
            if (open_literal != nullptr) open_literal->text.push_back(line[i]);
            ++i;
          }
          continue;

        case State::kString:
        case State::kChar:
          if (line[i] == '\\') {
            if (state == State::kString && open_literal != nullptr &&
                i + 1 < line.size()) {
              open_literal->text.push_back(line[i]);
              open_literal->text.push_back(line[i + 1]);
            }
            i += 2;  // may step past EOL: that is the line-continuation case
          } else if (line[i] == quote) {
            state = State::kCode;
            open_literal = nullptr;
            ++i;
          } else {
            if (state == State::kString && open_literal != nullptr) {
              open_literal->text.push_back(line[i]);
            }
            ++i;
          }
          continue;

        case State::kCode:
          break;  // handled below
      }

      // state == kCode
      if (line.compare(i, 2, "//") == 0) {
        state = State::kLineComment;
        i = line.size();
        continue;
      }
      if (line.compare(i, 2, "/*") == 0) {
        state = State::kBlockComment;
        i += 2;
        continue;
      }
      const char c = line[i];
      if (c == '"' && RawPrefixEndsAt(line, i)) {
        // R"delim( ... )delim" — find the delimiter up to the '('.
        const size_t open_paren = line.find('(', i + 1);
        if (open_paren != std::string::npos && open_paren - i - 1 <= 16) {
          raw_delim =
              ")" + line.substr(i + 1, open_paren - i - 1) + "\"";
          state = State::kRawString;
          file.strings.push_back(StringLiteral{ln, ""});
          open_literal = &file.strings.back();
          i = open_paren + 1;
          continue;
        }
        // Malformed raw string: fall through and treat as a plain literal
        // (over-blanks at worst).
      }
      if (c == '"' || c == '\'') {
        state = c == '"' ? State::kString : State::kChar;
        quote = c;
        if (c == '"') {
          file.strings.push_back(StringLiteral{ln, ""});
          open_literal = &file.strings.back();
        }
        ++i;
        continue;
      }
      code[i] = c;
      ++i;
    }

    // End of physical line: decide what survives the newline.
    const bool continued = !line.empty() && line.back() == '\\';
    switch (state) {
      case State::kLineComment:
        if (!continued) state = State::kCode;
        break;
      case State::kString:
      case State::kChar:
        // Only a backslash continuation legally extends a literal; anything
        // else is a syntax error — stop blanking so we fail loudly on the
        // next real token rather than silently eating the file.
        if (!continued) {
          state = State::kCode;
          open_literal = nullptr;
        }
        break;
      case State::kBlockComment:
      case State::kRawString:
        break;  // genuinely multi-line constructs
      case State::kCode:
        break;
    }

    file.code.push_back(std::move(code));
  }
  return file;
}

}  // namespace ddplint
