// Regression fixture: a comm -> core back edge the include-DAG pass must
// flag. Lives under testdata/ so directory walks (the tree gate) never see
// it; the ctest entry lints it explicitly and expects failure (WILL_FAIL).

#include "core/reducer.h"

namespace ddpkit::comm {

void NeverBuilt() {}

}  // namespace ddpkit::comm
