#include "ddplint/waivers.h"

#include <algorithm>
#include <cctype>

namespace ddplint {

Waivers ExtractWaivers(const SourceFile& file) {
  Waivers waivers;
  const std::string line_marker = "ddplint: allow(";
  const std::string file_marker = "ddplint: allow-file(";
  for (size_t i = 0; i < file.raw.size(); ++i) {
    for (const bool file_scope : {true, false}) {
      const std::string& marker = file_scope ? file_marker : line_marker;
      const size_t at = file.raw[i].find(marker);
      if (at == std::string::npos) continue;
      const size_t open = at + marker.size();
      const size_t close = file.raw[i].find(')', open);
      if (close == std::string::npos) continue;
      const std::string tail = file.raw[i].substr(close + 1);
      const bool has_reason =
          std::any_of(tail.begin(), tail.end(), [](unsigned char c) {
            return std::isalnum(c) != 0;
          });
      if (!has_reason) continue;  // reason-mandatory: bare waivers don't count
      const std::string rule = file.raw[i].substr(open, close - open);
      if (file_scope) {
        waivers.file_rules.insert(rule);
        continue;
      }
      waivers.line_rules.insert({rule, i});
      if (!IsBlankLine(file.code[i])) continue;  // trailing: own line only
      size_t j = i + 1;
      while (j < file.code.size() && IsBlankLine(file.code[j])) ++j;
      if (j < file.code.size()) waivers.line_rules.insert({rule, j});
    }
  }
  return waivers;
}

}  // namespace ddplint
