// The v1 rule set, ported from the single-file ddplint: line/token and
// structural rules that need no cross-line scope model. See passes.h for
// the catalog and DESIGN.md §13 for the architecture.

#include <string>
#include <vector>

#include "ddplint/lexer.h"
#include "ddplint/passes.h"

namespace ddplint {
namespace {

/// The layers that speak Status across the replica boundary: the process
/// groups and the reducer/DDP pair that drives them.
bool IsStatusBoundary(const std::string& path) {
  return InDir(path, "comm/") || MentionsFile(path, "core/reducer.") ||
         MentionsFile(path, "core/distributed_data_parallel.");
}

struct Rule {
  std::string name;
  std::vector<Token> tokens;
  bool (*applies)(const std::string& path);
  std::string why;
  std::string fixit;
};

// ---------------------------------------------------------------------------
// nodiscard-status / nodiscard-workhandle: structural declaration matching.
// ---------------------------------------------------------------------------

/// True when one stripped code line declares a function returning one of
/// `types` by value: optional qualifiers, the return type, an identifier,
/// then '('. Reference/pointer returns and data members (identifier not
/// followed by '(') are intentionally not matched. A type ending in '<'
/// (e.g. "Result<") matches through its balanced template arguments.
bool LineDeclaresValueReturn(const std::string& code,
                             const std::vector<const char*>& types) {
  size_t i = code.find_first_not_of(" \t");
  if (i == std::string::npos) return false;

  const auto word_at = [&](size_t pos, const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    return code.compare(pos, n, word) == 0 &&
           (pos + n >= code.size() || !IsIdentChar(code[pos + n]));
  };
  static const char* kQualifiers[] = {"static",    "virtual",  "inline",
                                      "constexpr", "explicit", "friend"};
  bool stripped = true;
  while (stripped) {
    stripped = false;
    for (const char* q : kQualifiers) {
      if (!word_at(i, q)) continue;
      i = code.find_first_not_of(" \t", i + std::char_traits<char>::length(q));
      if (i == std::string::npos) return false;
      stripped = true;
    }
  }

  size_t after_type = std::string::npos;
  for (const char* type : types) {
    const size_t n = std::char_traits<char>::length(type);
    if (n > 0 && type[n - 1] == '<') {
      if (code.compare(i, n, type) != 0) continue;
      size_t j = i + n;
      int depth = 1;
      while (j < code.size() && depth > 0) {
        if (code[j] == '<') ++depth;
        if (code[j] == '>') --depth;
        ++j;
      }
      if (depth != 0) return false;
      after_type = j;
      break;
    }
    if (word_at(i, type)) {
      after_type = i + n;
      break;
    }
  }
  if (after_type == std::string::npos) return false;

  // By-reference / by-pointer returns are observers, not must-check calls.
  size_t j = code.find_first_not_of(" \t", after_type);
  if (j == std::string::npos || j == after_type) return false;
  if (code[j] == '&' || code[j] == '*') return false;
  if (!IsIdentChar(code[j]) ||
      std::isdigit(static_cast<unsigned char>(code[j])) != 0) {
    return false;
  }
  while (j < code.size() && IsIdentChar(code[j])) ++j;
  j = code.find_first_not_of(" \t", j);
  return j != std::string::npos && code[j] == '(';
}

bool LineDeclaresStatusFunction(const std::string& code) {
  return LineDeclaresValueReturn(
      code, {"ddpkit::Status", "Status", "ddpkit::Result<", "Result<"});
}

bool LineDeclaresWorkHandleFunction(const std::string& code) {
  return LineDeclaresValueReturn(
      code, {"ddpkit::comm::WorkHandle", "comm::WorkHandle", "WorkHandle"});
}

// ---------------------------------------------------------------------------
// raw-elementwise-loop: structural pass over the kernel directories.
// ---------------------------------------------------------------------------

/// Matches a *bare* subscript `ident[ident]` whose identifier starts at
/// `pos`; returns one past the closing ']' or npos. Compound indices
/// (`a[i * n + j]`), nested subscripts (`a[idx[i]]`) and non-identifier
/// indices deliberately do not match: those are gathers/scatters or
/// stride arithmetic the vec layer cannot express.
size_t BareSubscriptEnd(const std::string& code, size_t pos) {
  size_t i = pos;
  while (i < code.size() && IsIdentChar(code[i])) ++i;
  if (i == pos || i >= code.size() || code[i] != '[') {
    return std::string::npos;
  }
  const size_t idx_start = ++i;
  while (i < code.size() && IsIdentChar(code[i])) ++i;
  if (i == idx_start || i >= code.size() || code[i] != ']') {
    return std::string::npos;
  }
  return i + 1;
}

bool IsBareSubscriptStart(const std::string& code, size_t pos) {
  if (pos > 0) {
    const char prev = code[pos - 1];
    // `s.lane[i]`, `p->v[i]`, `a[b[i]]` heads: not a bare subscript.
    if (IsIdentChar(prev) || prev == '.' || prev == ']' || prev == '>') {
      return false;
    }
  }
  return BareSubscriptEnd(code, pos) != std::string::npos;
}

bool ContainsBareSubscript(const std::string& code, size_t from) {
  for (size_t i = from; i < code.size(); ++i) {
    if (IsBareSubscriptStart(code, i)) return true;
  }
  return false;
}

/// True when the line stores through a bare subscript (`dst[i] =`,
/// `dst[i] +=`, ...) and the assigned expression reads another bare
/// subscript — the shape of a hand-rolled elementwise kernel. Scalar
/// reductions (`acc += a[i] * b[i]`), scatters (`out[idx[i]] += g[i]`) and
/// strided/compound addressing are all structurally excluded.
bool LineHasRawElementwiseLoop(const std::string& code) {
  for (size_t i = 0; i < code.size(); ++i) {
    if (!IsBareSubscriptStart(code, i)) continue;
    size_t j = BareSubscriptEnd(code, i);
    while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
    if (j >= code.size()) return false;
    size_t rhs = std::string::npos;
    if (code[j] == '=' && (j + 1 >= code.size() || code[j + 1] != '=')) {
      rhs = j + 1;  // plain assignment (not ==)
    } else if ((code[j] == '+' || code[j] == '-' || code[j] == '*' ||
                code[j] == '/') &&
               j + 1 < code.size() && code[j + 1] == '=') {
      rhs = j + 2;  // compound assignment
    }
    if (rhs != std::string::npos && ContainsBareSubscript(code, rhs)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// raw-wire-io: POSIX byte-I/O *calls* outside the socket layer.
// ---------------------------------------------------------------------------

/// The POSIX byte-I/O family plus the socket lifecycle calls: a bare
/// `connect`/`accept`/`shutdown`/`close` outside the wire layer sidesteps
/// the deadline plumbing and the fault-injection shim exactly like a bare
/// `send` does — a connection opened behind the shim's back is a
/// connection chaos runs can never partition. Matched as free-function
/// calls only: an identifier boundary on the left (so `fread`/`pthread_`
/// never match), not a member access (`file.read`, `stream->write`) nor a
/// scoped function (`Foo::read(...)`) — but a global-namespace
/// qualification (bare `::read(`) does match, it is exactly the POSIX call
/// being smuggled.
const char* const kWireIoCalls[] = {
    "send",  "sendto", "sendmsg", "recv",    "recvfrom", "recvmsg",
    "read",  "pread",  "readv",   "write",   "pwrite",   "writev",
    "connect", "accept", "accept4", "shutdown", "close",
};

bool LineHasRawWireIoCall(const std::string& code, std::string* which) {
  for (const char* name : kWireIoCalls) {
    const size_t n = std::char_traits<char>::length(name);
    size_t pos = 0;
    while ((pos = code.find(name, pos)) != std::string::npos) {
      const size_t end = pos + n;
      const bool ident_bounded = (pos == 0 || !IsIdentChar(code[pos - 1])) &&
                                 (end >= code.size() ||
                                  !IsIdentChar(code[end]));
      if (!ident_bounded) {
        ++pos;
        continue;
      }
      // Member access is a different function entirely.
      if (pos > 0 && (code[pos - 1] == '.' || code[pos - 1] == '>')) {
        ++pos;
        continue;
      }
      // `Foo::read(` is a scoped function; bare `::read(` is POSIX.
      if (pos >= 2 && code[pos - 1] == ':' && code[pos - 2] == ':') {
        const size_t q = pos - 2;
        if (q > 0 && (IsIdentChar(code[q - 1]) || code[q - 1] == '>')) {
          ++pos;
          continue;
        }
      }
      // Only calls: the next non-space character must open the arg list.
      size_t j = end;
      while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
      if (j >= code.size() || code[j] != '(') {
        ++pos;
        continue;
      }
      *which = name;
      return true;
    }
  }
  return false;
}

/// The socket layer itself — the only place raw wire I/O belongs. The
/// fault shim (net_fault) sits directly on the socket surface by design:
/// it must reach the real calls to corrupt them.
bool IsWireIoLayer(const std::string& path) {
  return MentionsFile(path, "comm/net_socket") ||
         MentionsFile(path, "comm/store_tcp") ||
         MentionsFile(path, "comm/process_group_tcp") ||
         MentionsFile(path, "comm/net_fault");
}

const std::vector<Rule>& Rules() {
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {"unannotated-mutex",
       {{"std::mutex", false},
        {"std::recursive_mutex", false},
        {"std::timed_mutex", false},
        {"std::shared_mutex", false},
        {"std::condition_variable", true}},
       [](const std::string&) { return true; },
       "raw standard-library lock primitives are invisible to the Clang "
       "thread-safety analysis",
       "use ddpkit::Mutex / ddpkit::CondVar from common/mutex.h so "
       "GUARDED_BY and REQUIRES can see the lock"},
      {"check-in-comm",
       {{"DDPKIT_CHECK", true}},
       [](const std::string& path) { return InDir(path, "comm/"); },
       "a CHECK on a collective path turns a peer's failure into a local "
       "process abort",
       "return a ddpkit::Status (or a pre-failed WorkHandle) per the comm "
       "failure model; waive construction-time preconditions with "
       "// ddplint: allow(check-in-comm) <reason>"},
      {"throw-boundary",
       {{"throw", false}},
       IsStatusBoundary,
       "the Reducer/ProcessGroup boundary speaks ddpkit::Status; an "
       "exception thrown here unwinds through non-throwing callers",
       "convert the error to a Status return (or AbortSync) instead of "
       "throwing"},
      {"banned-nondeterminism",
       {{"rand", false},
        {"srand", false},
        {"rand_r", false},
        {"drand48", false},
        {"std::random_device", false},
        {"steady_clock", false},
        {"system_clock", false},
        {"high_resolution_clock", false},
        {"gettimeofday", false},
        {"clock_gettime", false}},
       [](const std::string& path) {
         return !MentionsFile(path, "sim/virtual_clock");
       },
       "unseeded randomness and wall-clock reads make simulated runs "
       "irreproducible",
       "draw randomness from a seeded ddpkit::Rng and time from the "
       "rank's sim::VirtualClock; waive real-time control paths with "
       "// ddplint: allow(banned-nondeterminism) <reason>"},
  };
  return *rules;
}

/// The structural nodiscard passes: every by-value declaration the
/// `declares` predicate matches in an applicable header must carry
/// [[nodiscard]] on its own line or on the previous non-blank code line.
void LintNodiscardDecls(const std::string& rule,
                        bool (*declares)(const std::string&),
                        const char* token, const PassContext& ctx,
                        const std::string& why, const std::string& fixit,
                        std::vector<Violation>* out) {
  const std::vector<std::string>& code = ctx.file.code;
  if (ctx.waivers.file_rules.count(rule) > 0) return;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!declares(code[i])) continue;
    if (code[i].find("[[nodiscard]]") != std::string::npos) continue;
    bool annotated_above = false;
    for (size_t j = i; j > 0;) {
      --j;
      if (IsBlankLine(code[j])) continue;
      annotated_above = code[j].find("[[nodiscard]]") != std::string::npos;
      break;
    }
    if (annotated_above) continue;
    if (ctx.waivers.Covers(rule, i)) continue;
    out->push_back(Violation{ctx.file.path, i + 1, rule,
                             std::string("'") + token + "' — " + why, fixit});
  }
}

}  // namespace

void RunTokenRules(const PassContext& ctx, std::vector<Violation>* out) {
  const std::string& path = ctx.file.path;
  const std::vector<std::string>& code = ctx.file.code;

  for (const Rule& rule : Rules()) {
    if (!rule.applies(path)) continue;
    if (ctx.waivers.file_rules.count(rule.name) > 0) continue;
    for (size_t i = 0; i < code.size(); ++i) {
      for (const Token& token : rule.tokens) {
        if (!LineHasToken(code[i], token)) continue;
        if (ctx.waivers.Covers(rule.name, i)) continue;
        out->push_back(Violation{path, i + 1, rule.name,
                                 "'" + token.text + "' — " + rule.why,
                                 rule.fixit});
        break;  // one report per line per rule
      }
    }
  }

  if (IsStatusBoundary(path) && IsHeaderPath(path)) {
    LintNodiscardDecls(
        "nodiscard-status", LineDeclaresStatusFunction, "Status", ctx,
        "a silently dropped Status on a collective or recovery path turns a "
        "typed failure back into the hang or corruption it was typed to "
        "prevent",
        "mark the declaration [[nodiscard]] (same line or the line above); "
        "waive intentionally discardable calls with "
        "// ddplint: allow(nodiscard-status) <reason>",
        out);
  }
  if (InDir(path, "comm/") && IsHeaderPath(path)) {
    LintNodiscardDecls(
        "nodiscard-workhandle", LineDeclaresWorkHandleFunction, "WorkHandle",
        ctx,
        "a dropped WorkHandle is a dropped collective verdict: the typed "
        "timeout or rank failure the handle carries never reaches the "
        "reducer, so the error surfaces later as a hang or a stale gradient",
        "mark the declaration [[nodiscard]] (same line or the line above); "
        "waive fire-and-forget collectives with "
        "// ddplint: allow(nodiscard-workhandle) <reason>",
        out);
  }

  if ((InDir(path, "tensor/") || InDir(path, "comm/")) &&
      ctx.waivers.file_rules.count("raw-elementwise-loop") == 0) {
    for (size_t i = 0; i < code.size(); ++i) {
      if (!LineHasRawElementwiseLoop(code[i])) continue;
      if (ctx.waivers.Covers("raw-elementwise-loop", i)) continue;
      out->push_back(Violation{
          path, i + 1, "raw-elementwise-loop",
          "'dst[i] = ...src[i]' — a hand-rolled elementwise loop on a "
          "kernel hot path bypasses the SIMD layer and silently runs scalar",
          "route the loop through a common/vec.h batch helper (Add, Axpy, "
          "AccumulateAdd, Copy, ...); waive loops the vec layer cannot "
          "express — transcendentals, integer fallbacks, dot products — "
          "with // ddplint: allow(raw-elementwise-loop) <reason>"});
    }
  }

  if (!IsWireIoLayer(path) &&
      ctx.waivers.file_rules.count("raw-wire-io") == 0) {
    for (size_t i = 0; i < code.size(); ++i) {
      std::string which;
      if (!LineHasRawWireIoCall(code[i], &which)) continue;
      if (ctx.waivers.Covers("raw-wire-io", i)) continue;
      out->push_back(Violation{
          path, i + 1, "raw-wire-io",
          "'" + which +
              "' — a raw send/recv/read/write (or socket lifecycle call) "
              "bypasses the deadline-aware socket helpers, so it can block "
              "forever, never sees the abort pipe, and is invisible to the "
              "wire-fault shim",
          "go through comm/net_socket.h (SendAll/RecvAll/SendFrame/"
          "RecvFrame/Connect/Accept/CloseFd/...) or the Store/ProcessGroup "
          "layers above it; waive non-wire fds (pipes, files) with "
          "// ddplint: allow(raw-wire-io) <reason> — the reason is "
          "mandatory"});
    }
  }
}

}  // namespace ddplint
