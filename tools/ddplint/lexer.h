// ddplint's shared lexer: one tokenization of a C++ source file that every
// pass consumes. Produces three synchronized views:
//
//   raw      the file's lines verbatim (waivers live in comments, so waiver
//            extraction reads this view)
//   code     comments and string/character literals blanked to spaces, with
//            line lengths and counts preserved so columns and line numbers
//            agree with `raw`. Raw string literals (R"delim(...)delim",
//            including u8R/uR/UR/LR prefixes) and backslash line
//            continuations (a // comment or a literal continued onto the
//            next physical line) are honored — a rule token inside either
//            never fires.
//   strings  the contents of every string literal outside comments, with
//            the line it starts on (the store-key-schema pass matches key
//            namespaces inside literals, which the code view blanks).
//
// Also home to the small path/identifier helpers shared by the passes.

#ifndef DDPKIT_TOOLS_DDPLINT_LEXER_H_
#define DDPKIT_TOOLS_DDPLINT_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ddplint {

struct StringLiteral {
  size_t line = 0;  // 0-based line the literal starts on
  std::string text;  // literal contents, escapes kept verbatim
};

struct SourceFile {
  std::string path;  // normalized: forward slashes
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<StringLiteral> strings;
};

/// Lexes `content` into the three views. Never fails: malformed input
/// (unterminated literals, stray quotes) degrades to over-blanking, the
/// safe direction for a linter that bans tokens.
SourceFile Lex(const std::string& path, const std::string& content);

// --- identifier / token helpers -------------------------------------------

bool IsIdentChar(char c);
bool IsBlankLine(const std::string& s);

struct Token {
  std::string text;
  /// When true the token may be a prefix of a longer identifier
  /// (DDPKIT_CHECK also matches DDPKIT_CHECK_EQ).
  bool prefix_match = false;
};

/// Identifier-boundary token search: 'rand' must not match 'grand' or
/// 'operand'.
bool LineHasToken(const std::string& code, const Token& token);

// --- path helpers ----------------------------------------------------------

std::string NormalizePath(const std::string& path);

/// True when `dir` ("comm/") appears as a directory component. "comm/"
/// never matches "common/": the component must end at the slash.
bool InDir(const std::string& path, const std::string& dir);

bool MentionsFile(const std::string& path, const std::string& stem);

bool IsHeaderPath(const std::string& path);

}  // namespace ddplint

#endif  // DDPKIT_TOOLS_DDPLINT_LEXER_H_
