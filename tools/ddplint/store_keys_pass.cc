// store-key-schema: Store keys are a cross-process wire protocol — every
// rank must compute byte-identical keys or rendezvous and bucket-layout
// exchange silently miss each other. comm/store_keys.h is the single
// legal mint for key namespaces (reducer/, rendezvous/, pgtcp/, pg/);
// this pass flags any string literal shaped like a key-namespace prefix
// (`lowercase_ident/`) in src/comm/ or src/core/ outside that header.
//
// The shape check runs on the literal's text, which the lexer captures
// before blanking (comments never reach the literal list, and #include
// lines are excluded because module paths share the shape).

#include <cctype>
#include <string>
#include <vector>

#include "ddplint/lexer.h"
#include "ddplint/passes.h"

namespace ddplint {
namespace {

const char kRule[] = "store-key-schema";

/// `^[a-z0-9_]+/` — a lowercase identifier immediately followed by '/'.
bool LooksLikeKeyNamespace(const std::string& text) {
  size_t i = 0;
  while (i < text.size() &&
         (std::islower(static_cast<unsigned char>(text[i])) != 0 ||
          std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
          text[i] == '_')) {
    ++i;
  }
  return i > 0 && i < text.size() && text[i] == '/';
}

bool LineIsPreprocessor(const std::string& code) {
  const size_t i = code.find_first_not_of(" \t");
  return i != std::string::npos && code[i] == '#';
}

}  // namespace

void RunStoreKeySchema(const PassContext& ctx, std::vector<Violation>* out) {
  const std::string& path = ctx.file.path;
  if (!InDir(path, "comm/") && !InDir(path, "core/")) return;
  if (MentionsFile(path, "comm/store_keys.")) return;  // the mint itself
  if (ctx.waivers.file_rules.count(kRule) > 0) return;

  for (const StringLiteral& lit : ctx.file.strings) {
    if (!LooksLikeKeyNamespace(lit.text)) continue;
    if (lit.line < ctx.file.code.size() &&
        LineIsPreprocessor(ctx.file.code[lit.line])) {
      continue;  // #include "comm/store.h" shares the shape
    }
    if (ctx.waivers.Covers(kRule, lit.line)) continue;

    out->push_back(Violation{
        path, lit.line + 1, kRule,
        "\"" + lit.text +
            "\" — a Store key namespace minted outside comm/store_keys.h; "
            "keys are a cross-rank wire protocol, and two call sites "
            "composing the same key by hand will drift",
        "build the key through a comm/store_keys.h helper (add one there "
        "if the namespace is new); waive literals that merely look like a "
        "key with // ddplint: allow(store-key-schema) <reason>"});
  }
}

}  // namespace ddplint
