// ddplint: ddpkit's repo-invariant linter. Complements the Clang
// thread-safety analysis (-DDDPKIT_THREAD_SAFETY=ON) with invariants that
// are textual rather than type-level, so they hold under every compiler:
//
//   unannotated-mutex      raw std::mutex / std::condition_variable members
//                          are banned; use ddpkit::Mutex / ddpkit::CondVar
//                          (common/mutex.h) so GUARDED_BY can see the locks.
//   check-in-comm          DDPKIT_CHECK* aborts in src/comm/ collective
//                          paths are banned; communication failures must
//                          surface as ddpkit::Status (the PR 2 failure
//                          model), not process aborts.
//   throw-boundary         `throw` across the Reducer/ProcessGroup boundary
//                          (src/comm/, core/reducer, core/distributed_data_
//                          parallel) is banned; these layers speak Status.
//   banned-nondeterminism  rand()/srand()/std::random_device and wall-clock
//                          reads (steady_clock, system_clock, ...) outside
//                          sim/virtual_clock.h are banned; simulated time
//                          and seeded ddpkit::Rng keep runs reproducible.
//   nodiscard-status       Status/Result-returning function declarations in
//                          status-boundary headers must be [[nodiscard]]:
//                          a silently dropped Status on a recovery or
//                          collective path turns a typed failure back into
//                          the hang/corruption it was typed to prevent.
//   nodiscard-workhandle   WorkHandle-returning function declarations in
//                          src/comm/ headers must be [[nodiscard]]: a
//                          dropped handle is a dropped collective verdict —
//                          the timeout/rank-failure the handle would have
//                          carried is silently lost (the 1-bit hook bug
//                          this PR fixes).
//   raw-elementwise-loop   hand-rolled elementwise loops (a store to a bare
//                          subscript `dst[i]` computed from another bare
//                          subscript) in src/tensor/ and src/comm/ are
//                          banned; route the hot path through the SIMD
//                          layer (common/vec.h) or waive with a reason
//                          (transcendentals, integer fallbacks, dot
//                          products).
//   raw-wire-io            calls to the POSIX byte-I/O family (send/recv/
//                          read/write and their v/to/from/msg/p variants)
//                          outside comm/net_socket* and comm/*_tcp* are
//                          banned: all wire I/O must go through the
//                          deadline-aware helpers (SendAll/RecvAll/
//                          SendFrame/...), which honor timeouts and the
//                          abort pipe. Member calls (`file.read(...)`) and
//                          scoped functions (`Foo::read(...)`) don't match.
//
// Waivers (a reason is MANDATORY — a waiver without one is ignored and the
// violation still fires; reviewed like any code):
//   // ddplint: allow(<rule>) <reason>        — this line, or the first
//                                               code line after a comment-
//                                               only waiver block
//   // ddplint: allow-file(<rule>) <reason>   — the whole file
//
// Usage:
//   ddplint <path>...        # lint files / directory trees (.h, .cc)
//   ddplint --selftest       # run the embedded invariant snippets
//
// Exit status 0 when clean, 1 on violations (or selftest failure), so the
// tree lint and the selftest both double as ctest entries.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tool_util.h"

namespace {

// ---------------------------------------------------------------------------
// Source model: raw lines (waivers live in comments) plus a stripped view
// with comments and string/char literals blanked (rules match code only).
// ---------------------------------------------------------------------------

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  if (lines.empty()) lines.push_back("");
  return lines;
}

/// Blanks comments and string/character literals while preserving line
/// lengths and counts, carrying block-comment state across lines. Escapes
/// inside literals are honored; raw strings are not (the repo style avoids
/// them, and a raw string would only over-blank, never under-blank... the
/// safe direction for a linter that bans tokens).
std::vector<std::string> StripToCode(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block_comment = false;
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;  // rest of line is comment
      if (line.compare(i, 2, "/*") == 0) {
        in_block_comment = true;
        i += 2;
        continue;
      }
      const char c = line[i];
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
          } else if (line[i] == quote) {
            ++i;
            break;
          } else {
            ++i;
          }
        }
        continue;
      }
      code[i] = c;
      ++i;
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool IsBlankLine(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

// ---------------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------------

struct Waivers {
  std::set<std::string> file_rules;                    // allow-file(rule)
  std::set<std::pair<std::string, size_t>> line_rules;  // (rule, 0-based line)

  bool Covers(const std::string& rule, size_t line) const {
    return file_rules.count(rule) > 0 ||
           line_rules.count({rule, line}) > 0;
  }
};

/// A comment-only waiver covers the first code line after its comment
/// block (the NOLINTNEXTLINE idiom, tolerant of multi-line reasons); a
/// trailing waiver covers its own line. A waiver with no reason after the
/// closing paren is ignored entirely — the reason is part of the contract.
Waivers ExtractWaivers(const std::vector<std::string>& raw,
                       const std::vector<std::string>& code) {
  Waivers waivers;
  const std::string line_marker = "ddplint: allow(";
  const std::string file_marker = "ddplint: allow-file(";
  for (size_t i = 0; i < raw.size(); ++i) {
    for (const bool file_scope : {true, false}) {
      const std::string& marker = file_scope ? file_marker : line_marker;
      const size_t at = raw[i].find(marker);
      if (at == std::string::npos) continue;
      const size_t open = at + marker.size();
      const size_t close = raw[i].find(')', open);
      if (close == std::string::npos) continue;
      const std::string tail = raw[i].substr(close + 1);
      const bool has_reason =
          std::any_of(tail.begin(), tail.end(), [](unsigned char c) {
            return std::isalnum(c) != 0;
          });
      if (!has_reason) continue;  // reason-mandatory: bare waivers don't count
      const std::string rule = raw[i].substr(open, close - open);
      if (file_scope) {
        waivers.file_rules.insert(rule);
        continue;
      }
      waivers.line_rules.insert({rule, i});
      if (!IsBlankLine(code[i])) continue;  // trailing waiver: own line only
      size_t j = i + 1;
      while (j < code.size() && IsBlankLine(code[j])) ++j;
      if (j < code.size()) waivers.line_rules.insert({rule, j});
    }
  }
  return waivers;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  /// When true the token may be a prefix of a longer identifier
  /// (DDPKIT_CHECK also matches DDPKIT_CHECK_EQ).
  bool prefix_match = false;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Identifier-boundary token search: 'rand' must not match 'grand' or
/// 'operand'.
bool LineHasToken(const std::string& code, const Token& token) {
  size_t pos = 0;
  while ((pos = code.find(token.text, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const size_t end = pos + token.text.size();
    const bool right_ok =
        token.prefix_match || end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

std::string NormalizePath(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

/// True when `dir` ("comm/") appears as a directory component. "comm/"
/// never matches "common/": the component must end at the slash.
bool InDir(const std::string& path, const std::string& dir) {
  const size_t at = path.find(dir);
  if (at == std::string::npos) return false;
  return at == 0 || path[at - 1] == '/';
}

bool MentionsFile(const std::string& path, const std::string& stem) {
  return path.find(stem) != std::string::npos;
}

/// The layers that speak Status across the replica boundary: the process
/// groups and the reducer/DDP pair that drives them.
bool IsStatusBoundary(const std::string& path) {
  return InDir(path, "comm/") || MentionsFile(path, "core/reducer.") ||
         MentionsFile(path, "core/distributed_data_parallel.");
}

struct Rule {
  std::string name;
  std::vector<Token> tokens;
  bool (*applies)(const std::string& path);
  std::string why;
  std::string fixit;
};

// ---------------------------------------------------------------------------
// nodiscard-status: structural (not token) matching, run as its own pass.
// ---------------------------------------------------------------------------

bool IsHeaderPath(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const size_t n = std::char_traits<char>::length(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with(".h") || ends_with(".hpp");
}

/// True when one stripped code line declares a function returning Status or
/// Result<...> by value: optional qualifiers, the return type, an
/// identifier, then '('. Reference/pointer returns and data members
/// (identifier not followed by '(') are intentionally not matched.
bool LineDeclaresStatusFunction(const std::string& code) {
  size_t i = code.find_first_not_of(" \t");
  if (i == std::string::npos) return false;

  const auto word_at = [&](size_t pos, const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    return code.compare(pos, n, word) == 0 &&
           (pos + n >= code.size() || !IsIdentChar(code[pos + n]));
  };
  static const char* kQualifiers[] = {"static",    "virtual", "inline",
                                      "constexpr", "explicit", "friend"};
  bool stripped = true;
  while (stripped) {
    stripped = false;
    for (const char* q : kQualifiers) {
      if (!word_at(i, q)) continue;
      i = code.find_first_not_of(" \t",
                                 i + std::char_traits<char>::length(q));
      if (i == std::string::npos) return false;
      stripped = true;
    }
  }

  size_t after_type = std::string::npos;
  for (const char* status : {"ddpkit::Status", "Status"}) {
    if (word_at(i, status)) {
      after_type = i + std::char_traits<char>::length(status);
      break;
    }
  }
  if (after_type == std::string::npos) {
    for (const char* result : {"ddpkit::Result<", "Result<"}) {
      const size_t n = std::char_traits<char>::length(result);
      if (code.compare(i, n, result) != 0) continue;
      size_t j = i + n;
      int depth = 1;
      while (j < code.size() && depth > 0) {
        if (code[j] == '<') ++depth;
        if (code[j] == '>') --depth;
        ++j;
      }
      if (depth != 0) return false;
      after_type = j;
      break;
    }
  }
  if (after_type == std::string::npos) return false;

  // By-reference / by-pointer returns are observers, not must-check calls.
  size_t j = code.find_first_not_of(" \t", after_type);
  if (j == std::string::npos || j == after_type) return false;
  if (code[j] == '&' || code[j] == '*') return false;
  if (!IsIdentChar(code[j]) ||
      std::isdigit(static_cast<unsigned char>(code[j])) != 0) {
    return false;
  }
  while (j < code.size() && IsIdentChar(code[j])) ++j;
  j = code.find_first_not_of(" \t", j);
  return j != std::string::npos && code[j] == '(';
}

/// True when one stripped code line declares a function returning a
/// WorkHandle by value: optional qualifiers, the (possibly namespace-
/// qualified) WorkHandle return type, an identifier, then '('. References,
/// pointers, and data members are not matched, mirroring
/// LineDeclaresStatusFunction.
bool LineDeclaresWorkHandleFunction(const std::string& code) {
  size_t i = code.find_first_not_of(" \t");
  if (i == std::string::npos) return false;

  const auto word_at = [&](size_t pos, const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    return code.compare(pos, n, word) == 0 &&
           (pos + n >= code.size() || !IsIdentChar(code[pos + n]));
  };
  static const char* kQualifiers[] = {"static",    "virtual", "inline",
                                      "constexpr", "explicit", "friend"};
  bool stripped = true;
  while (stripped) {
    stripped = false;
    for (const char* q : kQualifiers) {
      if (!word_at(i, q)) continue;
      i = code.find_first_not_of(" \t",
                                 i + std::char_traits<char>::length(q));
      if (i == std::string::npos) return false;
      stripped = true;
    }
  }

  size_t after_type = std::string::npos;
  for (const char* handle :
       {"ddpkit::comm::WorkHandle", "comm::WorkHandle", "WorkHandle"}) {
    if (word_at(i, handle)) {
      after_type = i + std::char_traits<char>::length(handle);
      break;
    }
  }
  if (after_type == std::string::npos) return false;

  size_t j = code.find_first_not_of(" \t", after_type);
  if (j == std::string::npos || j == after_type) return false;
  if (code[j] == '&' || code[j] == '*') return false;
  if (!IsIdentChar(code[j]) ||
      std::isdigit(static_cast<unsigned char>(code[j])) != 0) {
    return false;
  }
  while (j < code.size() && IsIdentChar(code[j])) ++j;
  j = code.find_first_not_of(" \t", j);
  return j != std::string::npos && code[j] == '(';
}

// ---------------------------------------------------------------------------
// raw-elementwise-loop: structural pass over the kernel directories.
// ---------------------------------------------------------------------------

/// Matches a *bare* subscript `ident[ident]` whose identifier starts at
/// `pos`; returns one past the closing ']' or npos. Compound indices
/// (`a[i * n + j]`), nested subscripts (`a[idx[i]]`) and non-identifier
/// indices deliberately do not match: those are gathers/scatters or
/// stride arithmetic the vec layer cannot express.
size_t BareSubscriptEnd(const std::string& code, size_t pos) {
  size_t i = pos;
  while (i < code.size() && IsIdentChar(code[i])) ++i;
  if (i == pos || i >= code.size() || code[i] != '[') {
    return std::string::npos;
  }
  const size_t idx_start = ++i;
  while (i < code.size() && IsIdentChar(code[i])) ++i;
  if (i == idx_start || i >= code.size() || code[i] != ']') {
    return std::string::npos;
  }
  return i + 1;
}

bool IsBareSubscriptStart(const std::string& code, size_t pos) {
  if (pos > 0) {
    const char prev = code[pos - 1];
    // `s.lane[i]`, `p->v[i]`, `a[b[i]]` heads: not a bare subscript.
    if (IsIdentChar(prev) || prev == '.' || prev == ']' || prev == '>') {
      return false;
    }
  }
  return BareSubscriptEnd(code, pos) != std::string::npos;
}

bool ContainsBareSubscript(const std::string& code, size_t from) {
  for (size_t i = from; i < code.size(); ++i) {
    if (IsBareSubscriptStart(code, i)) return true;
  }
  return false;
}

/// True when the line stores through a bare subscript (`dst[i] =`,
/// `dst[i] +=`, ...) and the assigned expression reads another bare
/// subscript — the shape of a hand-rolled elementwise kernel. Scalar
/// reductions (`acc += a[i] * b[i]`), scatters (`out[idx[i]] += g[i]`) and
/// strided/compound addressing are all structurally excluded.
bool LineHasRawElementwiseLoop(const std::string& code) {
  for (size_t i = 0; i < code.size(); ++i) {
    if (!IsBareSubscriptStart(code, i)) continue;
    size_t j = BareSubscriptEnd(code, i);
    while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
    if (j >= code.size()) return false;
    size_t rhs = std::string::npos;
    if (code[j] == '=' && (j + 1 >= code.size() || code[j + 1] != '=')) {
      rhs = j + 1;  // plain assignment (not ==)
    } else if ((code[j] == '+' || code[j] == '-' || code[j] == '*' ||
                code[j] == '/') &&
               j + 1 < code.size() && code[j + 1] == '=') {
      rhs = j + 2;  // compound assignment
    }
    if (rhs != std::string::npos && ContainsBareSubscript(code, rhs)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// raw-wire-io: structural pass — POSIX byte-I/O *calls* outside the socket
// layer.
// ---------------------------------------------------------------------------

/// The POSIX byte-I/O family. Matched as free-function calls only: an
/// identifier boundary on the left (so `fread`/`pthread_` never match), not
/// a member access (`file.read`, `stream->write`) nor a scoped function
/// (`Foo::read`) — but a global-namespace qualification (bare `::read(`)
/// does match, it is exactly the POSIX call being smuggled.
const char* const kWireIoCalls[] = {
    "send", "sendto",   "sendmsg", "recv",  "recvfrom", "recvmsg",
    "read", "pread",    "readv",   "write", "pwrite",   "writev",
};

bool LineHasRawWireIoCall(const std::string& code, std::string* which) {
  for (const char* name : kWireIoCalls) {
    const size_t n = std::char_traits<char>::length(name);
    size_t pos = 0;
    while ((pos = code.find(name, pos)) != std::string::npos) {
      const size_t end = pos + n;
      const bool ident_bounded =
          (pos == 0 || !IsIdentChar(code[pos - 1])) &&
          (end >= code.size() || !IsIdentChar(code[end]));
      if (!ident_bounded) {
        ++pos;
        continue;
      }
      // Member access is a different function entirely.
      if (pos > 0 && (code[pos - 1] == '.' || code[pos - 1] == '>')) {
        ++pos;
        continue;
      }
      // `Foo::read(` is a scoped function; bare `::read(` is POSIX.
      if (pos >= 2 && code[pos - 1] == ':' && code[pos - 2] == ':') {
        const size_t q = pos - 2;
        if (q > 0 && (IsIdentChar(code[q - 1]) || code[q - 1] == '>')) {
          ++pos;
          continue;
        }
      }
      // Only calls: the next non-space character must open the arg list.
      size_t j = end;
      while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
      if (j >= code.size() || code[j] != '(') {
        ++pos;
        continue;
      }
      *which = name;
      return true;
    }
  }
  return false;
}

/// The socket layer itself — the only place raw wire I/O belongs.
bool IsWireIoLayer(const std::string& path) {
  return MentionsFile(path, "comm/net_socket") ||
         MentionsFile(path, "comm/store_tcp") ||
         MentionsFile(path, "comm/process_group_tcp");
}

const std::vector<Rule>& Rules() {
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {"unannotated-mutex",
       {{"std::mutex", false},
        {"std::recursive_mutex", false},
        {"std::timed_mutex", false},
        {"std::shared_mutex", false},
        {"std::condition_variable", true}},
       [](const std::string&) { return true; },
       "raw standard-library lock primitives are invisible to the Clang "
       "thread-safety analysis",
       "use ddpkit::Mutex / ddpkit::CondVar from common/mutex.h so "
       "GUARDED_BY and REQUIRES can see the lock"},
      {"check-in-comm",
       {{"DDPKIT_CHECK", true}},
       [](const std::string& path) { return InDir(path, "comm/"); },
       "a CHECK on a collective path turns a peer's failure into a local "
       "process abort",
       "return a ddpkit::Status (or a pre-failed WorkHandle) per the comm "
       "failure model; waive construction-time preconditions with "
       "// ddplint: allow(check-in-comm) <reason>"},
      {"throw-boundary",
       {{"throw", false}},
       IsStatusBoundary,
       "the Reducer/ProcessGroup boundary speaks ddpkit::Status; an "
       "exception thrown here unwinds through non-throwing callers",
       "convert the error to a Status return (or AbortSync) instead of "
       "throwing"},
      {"banned-nondeterminism",
       {{"rand", false},
        {"srand", false},
        {"rand_r", false},
        {"drand48", false},
        {"std::random_device", false},
        {"steady_clock", false},
        {"system_clock", false},
        {"high_resolution_clock", false},
        {"gettimeofday", false},
        {"clock_gettime", false}},
       [](const std::string& path) {
         return !MentionsFile(path, "sim/virtual_clock");
       },
       "unseeded randomness and wall-clock reads make simulated runs "
       "irreproducible",
       "draw randomness from a seeded ddpkit::Rng and time from the "
       "rank's sim::VirtualClock; waive real-time control paths with "
       "// ddplint: allow(banned-nondeterminism) <reason>"},
      {"nodiscard-status",
       {},  // structural rule: matched by LintNodiscardStatus, not tokens
       [](const std::string& path) {
         return IsStatusBoundary(path) && IsHeaderPath(path);
       },
       "a silently dropped Status on a collective or recovery path turns a "
       "typed failure back into the hang or corruption it was typed to "
       "prevent",
       "mark the declaration [[nodiscard]] (same line or the line above); "
       "waive intentionally discardable calls with "
       "// ddplint: allow(nodiscard-status) <reason>"},
      {"nodiscard-workhandle",
       {},  // structural rule: matched by LintNodiscardDecls, not tokens
       [](const std::string& path) {
         return InDir(path, "comm/") && IsHeaderPath(path);
       },
       "a dropped WorkHandle is a dropped collective verdict: the typed "
       "timeout or rank failure the handle carries never reaches the "
       "reducer, so the error surfaces later as a hang or a stale gradient",
       "mark the declaration [[nodiscard]] (same line or the line above); "
       "waive fire-and-forget collectives with "
       "// ddplint: allow(nodiscard-workhandle) <reason>"},
      {"raw-elementwise-loop",
       {},  // structural rule: matched by LintRawElementwiseLoop, not tokens
       [](const std::string& path) {
         return InDir(path, "tensor/") || InDir(path, "comm/");
       },
       "a hand-rolled elementwise loop on a kernel hot path bypasses the "
       "SIMD layer and silently runs scalar",
       "route the loop through a common/vec.h batch helper (Add, Axpy, "
       "AccumulateAdd, Copy, ...); waive loops the vec layer cannot express "
       "— transcendentals, integer fallbacks, dot products — with "
       "// ddplint: allow(raw-elementwise-loop) <reason>"},
      {"raw-wire-io",
       {},  // structural rule: matched by LintRawWireIo, not tokens
       [](const std::string& path) { return !IsWireIoLayer(path); },
       "a raw send/recv/read/write bypasses the deadline-aware socket "
       "helpers, so it can block forever and never sees the abort pipe",
       "go through comm/net_socket.h (SendAll/RecvAll/SendFrame/RecvFrame/"
       "...) or the Store/ProcessGroup layers above it; waive non-wire fds "
       "(pipes, files) with // ddplint: allow(raw-wire-io) <reason> — the "
       "reason is mandatory"},
  };
  return *rules;
}

// ---------------------------------------------------------------------------
// Lint driver.
// ---------------------------------------------------------------------------

struct Violation {
  std::string path;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string token;
};

/// The structural nodiscard passes: every by-value declaration the
/// `declares` predicate matches in an applicable header must carry
/// [[nodiscard]] on its own line or on the previous non-blank code line.
/// Shared by nodiscard-status (Status/Result) and nodiscard-workhandle.
void LintNodiscardDecls(const std::string& rule,
                        bool (*declares)(const std::string&),
                        const char* token, const std::string& path,
                        const std::vector<std::string>& code,
                        const Waivers& waivers,
                        std::vector<Violation>* out) {
  if (waivers.file_rules.count(rule) > 0) return;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!declares(code[i])) continue;
    if (code[i].find("[[nodiscard]]") != std::string::npos) continue;
    bool annotated_above = false;
    for (size_t j = i; j > 0;) {
      --j;
      if (IsBlankLine(code[j])) continue;
      annotated_above = code[j].find("[[nodiscard]]") != std::string::npos;
      break;
    }
    if (annotated_above) continue;
    if (waivers.Covers(rule, i)) continue;
    out->push_back(Violation{path, i + 1, rule, token});
  }
}

void LintRawElementwiseLoop(const std::string& path,
                            const std::vector<std::string>& code,
                            const Waivers& waivers,
                            std::vector<Violation>* out) {
  const std::string rule = "raw-elementwise-loop";
  if (waivers.file_rules.count(rule) > 0) return;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!LineHasRawElementwiseLoop(code[i])) continue;
    if (waivers.Covers(rule, i)) continue;
    out->push_back(Violation{path, i + 1, rule, "dst[i] = ...src[i]"});
  }
}

void LintRawWireIo(const std::string& path,
                   const std::vector<std::string>& code,
                   const Waivers& waivers, std::vector<Violation>* out) {
  const std::string rule = "raw-wire-io";
  if (waivers.file_rules.count(rule) > 0) return;
  for (size_t i = 0; i < code.size(); ++i) {
    std::string which;
    if (!LineHasRawWireIoCall(code[i], &which)) continue;
    if (waivers.Covers(rule, i)) continue;
    out->push_back(Violation{path, i + 1, rule, which});
  }
}

void LintContent(const std::string& path, const std::string& content,
                 std::vector<Violation>* out) {
  const std::string norm = NormalizePath(path);
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> code = StripToCode(raw);
  const Waivers waivers = ExtractWaivers(raw, code);
  for (const Rule& rule : Rules()) {
    if (!rule.applies(norm)) continue;
    if (waivers.file_rules.count(rule.name) > 0) continue;
    if (rule.name == "nodiscard-status") {
      LintNodiscardDecls(rule.name, LineDeclaresStatusFunction, "Status",
                         path, code, waivers, out);
      continue;
    }
    if (rule.name == "nodiscard-workhandle") {
      LintNodiscardDecls(rule.name, LineDeclaresWorkHandleFunction,
                         "WorkHandle", path, code, waivers, out);
      continue;
    }
    if (rule.name == "raw-elementwise-loop") {
      LintRawElementwiseLoop(path, code, waivers, out);
      continue;
    }
    if (rule.name == "raw-wire-io") {
      LintRawWireIo(path, code, waivers, out);
      continue;
    }
    for (size_t i = 0; i < code.size(); ++i) {
      for (const Token& token : rule.tokens) {
        if (!LineHasToken(code[i], token)) continue;
        if (waivers.Covers(rule.name, i)) continue;
        out->push_back(Violation{path, i + 1, rule.name, token.text});
        break;  // one report per line per rule
      }
    }
  }
}

bool LintFile(const std::string& path, std::vector<Violation>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ddplint: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  LintContent(path, buffer.str(), out);
  return true;
}

bool LintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

int LintPaths(const std::vector<std::string>& paths) {
  std::vector<Violation> violations;
  bool io_error = false;
  for (const std::string& arg : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file() && LintableExtension(entry.path())) {
          io_error |= !LintFile(entry.path().string(), &violations);
        }
      }
    } else {
      io_error |= !LintFile(arg, &violations);
    }
  }
  // Directory iteration order is filesystem-dependent; sort for stable
  // CI logs.
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  for (const Violation& v : violations) {
    const Rule* rule = nullptr;
    for (const Rule& r : Rules()) {
      if (r.name == v.rule) rule = &r;
    }
    std::fprintf(stderr, "%s:%zu: [%s] '%s' — %s\n  fix: %s\n",
                 v.path.c_str(), v.line, v.rule.c_str(), v.token.c_str(),
                 rule->why.c_str(), rule->fixit.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "ddplint: %zu violation(s)\n", violations.size());
  }
  return violations.empty() && !io_error ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Selftest: each invariant demonstrated on an embedded snippet — one
// violating case and one clean/waived case per rule, plus the comment and
// literal stripping the rules depend on.
// ---------------------------------------------------------------------------

struct SelfCase {
  std::string name;
  std::string path;     // decides which rules apply
  std::string content;
  size_t expect_violations;
  std::string expect_rule;  // checked when expect_violations > 0
};

int SelfTest(const ddpkit::tools::ToolArgs&) {
  const std::vector<SelfCase> cases = {
      {"raw mutex member flagged", "src/core/x.h",
       "class X {\n std::mutex mu_;\n};\n", 1, "unannotated-mutex"},
      {"raw condition_variable_any flagged (prefix match)", "src/core/x.h",
       "std::condition_variable_any cv_;\n", 1, "unannotated-mutex"},
      {"wrapper types are clean", "src/core/x.h",
       "ddpkit::Mutex mu_;\nddpkit::CondVar cv_;\n", 0, ""},
      {"trailing line waiver honored", "src/core/x.h",
       "std::mutex mu_;  // ddplint: allow(unannotated-mutex) interop\n", 0,
       ""},
      {"comment-block waiver covers next code line", "src/core/x.h",
       "// ddplint: allow(unannotated-mutex) wraps the raw primitive\n"
       "// over two comment lines of reason\n"
       "std::mutex mu_;\n",
       0, ""},
      {"file waiver covers whole file", "src/core/x.h",
       "// ddplint: allow-file(unannotated-mutex) wrapper layer\n"
       "std::mutex a_;\nstd::mutex b_;\n",
       0, ""},
      {"waiver for one rule does not cover another", "src/comm/x.cc",
       "// ddplint: allow(unannotated-mutex) wrong rule\n"
       "DDPKIT_CHECK(ok);\n",
       1, "check-in-comm"},
      {"CHECK in comm flagged (incl. _EQ suffix)", "src/comm/pg.cc",
       "DDPKIT_CHECK_EQ(a, b);\n", 1, "check-in-comm"},
      {"CHECK outside comm is fine", "src/core/reducer.cc",
       "DDPKIT_CHECK(ok);\n", 0, ""},
      {"comm never matches common", "src/common/util.cc",
       "DDPKIT_CHECK(ok);\n", 0, ""},
      {"throw at the status boundary flagged", "src/comm/pg.cc",
       "if (bad) throw std::runtime_error(\"x\");\n", 1, "throw-boundary"},
      {"throw in reducer flagged", "src/core/reducer.cc",
       "throw 1;\n", 1, "throw-boundary"},
      {"throw outside the boundary is fine", "src/tensor/tensor.cc",
       "throw std::bad_alloc();\n", 0, ""},
      {"rand() flagged", "src/core/x.cc", "int r = rand();\n", 1,
       "banned-nondeterminism"},
      {"identifier boundary: grand() is fine", "src/core/x.cc",
       "int r = grand();\n", 0, ""},
      {"wall clock outside the sim flagged", "src/core/x.cc",
       "auto t = std::chrono::steady_clock::now();\n", 1,
       "banned-nondeterminism"},
      {"virtual_clock.h may read clocks", "src/sim/virtual_clock.h",
       "auto t = std::chrono::steady_clock::now();\n", 0, ""},
      {"tokens in comments are ignored", "src/comm/pg.cc",
       "// std::mutex and DDPKIT_CHECK and throw, discussed in prose\n"
       "/* steady_clock too,\n   across lines */\n",
       0, ""},
      {"tokens in string literals are ignored", "src/comm/pg.cc",
       "const char* s = \"DDPKIT_CHECK(throw std::mutex)\";\n", 0, ""},
      {"two rules can fire in one file", "src/comm/pg.cc",
       "DDPKIT_CHECK(ok);\nthrow 1;\n", 2, ""},
      {"bare Status declaration in comm header flagged", "src/comm/x.h",
       "Status Connect(int rank);\n", 1, "nodiscard-status"},
      {"virtual Status declaration flagged", "src/comm/x.h",
       "virtual Status Drain(double timeout) = 0;\n", 1, "nodiscard-status"},
      {"Result<> declaration flagged", "src/comm/x.h",
       "Result<std::vector<int>> Members(const std::string& key);\n", 1,
       "nodiscard-status"},
      {"[[nodiscard]] on the same line is clean", "src/comm/x.h",
       "[[nodiscard]] Status Connect(int rank);\n", 0, ""},
      {"[[nodiscard]] on the previous line is clean", "src/comm/x.h",
       "[[nodiscard]] virtual\nStatus Drain(double timeout) = 0;\n", 0, ""},
      {"Status data members are not declarations", "src/core/reducer.h",
       "Status sync_status_ GUARDED_BY(mu_);\nStatus comm_status_;\n", 0, ""},
      {"const Status& observers are not must-check", "src/core/reducer.h",
       "const Status& sync_status() const;\nStatus& mutable_status();\n", 0,
       ""},
      {"nodiscard-status skips .cc definitions", "src/comm/x.cc",
       "Status Connect(int rank) { return Status::OK(); }\n", 0, ""},
      {"nodiscard-status skips headers outside the boundary",
       "src/optim/optimizer.h", "Status Load(const std::string& path);\n", 0,
       ""},
      {"nodiscard-status waiver honored", "src/comm/x.h",
       "Status Legacy();  // ddplint: allow(nodiscard-status) migration\n", 0,
       ""},
      {"bare WorkHandle declaration in comm header flagged", "src/comm/x.h",
       "WorkHandle AllReduce(Tensor tensor, ReduceOp op);\n", 1,
       "nodiscard-workhandle"},
      {"virtual comm::WorkHandle declaration flagged", "src/comm/x.h",
       "virtual comm::WorkHandle Broadcast(Tensor t, int root) = 0;\n", 1,
       "nodiscard-workhandle"},
      {"[[nodiscard]] WorkHandle on the same line is clean", "src/comm/x.h",
       "[[nodiscard]] WorkHandle AllReduce(Tensor t, ReduceOp op) override;\n",
       0, ""},
      {"[[nodiscard]] WorkHandle on the previous line is clean",
       "src/comm/x.h",
       "[[nodiscard]] virtual\nWorkHandle Gather(Tensor t, int root) = 0;\n",
       0, ""},
      {"WorkHandle members and references are not declarations",
       "src/comm/x.h",
       "WorkHandle work_;\nstd::vector<WorkHandle> works_;\n"
       "const WorkHandle& current() const;\n",
       0, ""},
      {"nodiscard-workhandle skips .cc definitions", "src/comm/x.cc",
       "WorkHandle AllReduce(Tensor t, ReduceOp op) { return Track(t); }\n",
       0, ""},
      {"nodiscard-workhandle skips headers outside comm",
       "src/core/reducer.h", "WorkHandle Launch(Tensor bucket);\n", 0, ""},
      {"nodiscard-workhandle waiver honored", "src/comm/x.h",
       "WorkHandle Probe();  "
       "// ddplint: allow(nodiscard-workhandle) fire-and-forget probe\n",
       0, ""},
      {"raw elementwise loop in tensor flagged", "src/tensor/ops.cc",
       "for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];\n", 1,
       "raw-elementwise-loop"},
      {"raw accumulate loop in comm flagged", "src/comm/algorithms.cc",
       "for (int64_t i = 0; i < n; ++i) dst[i] += src[i];\n", 1,
       "raw-elementwise-loop"},
      {"vec.h batch call is clean", "src/tensor/ops.cc",
       "vec::Add(pa, pb, po, n);\n", 0, ""},
      {"scalar reduction is not elementwise", "src/tensor/ops.cc",
       "for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];\n", 0, ""},
      {"scatter through an index array is not elementwise",
       "src/tensor/ops.cc", "pi[idx[i]] += pg[i];\n", 0, ""},
      {"compound-index addressing is not elementwise", "src/tensor/ops.cc",
       "po[i * n + j] = pa[i * n + j] + pbias[j];\n", 0, ""},
      {"comparison is not a store", "src/tensor/ops.cc",
       "if (row[j] > row[best]) best = j;\n", 0, ""},
      {"member subscripts are not bare", "src/tensor/ops.cc",
       "r.lane[i] = a.lane[i] + b.lane[i];\n", 0, ""},
      {"raw loop outside kernel dirs is fine", "src/optim/sgd.cc",
       "for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];\n", 0, ""},
      {"raw-elementwise-loop waiver honored", "src/tensor/ops.cc",
       "// ddplint: allow(raw-elementwise-loop) transcendental stays scalar\n"
       "for (int64_t i = 0; i < n; ++i) po[i] = std::exp(pa[i]);\n",
       0, ""},
      {"raw send() outside the socket layer flagged", "src/core/x.cc",
       "send(fd, buf.data(), buf.size(), 0);\n", 1, "raw-wire-io"},
      {"global-qualified ::write is still POSIX", "src/comm/pg.cc",
       "::write(fd, p, n);\n", 1, "raw-wire-io"},
      {"recvfrom variant flagged", "tools/launcher.cc",
       "ssize_t got = recvfrom(fd, p, n, 0, nullptr, nullptr);\n", 1,
       "raw-wire-io"},
      {"member read/write calls are different functions", "src/core/x.cc",
       "file.read(p, n);\nstream->write(p, n);\n", 0, ""},
      {"scoped Foo::read is not the POSIX call", "src/core/x.cc",
       "Checkpoint::read(path);\n", 0, ""},
      {"identifier boundary: fread/pthread are fine", "src/core/x.cc",
       "fread(p, 1, n, f);\nunready(x);\n", 0, ""},
      {"read without an arg list is not a call", "src/core/x.cc",
       "int read;\nbool write = false;\n", 0, ""},
      {"socket layer itself may do raw I/O", "src/comm/net_socket.cc",
       "send(fd, p, n, MSG_NOSIGNAL);\n", 0, ""},
      {"store_tcp and process_group_tcp are the wire layer",
       "src/comm/process_group_tcp.cc", "recv(fd, p, n, 0);\n", 0, ""},
      {"raw-wire-io waiver with a reason honored", "tools/launcher.cc",
       "// ddplint: allow(raw-wire-io) reason: launcher log pipe, not wire\n"
       "ssize_t got = read(pipe_fd, buf, sizeof(buf));\n",
       0, ""},
      {"waiver without a reason is ignored", "tools/launcher.cc",
       "read(pipe_fd, buf, n);  // ddplint: allow(raw-wire-io)\n", 1,
       "raw-wire-io"},
  };

  int failures = 0;
  for (const SelfCase& c : cases) {
    std::vector<Violation> got;
    LintContent(c.path, c.content, &got);
    bool ok = got.size() == c.expect_violations;
    if (ok && c.expect_violations > 0 && !c.expect_rule.empty()) {
      ok = got[0].rule == c.expect_rule;
    }
    std::printf("  %-48s %s\n", c.name.c_str(), ok ? "PASSED" : "FAILED");
    if (!ok) {
      ++failures;
      std::printf("    expected %zu violation(s)%s%s, got %zu:\n",
                  c.expect_violations, c.expect_rule.empty() ? "" : " of ",
                  c.expect_rule.c_str(), got.size());
      for (const Violation& v : got) {
        std::printf("    %s:%zu [%s] '%s'\n", v.path.c_str(), v.line,
                    v.rule.c_str(), v.token.c_str());
      }
    }
  }
  std::printf("selftest %s (%zu cases, %d failed)\n",
              failures == 0 ? "PASSED" : "FAILED", cases.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ddpkit::tools::ToolSpec spec;
  spec.usage = {"<path>...      # lint .h/.cc files or directory trees",
                "--selftest     # run the embedded invariant snippets"};
  spec.min_positional = 1;
  spec.max_positional = 1024;
  spec.run = [](const ddpkit::tools::ToolArgs& args) {
    return LintPaths(args.positional);
  };
  spec.selftest = SelfTest;
  return ddpkit::tools::RunTool(argc, argv, spec);
}
