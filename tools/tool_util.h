// Shared scaffolding for ddpkit's command-line tools (trace_summary,
// ddplint): one argv parser with --flag[=value] syntax and one driver that
// routes --selftest, --help, and arity errors identically everywhere, so
// every tool doubles as a ctest entry the same way.

#ifndef DDPKIT_TOOLS_TOOL_UTIL_H_
#define DDPKIT_TOOLS_TOOL_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace ddpkit::tools {

/// Parsed command line: positional operands plus --name / --name=value
/// flags. --selftest is recognized for every tool and split out because
/// the driver routes it before the tool's own logic runs.
struct ToolArgs {
  std::string program;
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  bool selftest = false;
  bool help = false;

  bool HasFlag(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return true;
    }
    return false;
  }

  std::string FlagValue(const std::string& name,
                        const std::string& fallback = "") const {
    for (const auto& [k, v] : flags) {
      if (k == name) return v;
    }
    return fallback;
  }
};

inline ToolArgs ParseToolArgs(int argc, char** argv) {
  ToolArgs args;
  args.program = argc > 0 ? argv[0] : "tool";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      args.positional.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (name == "selftest") {
      // Also recorded as a flag so tools can read --selftest=<group>
      // via FlagValue("selftest") to run one selftest group.
      args.selftest = true;
      args.flags.emplace_back(name, value);
    } else if (name == "help") {
      args.help = true;
    } else {
      args.flags.emplace_back(name, value);
    }
  }
  return args;
}

/// One tool's contract with the shared driver. `usage` lines are printed
/// (prefixed by the program name) on --help and on arity errors; `run`
/// handles a normal invocation; `selftest` (optional) is the end-to-end
/// check wired into ctest.
struct ToolSpec {
  std::vector<std::string> usage;
  size_t min_positional = 0;
  size_t max_positional = 0;
  std::function<int(const ToolArgs&)> run;
  std::function<int(const ToolArgs&)> selftest;
};

inline void PrintUsage(const ToolArgs& args, const ToolSpec& spec,
                       std::FILE* out) {
  for (size_t i = 0; i < spec.usage.size(); ++i) {
    std::fprintf(out, "%s %s %s\n", i == 0 ? "usage:" : "      ",
                 args.program.c_str(), spec.usage[i].c_str());
  }
}

/// Shared main(): parses argv, dispatches --selftest / --help, enforces
/// the positional-arity window, and delegates to the tool. Exit status is
/// the tool's own (selftests return 0 on success, 1 on failure, so each
/// tool doubles as a ctest entry).
inline int RunTool(int argc, char** argv, const ToolSpec& spec) {
  const ToolArgs args = ParseToolArgs(argc, argv);
  if (args.help) {
    PrintUsage(args, spec, stdout);
    return 0;
  }
  if (args.selftest) {
    if (!spec.selftest) {
      std::fprintf(stderr, "%s: no selftest available\n",
                   args.program.c_str());
      return 1;
    }
    return spec.selftest(args);
  }
  if (args.positional.size() < spec.min_positional ||
      args.positional.size() > spec.max_positional) {
    PrintUsage(args, spec, stderr);
    return 1;
  }
  return spec.run(args);
}

}  // namespace ddpkit::tools

#endif  // DDPKIT_TOOLS_TOOL_UTIL_H_
