// trace_summary: digest a ddpkit Chrome-trace JSON file (written by
// TraceRecorder::WriteJson) into the paper's Figure-6 style overlap
// numbers, per rank:
//
//   backward  = union of "backward" category spans (per-gradient hooks)
//   comm      = union of "comm" category spans (bucket AllReduce windows)
//   overlap   = |backward ∩ comm|
//   ratio     = overlap / comm   (1.0 = communication fully hidden)
//
// Also counts flow arrows (grad-ready -> launch -> completion) and frame
// markers so a truncated or mis-written trace is visible at a glance.
//
// Usage:
//   trace_summary <trace.json>
//   trace_summary --selftest [scratch.json]   # write + verify a known trace
//
// Exit status is 0 on success, 1 on parse/verification failure, so the
// selftest doubles as a ctest entry.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace.h"
#include "tool_util.h"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. Chrome trace files are flat and machine-written; this
// parser supports the full value grammar (objects, arrays, strings with
// escapes, numbers, true/false/null) but keeps only what the summary needs.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                       // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  bool Parse(JsonValue* out, std::string* error) {
    const bool ok = Value(out) && (SkipWs(), pos_ == input_.size());
    if (!ok && error != nullptr) {
      *error = "JSON parse error near byte " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  void SkipWs() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, JsonValue* out, JsonValue::Kind kind,
               bool value) {
    const size_t len = std::string(word).size();
    if (input_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    out->kind = kind;
    out->boolean = value;
    return true;
  }

  bool String(std::string* out) {
    if (pos_ >= input_.size() || input_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) return false;
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = input_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Summary output never prints names, so a lossy single-byte fold
          // of non-ASCII escapes is acceptable here.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool Number(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' || input_[pos_] == 'E' ||
            input_[pos_] == '+' || input_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out->number = std::stod(input_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool Value(JsonValue* out) {
    SkipWs();
    if (pos_ >= input_.size()) return false;
    const char c = input_[pos_];
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->text);
    }
    if (c == 't') return Literal("true", out, JsonValue::Kind::kBool, true);
    if (c == 'f') return Literal("false", out, JsonValue::Kind::kBool, false);
    if (c == 'n') return Literal("null", out, JsonValue::Kind::kNull, false);
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (pos_ < input_.size() && input_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!Value(&item)) return false;
        out->items.push_back(std::move(item));
        SkipWs();
        if (pos_ >= input_.size()) return false;
        if (input_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (input_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (pos_ < input_.size() && input_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!String(&key)) return false;
        SkipWs();
        if (pos_ >= input_.size() || input_[pos_] != ':') return false;
        ++pos_;
        JsonValue value;
        if (!Value(&value)) return false;
        out->fields.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos_ >= input_.size()) return false;
        if (input_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (input_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    return Number(out);
  }

  const std::string& input_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Interval arithmetic over microsecond spans.
// ---------------------------------------------------------------------------

using Interval = std::pair<double, double>;

std::vector<Interval> UnionIntervals(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::vector<Interval> merged;
  for (const Interval& iv : intervals) {
    if (iv.second <= iv.first) continue;
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

double TotalLength(const std::vector<Interval>& merged) {
  double total = 0.0;
  for (const Interval& iv : merged) total += iv.second - iv.first;
  return total;
}

double IntersectionLength(const std::vector<Interval>& a,
                          const std::vector<Interval>& b) {
  double total = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Summary proper.
// ---------------------------------------------------------------------------

struct RankSummary {
  std::vector<Interval> backward;
  std::vector<Interval> comm;
  std::vector<Interval> forward;
  int flow_starts = 0;
  int flow_steps = 0;
  int flow_ends = 0;
  int frames = 0;
};

bool Summarize(const JsonValue& root, std::string* error,
               std::map<int, RankSummary>* out) {
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    *error = "no traceEvents array at top level";
    return false;
  }
  for (const JsonValue& ev : events->items) {
    if (ev.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* ph = ev.Find("ph");
    const JsonValue* tid = ev.Find("tid");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        tid == nullptr) {
      continue;
    }
    RankSummary& rank = (*out)[static_cast<int>(tid->number)];
    const JsonValue* cat = ev.Find("cat");
    const std::string category =
        cat != nullptr && cat->kind == JsonValue::Kind::kString ? cat->text
                                                                : "";
    if (ph->text == "X") {
      const JsonValue* ts = ev.Find("ts");
      const JsonValue* dur = ev.Find("dur");
      if (ts == nullptr || dur == nullptr) continue;
      const Interval iv{ts->number, ts->number + dur->number};
      if (category == "backward") rank.backward.push_back(iv);
      else if (category == "comm") rank.comm.push_back(iv);
      else if (category == "forward") rank.forward.push_back(iv);
    } else if (ph->text == "s") {
      ++rank.flow_starts;
    } else if (ph->text == "t") {
      ++rank.flow_steps;
    } else if (ph->text == "f") {
      ++rank.flow_ends;
    } else if (ph->text == "i" && category == "frame") {
      ++rank.frames;
    }
  }
  if (out->empty()) {
    *error = "trace contains no events";
    return false;
  }
  return true;
}

void PrintSummary(const std::map<int, RankSummary>& ranks) {
  std::printf("%-6s %-12s %-12s %-12s %-12s %-8s %-16s %-7s\n", "rank",
              "forward_ms", "backward_ms", "comm_ms", "overlap_ms", "ratio",
              "flows(s/t/f)", "frames");
  for (const auto& [rank, s] : ranks) {
    const auto backward = UnionIntervals(s.backward);
    const auto comm = UnionIntervals(s.comm);
    const double backward_us = TotalLength(backward);
    const double comm_us = TotalLength(comm);
    const double overlap_us = IntersectionLength(backward, comm);
    const double ratio = comm_us > 0.0 ? overlap_us / comm_us : 0.0;
    std::ostringstream flows;
    flows << s.flow_starts << "/" << s.flow_steps << "/" << s.flow_ends;
    std::printf("%-6d %-12.3f %-12.3f %-12.3f %-12.3f %-8.3f %-16s %-7d\n",
                rank, TotalLength(UnionIntervals(s.forward)) * 1e-3,
                backward_us * 1e-3, comm_us * 1e-3, overlap_us * 1e-3, ratio,
                flows.str().c_str(), s.frames);
  }
  std::printf("\nratio = |backward ∩ comm| / |comm|: 1.0 means every "
              "AllReduce microsecond was hidden under backward compute "
              "(paper Fig 6); 0.0 means fully serialized.\n");
}

bool SummarizeFile(const std::string& path,
                   std::map<int, RankSummary>* ranks) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_summary: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  JsonValue root;
  std::string error;
  JsonParser parser(text);
  if (!parser.Parse(&root, &error) || !Summarize(root, &error, ranks)) {
    std::fprintf(stderr, "trace_summary: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

// Writes a trace with a known answer and checks the pipeline end to end:
// backward occupies [0ms, 10ms], comm occupies [5ms, 15ms], so the overlap
// is 5ms and the ratio must come out exactly 0.5.
int SelfTest(const std::string& path) {
  ddpkit::core::TraceRecorder trace;
  trace.AddSpan("forward", "forward", 0, 0.000, 0.002);
  trace.AddSpan("grad 0", "backward", 0, 0.000, 0.006);
  trace.AddSpan("grad 1", "backward", 0, 0.004, 0.010);
  trace.AddSpan("allreduce bucket 0", "comm", 0, 0.005, 0.015);
  trace.AddFlowPoint(1, ddpkit::core::TraceRecorder::FlowPhase::kStart,
                     "bucket 0 grads ready", "flow", 0, 0.005);
  trace.AddFlowPoint(1, ddpkit::core::TraceRecorder::FlowPhase::kStep,
                     "bucket 0 launch", "flow", 0, 0.005);
  trace.AddFlowPoint(1, ddpkit::core::TraceRecorder::FlowPhase::kEnd,
                     "bucket 0 complete", "flow", 0, 0.015);
  trace.AddInstant("iteration 0", "frame", 0, 0.015);
  const ddpkit::Status written = trace.WriteJson(path);
  if (!written.ok()) {
    std::fprintf(stderr, "trace_summary selftest: %s\n",
                 written.message().c_str());
    return 1;
  }

  std::map<int, RankSummary> ranks;
  if (!SummarizeFile(path, &ranks)) return 1;
  PrintSummary(ranks);

  const RankSummary& s = ranks[0];
  const auto backward = UnionIntervals(s.backward);
  const auto comm = UnionIntervals(s.comm);
  const double ratio = IntersectionLength(backward, comm) / TotalLength(comm);
  const bool ok = std::fabs(ratio - 0.5) < 1e-9 &&
                  std::fabs(TotalLength(backward) - 10000.0) < 1e-6 &&
                  s.flow_starts == 1 && s.flow_steps == 1 &&
                  s.flow_ends == 1 && s.frames == 1;
  std::printf("selftest %s (ratio %.6f, expected 0.5)\n",
              ok ? "PASSED" : "FAILED", ratio);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ddpkit::tools::ToolSpec spec;
  spec.usage = {"<trace.json>", "--selftest [scratch.json]"};
  spec.min_positional = 1;
  spec.max_positional = 1;
  spec.run = [](const ddpkit::tools::ToolArgs& args) {
    std::map<int, RankSummary> ranks;
    if (!SummarizeFile(args.positional[0], &ranks)) return 1;
    PrintSummary(ranks);
    return 0;
  };
  spec.selftest = [](const ddpkit::tools::ToolArgs& args) {
    return SelfTest(args.positional.empty() ? "trace_summary_selftest.json"
                                            : args.positional[0]);
  };
  return ddpkit::tools::RunTool(argc, argv, spec);
}
