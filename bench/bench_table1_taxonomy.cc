// Table 1: taxonomy of distributed training solutions along three axes —
// Synchronous vs Asynchronous update, Cross- vs Intra-iteration
// parallelism, and Data vs Model parallelism — as catalogued in the
// paper's related-work section.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"

namespace {

struct Solution {
  const char* name;
  bool synchronous;
  bool asynchronous;
  bool cross_iteration;
  bool intra_iteration;
  bool data_parallel;
  bool model_parallel;
};

// Rows exactly as marked in the paper's Table 1.
const std::vector<Solution> kSolutions = {
    {"PT DDP [9] (this library)", true, false, false, true, true, false},
    {"PT RPC [6]", true, true, true, true, false, true},
    {"TF MultiWorkerMirrored [10]", true, false, false, true, true, false},
    {"TF ParameterServer [11,27]", false, true, true, false, true, true},
    {"Mesh TensorFlow [36]", true, false, false, true, true, true},
    {"GPipe [21]", true, false, true, false, false, true},
    {"Horovod [35]", true, false, false, true, true, false},
    {"GradientFlow [37]", true, false, false, true, true, false},
    {"SlowMo [40]", false, true, true, false, true, false},
    {"PipeDream [29]", true, true, true, false, true, true},
    {"ZeRO [32]", true, false, false, true, true, true},
    {"Parallax [23]", true, true, false, true, true, true},
    {"ByteScheduler [31]", true, false, true, true, true, false},
    {"TicTac [19]", true, false, true, true, true, false},
    {"PACE [12]", true, false, false, true, true, false},
};

const char* Mark(bool value) { return value ? "x" : " "; }

}  // namespace

int main() {
  ddpkit::bench::Banner(
      "Table 1", "Distributed training solutions: S(ync) A(sync) "
                 "C(ross-iter) I(ntra-iter) D(ata-par) M(odel-par)");
  std::printf("%-30s %2s %2s %2s %2s %2s %2s\n", "scheme", "S", "A", "C",
              "I", "D", "M");
  ddpkit::bench::JsonReport report("table1_taxonomy");
  std::string rows = "[";
  bool first = true;
  for (const auto& s : kSolutions) {
    std::printf("%-30s %2s %2s %2s %2s %2s %2s\n", s.name,
                Mark(s.synchronous), Mark(s.asynchronous),
                Mark(s.cross_iteration), Mark(s.intra_iteration),
                Mark(s.data_parallel), Mark(s.model_parallel));
    if (!first) rows += ',';
    first = false;
    std::string row = "{\"scheme\":\"";
    ddpkit::AppendJsonEscaped(&row, s.name);
    auto flag = [](bool v) { return v ? "true" : "false"; };
    row += std::string("\",\"synchronous\":") + flag(s.synchronous) +
           ",\"asynchronous\":" + flag(s.asynchronous) +
           ",\"cross_iteration\":" + flag(s.cross_iteration) +
           ",\"intra_iteration\":" + flag(s.intra_iteration) +
           ",\"data_parallel\":" + flag(s.data_parallel) +
           ",\"model_parallel\":" + flag(s.model_parallel) + "}";
    rows += row;
  }
  rows += "]";
  report.AddRaw("solutions", rows);
  report.Write();
  std::printf("\nddpkit implements the PT DDP row: synchronous, "
              "intra-iteration, data-parallel.\n");
  return 0;
}
