#ifndef DDPKIT_BENCH_BENCH_UTIL_H_
#define DDPKIT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"

namespace ddpkit::bench {

/// Prints a figure/table banner matching the paper's numbering.
inline void Banner(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("==============================================================\n");
}

/// One box-whisker row (the Fig 7/8 presentation).
inline void PrintBoxRow(const std::string& label, const Summary& s,
                        double scale = 1.0) {
  std::printf("%-14s min=%-9.4f p25=%-9.4f med=%-9.4f p75=%-9.4f max=%-9.4f\n",
              label.c_str(), s.min * scale, s.p25 * scale, s.median * scale,
              s.p75 * scale, s.max * scale);
}

/// Compact series printer: label then value per column.
inline void PrintSeries(const std::string& label,
                        const std::vector<double>& values,
                        const char* format = "%9.4f") {
  std::printf("%-14s", label.c_str());
  for (double v : values) std::printf(format, v);
  std::printf("\n");
}

inline void PrintHeader(const std::string& label,
                        const std::vector<std::string>& columns) {
  std::printf("%-14s", label.c_str());
  for (const auto& c : columns) std::printf("%9s", c.c_str());
  std::printf("\n");
}

}  // namespace ddpkit::bench

#endif  // DDPKIT_BENCH_BENCH_UTIL_H_
