// Cross-check: validates the discrete-event cluster simulator against the
// REAL thread-backed DDP stack at small scale. Both use the same cost
// models, bucket-assignment code and in-order launch rule; the real stack
// additionally runs true autograd and true ring all-reduce data movement.
// Agreement here is what licenses trusting the simulator's 256-GPU
// extrapolations.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "bench_json.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "nn/zoo.h"

using namespace ddpkit;  // NOLINT

namespace {

/// Virtual per-iteration latency measured on the real stack: compute is
/// charged by the same ComputeCostModel the simulator uses; communication
/// timing comes from the live ProcessGroupSim queues.
double RealStackLatency(int world, size_t bucket_cap,
                        const std::vector<int64_t>& mlp_sizes,
                        cluster::ModelSpec* spec_out) {
  constexpr int kIters = 6;
  double per_iter = 0.0;
  comm::SimWorld::Run(world, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(5);
    auto model = std::make_shared<nn::Mlp>(mlp_sizes, &rng);
    if (ctx.rank == 0 && spec_out != nullptr) {
      *spec_out = cluster::SpecFromModule("mlp", *model);
    }
    auto compute = std::make_shared<sim::ComputeCostModel>(
        sim::ComputeCostModel::GpuProfile());
    core::DdpOptions options;
    options.bucket_cap_bytes = bucket_cap;
    options.compute_model = compute;
    core::DistributedDataParallel ddp(model, ctx.process_group, options);

    int64_t total_numel = model->NumParameters();
    const double t0 = ctx.clock->Now();
    for (int it = 0; it < kIters; ++it) {
      model->ZeroGrad();
      Tensor x = Tensor::Full({2, mlp_sizes.front()}, 0.1);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      // Charge the optimizer step like the simulator does.
      ctx.clock->Advance(compute->OptimizerSeconds(total_numel));
    }
    if (ctx.rank == 0) per_iter = (ctx.clock->Now() - t0) / kIters;
  });
  return per_iter;
}

double SimulatorLatency(int world, size_t bucket_cap,
                        const cluster::ModelSpec& spec) {
  cluster::ClusterConfig config;
  config.world = world;
  config.backend = sim::Backend::kNccl;
  config.bucket_cap_bytes = bucket_cap;
  config.compute = sim::ComputeCostModel::GpuProfile();
  config.compute.op_jitter_sigma = 0.0;
  config.straggler.sigma = 0.0;
  cluster::ClusterSim sim(spec, config);
  return sim.Run(6).mean_breakdown.total;
}

}  // namespace

int main() {
  bench::Banner("Cross-check",
                "Cluster simulator vs real thread-backed DDP stack");
  // A ~1.3M-parameter MLP: big enough that comm and compute both matter.
  const std::vector<int64_t> sizes = {256, 512, 512, 512, 256, 64};
  std::printf("%-8s %-12s %-16s %-16s %-10s\n", "world", "bucket_cap",
              "real_stack_sec", "simulator_sec", "diff_%");
  bench::JsonReport report("crosscheck");
  std::string rows = "[";
  bool first = true;
  for (int world : {2, 4, 8}) {
    for (size_t cap : {size_t{64} << 10, size_t{1} << 20, size_t{25} << 20}) {
      cluster::ModelSpec spec;
      const double real = RealStackLatency(world, cap, sizes, &spec);
      const double simulated = SimulatorLatency(world, cap, spec);
      std::printf("%-8d %-12zu %-16.6f %-16.6f %-10.1f\n", world, cap, real,
                  simulated, 100.0 * (simulated - real) / real);
      if (!first) rows += ',';
      first = false;
      rows += "{\"world\":" + std::to_string(world) +
              ",\"bucket_cap_bytes\":" + std::to_string(cap) +
              ",\"real_stack_seconds\":" + JsonNumber(real) +
              ",\"simulator_seconds\":" + JsonNumber(simulated) + "}";
    }
  }
  rows += "]";
  report.AddRaw("rows", rows);
  report.Write();
  std::printf("\nBoth paths share bucket assignment, compute charging and "
              "comm pricing; residual differences come from hook-time "
              "bookkeeping vs closed-form timelines. Small deltas validate "
              "the simulator's large-scale results (Figs 6-10, 12).\n");
  return 0;
}
