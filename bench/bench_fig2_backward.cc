// Figure 2 (c)/(d): time elapsed in the backward pass of a ~60M-parameter
// ResNet152 as a function of the number of gradients already produced, on
// the GPU and CPU device profiles. The "measured range" band comes from
// per-op log-normal jitter across repeated runs.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cluster/model_specs.h"
#include "common/rng.h"
#include "sim/compute_cost_model.h"

using namespace ddpkit;  // NOLINT

namespace {

std::string RunDevice(const sim::ComputeCostModel::Options& profile,
                      const char* label) {
  const auto spec = cluster::ResNet152Spec();
  std::vector<int64_t> backward_numels;
  for (size_t i = spec.params.size(); i-- > 0;) {
    backward_numels.push_back(spec.params[i].numel);
  }
  sim::ComputeCostModel model(profile);

  constexpr int kRuns = 20;
  std::vector<std::vector<double>> runs;
  Rng rng(7);
  for (int r = 0; r < kRuns; ++r) {
    runs.push_back(model.GradReadyTimes(backward_numels, &rng));
  }

  // Cumulative parameter count along the backward timeline.
  std::vector<int64_t> cumulative(backward_numels.size());
  int64_t acc = 0;
  for (size_t i = 0; i < backward_numels.size(); ++i) {
    acc += backward_numels[i];
    cumulative[i] = acc;
  }

  std::printf("%s backward on %s: %zu gradient tensors, %.1fM parameters\n",
              spec.name.c_str(), label, spec.params.size(),
              spec.TotalNumel() / 1e6);
  std::printf("%-18s %-14s %-14s %-14s\n", "params_ready", "median_sec",
              "min_sec", "max_sec");
  // Print ~16 evenly spaced sample points.
  const size_t n = backward_numels.size();
  std::string rows = "[";
  for (size_t s = 1; s <= 16; ++s) {
    const size_t idx = std::min(n - 1, s * n / 16);
    std::vector<double> at;
    for (const auto& run : runs) at.push_back(run[idx]);
    Summary summary = Summarize(at);
    std::printf("%-18lld %-14.4f %-14.4f %-14.4f\n",
                static_cast<long long>(cumulative[idx]), summary.median,
                summary.min, summary.max);
    if (s > 1) rows += ',';
    rows += "{\"params_ready\":" + std::to_string(cumulative[idx]) +
            ",\"median_seconds\":" + JsonNumber(summary.median) +
            ",\"min_seconds\":" + JsonNumber(summary.min) +
            ",\"max_seconds\":" + JsonNumber(summary.max) + "}";
  }
  rows += "]";
  std::printf("\n");
  return "{\"device\":\"" + std::string(label) + "\",\"rows\":" + rows + "}";
}

}  // namespace

int main() {
  bench::JsonReport report("fig2_backward");
  bench::Banner("Figure 2(c)", "GPU backward time vs #ready parameters "
                               "(ResNet152)");
  const std::string gpu = RunDevice(sim::ComputeCostModel::GpuProfile(), "GPU");

  bench::Banner("Figure 2(d)", "CPU backward time vs #ready parameters "
                               "(ResNet152)");
  const std::string cpu = RunDevice(sim::ComputeCostModel::CpuProfile(), "CPU");
  report.AddRaw("devices", "[" + gpu + "," + cpu + "]");
  report.Write();

  std::printf("Expected shape: near-linear growth; full GPU backward "
              "~0.25 s, CPU ~6 s (paper Fig 2c/2d).\n");
  return 0;
}
