// Figure 7: per-iteration latency vs bucket size (bucket_cap_mb) on 16
// GPUs, for ResNet50 and BERT on NCCL and Gloo. Box-whisker rows include
// the 100-iteration hiccup outliers the paper attributes to DDP instance
// re-construction and input regeneration.

#include "bucket_sweep.h"

int main() {
  ddpkit::bench::RunBucketFigure("Figure 7", 16);
  return 0;
}
