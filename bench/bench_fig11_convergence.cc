// Figure 11: accuracy of skipping synchronization — REAL distributed
// training (thread-backed DDP stack, real autograd, real ring AllReduce)
// of a CNN on synthetic MNIST, comparing gradient sync every 1/2/4/8
// iterations under two regimes:
//   (a) batch size 8, lr 0.02  -> no_sync barely affects convergence;
//   (b) larger batch, larger lr -> no_sync hurts the final loss (the
//       paper's red-box effect: accumulated gradients implicitly demand a
//       smaller learning rate).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "bench_json.h"
#include "bench_util.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "data/distributed_sampler.h"
#include "data/synthetic.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

using namespace ddpkit;  // NOLINT

namespace {

constexpr int kWorld = 2;

std::vector<double> TrainCurve(int iterations, int sync_every, int batch,
                               double lr, double momentum) {
  data::SyntheticMnist dataset(1024, /*seed=*/17, /*noise_stddev=*/0.8);
  std::vector<double> losses(static_cast<size_t>(iterations), 0.0);
  comm::SimWorld::Run(kWorld, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(4);
    auto model = std::make_shared<nn::SmallConvNet>(&rng, /*width=*/2);
    core::DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(),
                   optim::Sgd::Options{.lr = lr, .momentum = momentum});
    nn::CrossEntropyLoss criterion;
    data::DistributedSampler sampler(dataset.size(), kWorld, ctx.rank, 23);
    auto indices = sampler.EpochIndices(0);
    size_t cursor = 0;
    for (int it = 0; it < iterations; ++it) {
      std::vector<int64_t> ids;
      for (int b = 0; b < batch; ++b) {
        ids.push_back(indices[cursor++ % indices.size()]);
      }
      auto data = dataset.Get(ids);
      const bool sync = ((it + 1) % sync_every) == 0;
      double loss_value;
      if (!sync) {
        auto guard = ddp.no_sync();
        Tensor loss = criterion(ddp.Forward(data.inputs), data.targets);
        loss_value = loss.Item();
        autograd::Backward(loss);
      } else {
        Tensor loss = criterion(ddp.Forward(data.inputs), data.targets);
        loss_value = loss.Item();
        autograd::Backward(loss);
        opt.Step();
        opt.ZeroGrad();
      }
      if (ctx.rank == 0) losses[static_cast<size_t>(it)] = loss_value;
    }
  });
  return losses;
}

double Smoothed(const std::vector<double>& series, int at, int window) {
  double acc = 0.0;
  int n = 0;
  for (int i = std::max(0, at - window + 1); i <= at; ++i) {
    acc += series[static_cast<size_t>(i)];
    ++n;
  }
  return acc / n;
}

std::string RunConfig(const char* label, int iterations, int batch, double lr,
                      double momentum) {
  std::printf("%s (batch=%d/rank, lr=%.2f, momentum=%.1f, %d ranks, real "
              "training):\n",
              label, batch, lr, momentum, kWorld);
  std::vector<std::vector<double>> curves;
  for (int n : {1, 2, 4, 8}) {
    curves.push_back(TrainCurve(iterations, n, batch, lr, momentum));
  }

  std::printf("  %-10s %-10s %-10s %-10s %-10s\n", "iteration", "nccl(n=1)",
              "no_sync_2", "no_sync_4", "no_sync_8");
  for (int it = 19; it < iterations; it += 20) {
    std::printf("  %-10d", it + 1);
    for (const auto& curve : curves) {
      std::printf(" %-10.4f", Smoothed(curve, it, 15));
    }
    std::printf("\n");
  }
  std::printf("  final smoothed losses: ");
  const int cadences[] = {1, 2, 4, 8};
  std::string finals = "[";
  for (size_t c = 0; c < curves.size(); ++c) {
    const double final_loss = Smoothed(curves[c], iterations - 1, 15);
    std::printf("%.4f  ", final_loss);
    if (c) finals += ',';
    finals += "{\"sync_every\":" + std::to_string(cadences[c]) +
              ",\"final_smoothed_loss\":" + JsonNumber(final_loss) + "}";
  }
  finals += "]";
  std::printf("\n\n");
  std::string out = "{\"label\":\"";
  AppendJsonEscaped(&out, label);
  return out + "\",\"batch\":" + std::to_string(batch) +
         ",\"lr\":" + JsonNumber(lr) + ",\"cadences\":" + finals + "}";
}

}  // namespace

int main() {
  bench::Banner("Figure 11", "Convergence with skipped synchronization");
  bench::JsonReport report("fig11_convergence");
  std::string configs = "[";
  configs += RunConfig("(a) small batch", /*iterations=*/160, /*batch=*/8,
                       /*lr=*/0.02, /*momentum=*/0.0);
  // The paper's (b) regime: large batch and learning rate. Accumulating n
  // micro-gradients multiplies the effective step by ~n, which this lr and
  // momentum cannot absorb.
  configs += "," + RunConfig("(b) large batch", /*iterations=*/100,
                             /*batch=*/64, /*lr=*/0.35, /*momentum=*/0.5);
  configs += "]";
  report.AddRaw("configs", configs);
  report.Write();
  std::printf("Expected shape: in (a) all cadences converge almost "
              "identically; in (b) aggressive skipping (no_sync_8) leaves a "
              "visibly higher final loss (paper Fig 11's red box).\n");
  return 0;
}
