// Figure 10: skipping gradient synchronization — average per-iteration
// latency when AllReduce runs every 1, 2, 4, or 8 iterations (no_sync),
// for ResNet50 on NCCL and Gloo, 1-256 GPUs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"

using namespace ddpkit;  // NOLINT

namespace {

const int kWorlds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

std::string RunBackend(sim::Backend backend) {
  std::printf("ResNet50 on %s, average per-iteration latency (sec):\n",
              sim::BackendName(backend));
  std::vector<std::string> columns;
  for (int world : kWorlds) columns.push_back(std::to_string(world));
  bench::PrintHeader("sync_every", columns);

  std::vector<double> baseline;
  std::string series = "[";
  bool first = true;
  for (int n : {1, 2, 4, 8}) {
    std::vector<double> row;
    for (int world : kWorlds) {
      cluster::ClusterConfig config;
      config.world = world;
      config.backend = backend;
      config.skip_sync_every = n;
      config.straggler.sigma = world > 32 ? 0.06 : 0.03;
      sim::NcclCostModel::Options nccl;
      nccl.degraded_above_world = 128;
      config.nccl_options = nccl;
      cluster::ClusterSim sim(cluster::ResNet50Spec(), config);
      row.push_back(sim.Run(64).LatencySummary().mean);
    }
    if (n == 1) baseline = row;
    bench::PrintSeries(n == 1 ? "every (n=1)" : "no_sync_" + std::to_string(n),
                       row);
    if (!first) series += ',';
    first = false;
    series += "{\"sync_every\":" + std::to_string(n) + ",\"mean_seconds\":[";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) series += ',';
      series += JsonNumber(row[i]);
    }
    series += "]}";
  }
  series += "]";
  std::printf("\n");
  return "{\"backend\":\"" + std::string(sim::BackendName(backend)) +
         "\",\"series\":" + series + "}";
}

}  // namespace

int main() {
  bench::Banner("Figure 10",
                "Skip gradient synchronization: amortized latency");
  bench::JsonReport report("fig10_skipsync");
  std::string backends = "[" + RunBackend(sim::Backend::kNccl) + "," +
                         RunBackend(sim::Backend::kGloo) + "]";
  report.AddRaw("backends", backends);
  report.Write();
  std::printf("Expected shape: amortized latency drops as sync frequency "
              "falls; paper reports ~38%% (NCCL) and ~57%% (Gloo) speedup "
              "at 256 GPUs with sync every 8 iterations; the NCCL jump at "
              "256 GPUs appears in every curve.\n");
  return 0;
}
