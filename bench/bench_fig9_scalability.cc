// Figure 9: scalability — per-iteration latency from 1 to 256 GPUs for
// ResNet50 and BERT on NCCL and Gloo. Beyond 32 GPUs the paper used a
// shared entitlement with variable hardware; we reproduce that with
// degraded network links above 128 GPUs (the source of the 128->256 jump)
// and stronger straggler jitter.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"

using namespace ddpkit;  // NOLINT

namespace {

const int kWorlds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

cluster::ClusterConfig SharedEntitlementConfig(int world,
                                               sim::Backend backend) {
  cluster::ClusterConfig config;
  config.world = world;
  config.backend = backend;
  // Shared entitlement: more jitter, and congested links beyond 128 GPUs.
  config.straggler.sigma = world > 32 ? 0.06 : 0.03;
  sim::NcclCostModel::Options nccl;
  nccl.degraded_above_world = 128;
  nccl.degraded_net_factor = 0.5;
  config.nccl_options = nccl;
  return config;
}

std::string RunCombo(const cluster::ModelSpec& spec, sim::Backend backend) {
  std::printf("%s on %s:\n", spec.name.c_str(), sim::BackendName(backend));
  std::printf("  %-8s %-14s %-14s %-14s\n", "gpus", "median_sec",
              "p25_sec", "p75_sec");
  std::string rows = "[";
  bool first = true;
  for (int world : kWorlds) {
    auto config = SharedEntitlementConfig(world, backend);
    cluster::ClusterSim sim(spec, config);
    auto summary = sim.Run(40).LatencySummary();
    std::printf("  %-8d %-14.4f %-14.4f %-14.4f\n", world, summary.median,
                summary.p25, summary.p75);
    if (!first) rows += ',';
    first = false;
    rows += "{\"world\":" + std::to_string(world) +
            ",\"median_seconds\":" + JsonNumber(summary.median) +
            ",\"p25_seconds\":" + JsonNumber(summary.p25) +
            ",\"p75_seconds\":" + JsonNumber(summary.p75) + "}";
  }
  rows += "]";
  std::printf("\n");
  return "{\"model\":\"" + spec.name + "\",\"backend\":\"" +
         sim::BackendName(backend) + "\",\"rows\":" + rows + "}";
}

}  // namespace

int main() {
  bench::Banner("Figure 9", "Scalability: per-iteration latency, 1-256 GPUs");
  bench::JsonReport report("fig9_scalability");
  std::string combos = "[";
  combos += RunCombo(cluster::ResNet50Spec(), sim::Backend::kNccl);
  combos += "," + RunCombo(cluster::ResNet50Spec(), sim::Backend::kGloo);
  combos += "," + RunCombo(cluster::BertBaseSpec(), sim::Backend::kNccl);
  combos += "," + RunCombo(cluster::BertBaseSpec(), sim::Backend::kGloo);
  combos += "]";
  report.AddRaw("combos", combos);
  report.Write();
  std::printf("Expected shape: latency grows steadily with scale; "
              "ResNet50/NCCL at 256 GPUs ~2x the 1-GPU latency (real "
              "scaling factor ~128, paper 5.3); Gloo degrades ~3x for "
              "ResNet50 and more for BERT; a jump appears from 128 to 256 "
              "on NCCL (slow/congested shared links).\n");
  return 0;
}
