// Figure 11 companion: gradient compression — bytes on the wire versus
// final training loss, per comm hook. Runs the same deterministic 4-rank
// regression workload uncompressed and under every hook in the registry
// (fp16 / bf16 / onebit / powersgd / topk), then reports per-hook wire
// bytes (from the reducer's ddp.comm.bytes_{raw,compressed} counters) and
// the final-step loss.
//
// Expected shape: every hook moves strictly fewer bytes than the
// uncompressed run (onebit ~32x less, powersgd/topk ~8x, fp16/bf16 2x)
// while the error-feedback hooks still converge — final loss well below
// the first step's.
//
// The "zoo_sweep" section is the CI gate surface: tools/bench_compare
// checks each <hook>/wire_bytes cell (ns = bytes actually sent; more
// bytes than baseline * threshold = compression regression) and each
// <hook>/final_loss cell (ns = final loss x 1e6; higher = convergence
// regression) against bench/baselines/BENCH_fig11_compression.json. The
// workload is simulated and fully seeded, so the numbers are deterministic.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "bench_json.h"
#include "bench_util.h"
#include "comm/sim_world.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/compression.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

using namespace ddpkit;  // NOLINT

namespace {

struct HookRun {
  std::string name;
  uint64_t bytes_raw = 0;
  uint64_t bytes_compressed = 0;
  double first_loss = 0.0;
  double final_loss = 0.0;
};

constexpr int kWorld = 4;
constexpr int kSteps = 40;

/// 4 ranks train an Mlp{16,32,1} against a fixed linear teacher for 40
/// steps, per-(step, rank) data. Identical across hooks except for the
/// gradient transport, so loss deltas isolate the compression error.
HookRun RunHook(const std::string& hook_name) {
  auto metrics = std::make_shared<MetricsRegistry>();
  HookRun out;
  out.name = hook_name.empty() ? "none" : hook_name;
  comm::SimWorld::Run(kWorld, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(11);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{16, 32, 1}, &rng);
    core::DdpOptions options;
    options.comm_hook = core::MakeCommHookByName(hook_name);
    if (ctx.rank == 0) options.metrics = metrics;
    core::DistributedDataParallel ddp(model, ctx.process_group, options);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.05});
    nn::MSELoss mse;
    Rng teacher_rng(99);
    const Tensor w_star = Tensor::Randn({16, 1}, &teacher_rng);
    for (int step = 0; step < kSteps; ++step) {
      opt.ZeroGrad();
      Rng data_rng(static_cast<uint64_t>(step * 1000 + ctx.rank));
      Tensor x = Tensor::Randn({8, 16}, &data_rng);
      Tensor y = kernels::MatMul(x, w_star);
      Tensor loss = mse(ddp.Forward(x), y);
      if (ctx.rank == 0) {
        if (step == 0) out.first_loss = loss.Item();
        out.final_loss = loss.Item();
      }
      autograd::Backward(loss);
      opt.Step();
    }
  });
  out.bytes_raw = metrics->counter("ddp.comm.bytes_raw").value();
  out.bytes_compressed = metrics->counter("ddp.comm.bytes_compressed").value();
  return out;
}

}  // namespace

int main() {
  bench::JsonReport report("fig11_compression");
  bench::Banner("Compression sweep",
                "bytes on the wire x final loss per comm hook "
                "(4 ranks, 40 steps, Mlp{16,32,1})");

  std::vector<std::string> hooks = {"none"};
  for (const std::string& name : core::CommHookNames()) hooks.push_back(name);

  std::printf("%-10s %-14s %-16s %-10s %-12s %-12s\n", "hook", "bytes_raw",
              "bytes_compressed", "ratio", "first_loss", "final_loss");
  std::vector<HookRun> runs;
  std::string rows = "[";
  std::string sweep = "[";
  bool ok = true;
  for (size_t i = 0; i < hooks.size(); ++i) {
    const HookRun run = RunHook(hooks[i]);
    const double ratio =
        run.bytes_raw > 0
            ? static_cast<double>(run.bytes_compressed) /
                  static_cast<double>(run.bytes_raw)
            : 0.0;
    std::printf("%-10s %-14llu %-16llu %-10.4f %-12.5f %-12.5f\n",
                run.name.c_str(),
                static_cast<unsigned long long>(run.bytes_raw),
                static_cast<unsigned long long>(run.bytes_compressed), ratio,
                run.first_loss, run.final_loss);
    // Acceptance: compressing hooks move strictly fewer bytes than raw,
    // and every run still learns the teacher (loss falls by >= 2x).
    if (run.name != "none" && run.bytes_compressed >= run.bytes_raw) {
      std::printf("  FAIL: %s did not compress\n", run.name.c_str());
      ok = false;
    }
    if (!(run.final_loss < 0.5 * run.first_loss)) {
      std::printf("  FAIL: %s did not converge\n", run.name.c_str());
      ok = false;
    }
    if (i > 0) {
      rows += ',';
      sweep += ',';
    }
    rows += "{\"hook\":\"" + run.name +
            "\",\"bytes_raw\":" + std::to_string(run.bytes_raw) +
            ",\"bytes_compressed\":" + std::to_string(run.bytes_compressed) +
            ",\"ratio\":" + JsonNumber(ratio) +
            ",\"first_loss\":" + JsonNumber(run.first_loss) +
            ",\"final_loss\":" + JsonNumber(run.final_loss) + "}";
    sweep += "{\"algorithm\":\"" + run.name +
             "/wire_bytes\",\"world\":" + std::to_string(kWorld) +
             ",\"bytes\":" + std::to_string(run.bytes_raw) +
             ",\"ns\":" + std::to_string(run.bytes_compressed) + "}";
    sweep += ",{\"algorithm\":\"" + run.name +
             "/final_loss\",\"world\":" + std::to_string(kWorld) +
             ",\"bytes\":" + std::to_string(run.bytes_raw) +
             ",\"ns\":" + JsonNumber(run.final_loss * 1e6) + "}";
    runs.push_back(run);
  }
  rows += "]";
  sweep += "]";
  report.AddRaw("hooks", rows);
  report.AddRaw("zoo_sweep", sweep);
  report.AddInt("world", kWorld);
  report.AddInt("steps", kSteps);
  report.Write();

  std::printf("\nExpected shape: onebit ~1/32 of raw bytes, powersgd/topk "
              "~1/8, fp16/bf16 1/2; all hooks converge (final loss < 0.5x "
              "first loss).\n");
  return ok ? 0 : 1;
}
