// Real-wire micro-benchmarks (google-benchmark): wall-clock cost of
// ProcessGroupTcp collectives over loopback sockets and of StoreTcp RPCs,
// next to the in-memory data plane they must be bit-identical to. These
// are true wall-time measurements of this host (loopback TCP stack
// included) — the virtual-time figures live in bench_fig2_allreduce; the
// gap between the two is the transport overhead the paper's §2.3 hides
// inside NCCL/Gloo.

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "comm/algorithms.h"
#include "comm/process_group_tcp.h"
#include "comm/store.h"
#include "comm/store_tcp.h"
#include "common/rng.h"
#include "sim/virtual_clock.h"
#include "tensor/tensor.h"

namespace ddpkit {
namespace {

/// A persistent loopback mesh: rank 0 lives in the benchmark thread, the
/// helper ranks loop { broadcast go-flag; if stopped, exit; allreduce }.
/// The collectives themselves are the synchronization, so the timed loop
/// measures exactly one full-mesh all-reduce per iteration.
class WireMesh {
 public:
  WireMesh(int world, comm::Algorithm algorithm, int64_t numel)
      : world_(world) {
    comm::ProcessGroupTcp::Options options;
    options.algorithm = algorithm;
    for (int rank = 1; rank < world; ++rank) {
      helpers_.emplace_back([this, rank, world, options, numel] {
        sim::VirtualClock clock;
        auto group = comm::ProcessGroupTcp::Create(&store_, "bench", rank,
                                                   world, options, &clock);
        if (!group.ok()) return;
        Rng rng(static_cast<uint64_t>(rank));
        Tensor data = Tensor::Randn({numel}, &rng);
        Tensor flag = Tensor::Ones({1});
        while (true) {
          group.value()->Broadcast(flag, 0)->Wait(&clock);
          if (flag.data<float>()[0] == 0.0f) break;
          group.value()->AllReduce(data, comm::ReduceOp::kSum)->Wait(&clock);
        }
      });
    }
    auto group = comm::ProcessGroupTcp::Create(&store_, "bench", 0, world,
                                               options, &clock_);
    if (group.ok()) group_ = group.value();
  }

  ~WireMesh() {
    if (group_ != nullptr) {
      Tensor stop = Tensor::Zeros({1});
      group_->Broadcast(stop, 0)->Wait(&clock_);
    }
    for (auto& t : helpers_) t.join();
  }

  bool ok() const { return group_ != nullptr; }

  void Step(Tensor& data) {
    Tensor go = Tensor::Ones({1});
    group_->Broadcast(go, 0)->Wait(&clock_);
    group_->AllReduce(data, comm::ReduceOp::kSum)->Wait(&clock_);
  }

  int world() const { return world_; }

 private:
  int world_;
  comm::Store store_;
  sim::VirtualClock clock_;
  std::shared_ptr<comm::ProcessGroupTcp> group_;
  std::vector<std::thread> helpers_;
};

void BM_TcpAllReduce(benchmark::State& state) {
  const auto algorithm = static_cast<comm::Algorithm>(state.range(0));
  const int world = static_cast<int>(state.range(1));
  const int64_t n = state.range(2);
  WireMesh mesh(world, algorithm, n);
  if (!mesh.ok()) {
    state.SkipWithError("mesh bootstrap failed");
    return;
  }
  Rng rng(0);
  Tensor data = Tensor::Randn({n}, &rng);
  for (auto _ : state) {
    mesh.Step(data);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(world) *
                          n * 4);
  state.SetLabel(comm::AlgorithmName(algorithm));
}
BENCHMARK(BM_TcpAllReduce)
    ->Args({static_cast<int>(comm::Algorithm::kRing), 4, 1 << 10})
    ->Args({static_cast<int>(comm::Algorithm::kRing), 4, 1 << 16})
    ->Args({static_cast<int>(comm::Algorithm::kRing), 4, 1 << 20})
    ->Args({static_cast<int>(comm::Algorithm::kHalvingDoubling), 4, 1 << 16})
    ->Args({static_cast<int>(comm::Algorithm::kNaive), 4, 1 << 16})
    ->Args({static_cast<int>(comm::Algorithm::kRing), 8, 1 << 16})
    ->Unit(benchmark::kMicrosecond);

/// The in-memory data plane on the same shape: the compute floor under the
/// wire numbers above.
void BM_SimAllReduceFloor(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const int64_t n = state.range(1);
  Rng rng(7);
  std::vector<Tensor> tensors;
  for (int r = 0; r < world; ++r) tensors.push_back(Tensor::Randn({n}, &rng));
  for (auto _ : state) {
    comm::RunAllReduce(comm::Algorithm::kRing, comm::ReduceOp::kSum, tensors);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(world) *
                          n * 4);
}
BENCHMARK(BM_SimAllReduceFloor)
    ->Args({4, 1 << 16})
    ->Args({8, 1 << 16})
    ->Unit(benchmark::kMicrosecond);

/// Store RPC round-trip (Set + Get) over one cached loopback connection —
/// the latency floor under every rendezvous key exchange.
void BM_StoreTcpSetGet(benchmark::State& state) {
  auto server = comm::StoreServerTcp::Start("127.0.0.1", 0);
  if (!server.ok()) {
    state.SkipWithError("store server failed to start");
    return;
  }
  comm::StoreClientTcp client("127.0.0.1", server.value()->port());
  int i = 0;
  for (auto _ : state) {
    const std::string key = "bench/" + std::to_string(i++ % 64);
    client.Set(key, "value");
    benchmark::DoNotOptimize(client.Get(key));
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two RPCs per step
}
BENCHMARK(BM_StoreTcpSetGet)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ddpkit

BENCHMARK_MAIN();
