// Ablation A: the gradient-reduction strategy ladder of Section 3.2 —
// from the naive per-gradient solution (§3.2.1), through bucketing
// (§3.2.2), to bucketing + overlap (§3.2.3) — plus the two degenerate
// extremes the paper warns about (everything in one AllReduce; no overlap).

#include <cstdio>

#include "bench_util.h"
#include "cluster/cluster_sim.h"

using namespace ddpkit;  // NOLINT

namespace {

double Measure(const cluster::ModelSpec& spec, int world, size_t cap,
               bool overlap) {
  cluster::ClusterConfig config;
  config.world = world;
  config.backend = sim::Backend::kNccl;
  config.bucket_cap_bytes = cap;
  config.overlap = overlap;
  config.straggler.sigma = 0.0;
  config.compute.op_jitter_sigma = 0.0;
  cluster::ClusterSim sim(spec, config);
  return sim.Run(10).mean_breakdown.total;
}

void RunModel(const cluster::ModelSpec& spec, int world) {
  const double naive = Measure(spec, world, 0, /*overlap=*/false);
  const double naive_overlap = Measure(spec, world, 0, true);
  const double bucketed = Measure(spec, world, 25u << 20, false);
  const double full = Measure(spec, world, 25u << 20, true);
  const double single = Measure(spec, world, size_t{1} << 40, true);

  std::printf("%s @ %d GPUs (sec/iter, speedup vs naive):\n",
              spec.name.c_str(), world);
  auto row = [&](const char* label, double t) {
    std::printf("  %-44s %8.4f   %5.2fx\n", label, t, naive / t);
  };
  row("naive: per-gradient AllReduce, no overlap (3.2.1)", naive);
  row("per-gradient AllReduce + overlap", naive_overlap);
  row("25MB buckets, no overlap (3.2.2)", bucketed);
  row("25MB buckets + overlap (3.2.3, DDP default)", full);
  row("single giant bucket (no overlap possible)", single);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Banner("Ablation A", "Gradient reduction strategies (Section 3.2)");
  RunModel(cluster::ResNet50Spec(), 32);
  RunModel(cluster::BertBaseSpec(), 32);
  std::printf("Expected shape: bucketing fixes the per-op overhead of the "
              "naive scheme; overlap adds the rest; one giant bucket "
              "forfeits all overlap (paper: 'DDP should not communicate "
              "all gradients in one single AllReduce').\n");
  return 0;
}
