// Figure 12: round-robin process groups — median per-iteration latency
// with 1, 3, and 5 process-group instances (rr1/rr3/rr5), for ResNet50 and
// BERT on NCCL and Gloo, 1-32 GPUs (the exclusive cluster).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"

using namespace ddpkit;  // NOLINT

namespace {

const int kWorlds[] = {1, 2, 4, 8, 16, 24, 32};

std::string RunCombo(const cluster::ModelSpec& spec, sim::Backend backend) {
  std::printf("%s on %s, median per-iteration latency (sec):\n",
              spec.name.c_str(), sim::BackendName(backend));
  std::vector<std::string> columns;
  for (int world : kWorlds) columns.push_back(std::to_string(world));
  bench::PrintHeader("groups", columns);
  std::string series = "[";
  bool first = true;
  for (int groups : {1, 3, 5}) {
    std::vector<double> row;
    for (int world : kWorlds) {
      cluster::ClusterConfig config;
      config.world = world;
      config.backend = backend;
      config.round_robin_groups = groups;
      config.straggler.sigma = 0.02;
      cluster::ClusterSim sim(spec, config);
      row.push_back(sim.Run(40).LatencySummary().median);
    }
    bench::PrintSeries("rr" + std::to_string(groups), row);
    if (!first) series += ',';
    first = false;
    series += "{\"groups\":" + std::to_string(groups) +
              ",\"median_seconds\":[";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) series += ',';
      series += JsonNumber(row[i]);
    }
    series += "]}";
  }
  series += "]";
  std::printf("\n");
  return "{\"model\":\"" + spec.name + "\",\"backend\":\"" +
         sim::BackendName(backend) + "\",\"series\":" + series + "}";
}

}  // namespace

int main() {
  bench::Banner("Figure 12", "Round-robin process groups (1-32 GPUs)");
  bench::JsonReport report("fig12_roundrobin");
  std::string combos = "[";
  combos += RunCombo(cluster::ResNet50Spec(), sim::Backend::kNccl);
  combos += "," + RunCombo(cluster::ResNet50Spec(), sim::Backend::kGloo);
  combos += "," + RunCombo(cluster::BertBaseSpec(), sim::Backend::kNccl);
  combos += "," + RunCombo(cluster::BertBaseSpec(), sim::Backend::kGloo);
  combos += "]";
  report.AddRaw("combos", combos);
  report.Write();
  std::printf("Expected shape: negligible differences for ResNet50/NCCL "
              "(bandwidth is not the bottleneck); visible rr3 gains for "
              "ResNet50/Gloo; the largest gains for BERT (one group cannot "
              "saturate the link, paper 5.4).\n");
  return 0;
}
