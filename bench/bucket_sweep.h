#ifndef DDPKIT_BENCH_BUCKET_SWEEP_H_
#define DDPKIT_BENCH_BUCKET_SWEEP_H_

// Shared implementation for the Figure 7 (16 GPUs) and Figure 8 (32 GPUs)
// bucket-size sweeps.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"

namespace ddpkit::bench {

inline std::string BucketSweep(int world, const cluster::ModelSpec& spec,
                               sim::Backend backend,
                               const std::vector<size_t>& caps_mb) {
  std::printf("%s on %s (%d GPUs):\n", spec.name.c_str(),
              sim::BackendName(backend), world);
  std::string rows = "[";
  bool first = true;
  for (size_t cap_mb : caps_mb) {
    cluster::ClusterConfig config;
    config.world = world;
    config.backend = backend;
    config.bucket_cap_bytes = cap_mb << 20;
    config.straggler.sigma = backend == sim::Backend::kGloo ? 0.06 : 0.03;
    config.hiccup_every = 100;
    config.hiccup_seconds = 0.08;
    cluster::ClusterSim sim(spec, config);
    auto result = sim.Run(220);
    const Summary s = result.LatencySummary();
    PrintBoxRow(std::to_string(cap_mb) + " MB", s);
    if (!first) rows += ',';
    first = false;
    rows += "{\"bucket_cap_mb\":" + std::to_string(cap_mb) +
            ",\"median_seconds\":" + JsonNumber(s.median) +
            ",\"min_seconds\":" + JsonNumber(s.min) +
            ",\"max_seconds\":" + JsonNumber(s.max) + "}";
  }
  rows += "]";
  std::printf("\n");
  return "{\"model\":\"" + spec.name + "\",\"backend\":\"" +
         sim::BackendName(backend) + "\",\"rows\":" + rows + "}";
}

inline void RunBucketFigure(const char* figure, int world) {
  Banner(figure, "Per-iteration latency vs bucket size");
  const std::vector<size_t> resnet_caps = {0, 5, 10, 25, 50};
  const std::vector<size_t> bert_caps = {0, 5, 10, 25, 50, 100, 200};
  JsonReport report(world == 16 ? "fig7_bucket16" : "fig8_bucket32");
  std::string combos = "[";
  combos += BucketSweep(world, cluster::ResNet50Spec(), sim::Backend::kNccl,
                        resnet_caps);
  combos += "," + BucketSweep(world, cluster::ResNet50Spec(),
                              sim::Backend::kGloo, resnet_caps);
  combos += "," + BucketSweep(world, cluster::BertBaseSpec(),
                              sim::Backend::kNccl, bert_caps);
  combos += "," + BucketSweep(world, cluster::BertBaseSpec(),
                              sim::Backend::kGloo, bert_caps);
  combos += "]";
  report.AddInt("world", world);
  report.AddRaw("combos", combos);
  report.Write();
  std::printf("Expected shape: 0 MB (per-gradient AllReduce) is worst; "
              "ResNet50/NCCL optimum near 10-25 MB; BERT/NCCL favors larger "
              "buckets; Gloo favors small (~5 MB) buckets since its "
              "bandwidth saturates at small messages (paper Fig %s).\n",
              world == 16 ? "7" : "8");
}

}  // namespace ddpkit::bench

#endif  // DDPKIT_BENCH_BUCKET_SWEEP_H_
