// Micro-benchmarks (google-benchmark) for the hot primitives underneath
// DDP: tensor kernels, the ring all-reduce data plane, bucket gather
// copies, and fp16 conversion. These are real wall-clock measurements of
// this host's CPU, not virtual-time figures.

#include <benchmark/benchmark.h>

#include <vector>

#include "comm/algorithms.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/vec.h"
#include "core/bucketing.h"
#include "tensor/tensor_ops.h"

namespace ddpkit {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2d(benchmark::State& state) {
  const int64_t c = state.range(0);
  Rng rng(2);
  Tensor input = Tensor::Randn({1, c, 16, 16}, &rng);
  Tensor weight = Tensor::Randn({c, c, 3, 3}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::Conv2d(input, weight, kernels::Conv2dArgs{1, 1}));
  }
  // MACs per conv: out_elems * cin * kh * kw.
  state.SetItemsProcessed(state.iterations() * c * 16 * 16 * c * 3 * 3);
}
BENCHMARK(BM_Conv2d)->Arg(4)->Arg(8)->Arg(16);

void BM_RingAllReduceData(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const int64_t n = state.range(1);
  Rng rng(3);
  std::vector<Tensor> tensors;
  for (int r = 0; r < world; ++r) tensors.push_back(Tensor::Randn({n}, &rng));
  for (auto _ : state) {
    comm::RunAllReduce(comm::Algorithm::kRing, comm::ReduceOp::kSum, tensors);
  }
  state.SetBytesProcessed(state.iterations() * world * n * 4);
  state.SetItemsProcessed(state.iterations() * world * n);
}
BENCHMARK(BM_RingAllReduceData)
    ->Args({2, 1 << 16})
    ->Args({4, 1 << 16})
    ->Args({8, 1 << 16})
    ->Args({4, 1 << 20});

void BM_ZooAllReduceData(benchmark::State& state) {
  // Real data-plane wall time for every zoo variant at a fixed shape, so
  // the modeled speedups in bench_fig2_allreduce have a measured
  // counterpart for the combine work itself.
  const auto algo = static_cast<comm::Algorithm>(state.range(0));
  const int world = 8;
  const int64_t n = state.range(1);
  Rng rng(11);
  std::vector<Tensor> tensors;
  for (int r = 0; r < world; ++r) tensors.push_back(Tensor::Randn({n}, &rng));
  for (auto _ : state) {
    comm::RunAllReduce(algo, comm::ReduceOp::kSum, tensors);
  }
  state.SetBytesProcessed(state.iterations() * world * n * 4);
  state.SetItemsProcessed(state.iterations() * world * n);
  state.SetLabel(comm::AlgorithmName(algo));
}
BENCHMARK(BM_ZooAllReduceData)
    ->ArgNames({"algo", "n"})
    ->Args({static_cast<long>(sim::CollectiveAlgorithm::kNaive), 1 << 18})
    ->Args({static_cast<long>(sim::CollectiveAlgorithm::kRing), 1 << 18})
    ->Args({static_cast<long>(sim::CollectiveAlgorithm::kRingChunked),
            1 << 18})
    ->Args({static_cast<long>(sim::CollectiveAlgorithm::kHalvingDoubling),
            1 << 18})
    ->Args({static_cast<long>(sim::CollectiveAlgorithm::kHierarchical),
            1 << 18});

void BM_NaiveAllReduceData(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const int64_t n = state.range(1);
  Rng rng(4);
  std::vector<Tensor> tensors;
  for (int r = 0; r < world; ++r) tensors.push_back(Tensor::Randn({n}, &rng));
  for (auto _ : state) {
    comm::RunAllReduce(comm::Algorithm::kNaive, comm::ReduceOp::kSum,
                       tensors);
  }
  state.SetBytesProcessed(state.iterations() * world * n * 4);
}
BENCHMARK(BM_NaiveAllReduceData)->Args({4, 1 << 16})->Args({4, 1 << 20});

void BM_BucketAssignment(benchmark::State& state) {
  // ResNet50-scale inventory, 25 MB cap — the constructor-time cost.
  std::vector<core::ParamMeta> params;
  Rng rng(5);
  for (int i = 0; i < 161; ++i) {
    const int64_t numel = 512 + static_cast<int64_t>(rng.UniformInt(2 << 20));
    params.push_back(core::ParamMeta{numel, static_cast<size_t>(numel) * 4, 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AssignBuckets(params, 25u << 20));
  }
}
BENCHMARK(BM_BucketAssignment);

void BM_BucketCopy(benchmark::State& state) {
  // Gradient -> bucket flattening (Algorithm 1 lines 15-16).
  const int64_t n = state.range(0);
  Rng rng(6);
  Tensor grad = Tensor::Randn({n}, &rng);
  Tensor bucket = Tensor::Zeros({n * 4});
  for (auto _ : state) {
    bucket.Narrow(0, n, n).CopyFrom(grad);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_BucketCopy)->Arg(1 << 16)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Thread-scaling sweep: the same kernels at 1/2/4/8 pool threads. Each
// benchmark resizes the global pool before timing and restores the prior
// size afterwards so the serial benchmarks are unaffected by ordering. On a
// single-core host these curves are flat (or show dispatch overhead); on
// multi-core hosts they show the intra-op speedup. The "threads" arg name
// keys the sweep in the JSON report.
// ---------------------------------------------------------------------------

class ThreadSweep {
 public:
  explicit ThreadSweep(int threads)
      : prev_(ThreadPool::Global().num_threads()) {
    ThreadPool::SetNumThreads(threads);
  }
  ~ThreadSweep() { ThreadPool::SetNumThreads(prev_); }

 private:
  int prev_;
};

void BM_ElementwiseAddThreads(benchmark::State& state) {
  ThreadSweep sweep(static_cast<int>(state.range(0)));
  const int64_t n = state.range(1);
  Rng rng(8);
  Tensor a = Tensor::Randn({n}, &rng);
  Tensor b = Tensor::Randn({n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Add(a, b));
  }
  state.SetBytesProcessed(state.iterations() * n * 4 * 3);
}
BENCHMARK(BM_ElementwiseAddThreads)
    ->ArgNames({"threads", "n"})
    ->Args({1, 1 << 20})
    ->Args({2, 1 << 20})
    ->Args({4, 1 << 20})
    ->Args({8, 1 << 20});

void BM_MatMulThreads(benchmark::State& state) {
  ThreadSweep sweep(static_cast<int>(state.range(0)));
  const int64_t n = state.range(1);
  Rng rng(9);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulThreads)
    ->ArgNames({"threads", "n"})
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Args({8, 256});

void BM_RingAllReduceThreads(benchmark::State& state) {
  ThreadSweep sweep(static_cast<int>(state.range(0)));
  const int world = 4;
  const int64_t n = state.range(1);
  Rng rng(10);
  std::vector<Tensor> tensors;
  for (int r = 0; r < world; ++r) tensors.push_back(Tensor::Randn({n}, &rng));
  for (auto _ : state) {
    comm::RunAllReduce(comm::Algorithm::kRing, comm::ReduceOp::kSum, tensors);
  }
  state.SetBytesProcessed(state.iterations() * world * n * 4);
}
BENCHMARK(BM_RingAllReduceThreads)
    ->ArgNames({"threads", "n"})
    ->Args({1, 1 << 20})
    ->Args({2, 1 << 20})
    ->Args({4, 1 << 20})
    ->Args({8, 1 << 20});

// ---------------------------------------------------------------------------
// SIMD dispatch-level sweep: the vec.h batch kernels at scalar / AVX2 /
// AVX-512, per-element throughput (items/s). Levels the host cannot
// execute clamp down and are labeled with the level that actually ran, so
// a row never silently reports the wrong ISA. The all-reduce combine
// primitive (AccumulateAdd) is the acceptance surface: the vectorized
// levels must beat scalar by >= 2x per element on AVX2-class hosts.
// ---------------------------------------------------------------------------

class SimdLevelSweep {
 public:
  explicit SimdLevelSweep(benchmark::State& state, int requested)
      : prev_(vec::ActiveLevel()) {
    const vec::Level got =
        vec::SetLevelForTesting(static_cast<vec::Level>(requested));
    state.SetLabel(vec::LevelName(got));
  }
  ~SimdLevelSweep() { vec::SetLevelForTesting(prev_); }

 private:
  vec::Level prev_;
};

#define DDPKIT_SIMD_LEVEL_ARGS(n)                                   \
  ArgNames({"level", "n"})                                          \
      ->Args({static_cast<long>(vec::Level::kScalar), (n)})         \
      ->Args({static_cast<long>(vec::Level::kAvx2), (n)})           \
      ->Args({static_cast<long>(vec::Level::kAvx512), (n)})

void BM_VecAccumulateAdd(benchmark::State& state) {
  SimdLevelSweep sweep(state, static_cast<int>(state.range(0)));
  const int64_t n = state.range(1);
  std::vector<float> dst(static_cast<size_t>(n), 1.0f);
  std::vector<float> src(static_cast<size_t>(n), 0.5f);
  for (auto _ : state) {
    vec::AccumulateAdd(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 4 * 3);
}
BENCHMARK(BM_VecAccumulateAdd)->DDPKIT_SIMD_LEVEL_ARGS(1 << 16);

void BM_VecAccumulateMax(benchmark::State& state) {
  SimdLevelSweep sweep(state, static_cast<int>(state.range(0)));
  const int64_t n = state.range(1);
  std::vector<float> dst(static_cast<size_t>(n), 1.0f);
  std::vector<float> src(static_cast<size_t>(n), 0.5f);
  for (auto _ : state) {
    vec::AccumulateMax(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 4 * 3);
}
BENCHMARK(BM_VecAccumulateMax)->DDPKIT_SIMD_LEVEL_ARGS(1 << 16);

void BM_VecAdd(benchmark::State& state) {
  SimdLevelSweep sweep(state, static_cast<int>(state.range(0)));
  const int64_t n = state.range(1);
  std::vector<float> a(static_cast<size_t>(n), 1.0f);
  std::vector<float> b(static_cast<size_t>(n), 2.0f);
  std::vector<float> out(static_cast<size_t>(n));
  for (auto _ : state) {
    vec::Add(a.data(), b.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 4 * 3);
}
BENCHMARK(BM_VecAdd)->DDPKIT_SIMD_LEVEL_ARGS(1 << 16);

void BM_VecAxpy(benchmark::State& state) {
  SimdLevelSweep sweep(state, static_cast<int>(state.range(0)));
  const int64_t n = state.range(1);
  std::vector<float> x(static_cast<size_t>(n), 1.0f);
  std::vector<float> y(static_cast<size_t>(n), 2.0f);
  for (auto _ : state) {
    vec::Axpy(0.5f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 4 * 3);
}
BENCHMARK(BM_VecAxpy)->DDPKIT_SIMD_LEVEL_ARGS(1 << 16);

void BM_VecCopy(benchmark::State& state) {
  SimdLevelSweep sweep(state, static_cast<int>(state.range(0)));
  const int64_t n = state.range(1);
  std::vector<float> src(static_cast<size_t>(n), 1.0f);
  std::vector<float> dst(static_cast<size_t>(n));
  for (auto _ : state) {
    vec::Copy(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 4 * 2);
}
BENCHMARK(BM_VecCopy)->DDPKIT_SIMD_LEVEL_ARGS(1 << 16);

void BM_Fp16Conversion(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  Tensor src = Tensor::Randn({n}, &rng);
  for (auto _ : state) {
    const float* p = src.data<float>();
    uint64_t acc = 0;
    for (int64_t i = 0; i < n; ++i) acc += Float32ToHalfBits(p[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fp16Conversion)->Arg(1 << 16);

}  // namespace
}  // namespace ddpkit

BENCHMARK_MAIN();
