// Figure 5: the GPU connection topology of one 8-V100 server (hybrid
// cube-mesh) plus the derived link/ring characteristics the cost models
// consume.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "bench_util.h"
#include "sim/topology.h"

using namespace ddpkit;  // NOLINT

int main() {
  bench::Banner("Figure 5", "GPU connection topology (8 GPUs per server)");
  sim::Topology topo;
  std::printf("%s\n", topo.MatrixString().c_str());
  bench::JsonReport report("fig5_topology");

  std::printf("link characteristics:\n");
  for (sim::LinkType type : {sim::LinkType::kNv2, sim::LinkType::kNv1,
                             sim::LinkType::kNode, sim::LinkType::kNet}) {
    std::printf("  %-5s bandwidth %6.1f GB/s   latency %5.1f us\n",
                sim::LinkTypeName(type), topo.Bandwidth(type) / 1e9,
                topo.Latency(type) * 1e6);
  }

  std::printf("\nring bottlenecks by world size:\n");
  std::printf("%-8s %-18s %-14s %-12s\n", "world", "ring_bw_GBps",
              "hop_latency_us", "single_host");
  std::string rows = "[";
  bool first = true;
  for (int world : {2, 4, 8, 16, 32, 64, 256}) {
    std::printf("%-8d %-18.1f %-14.1f %-12s\n", world,
                topo.RingBandwidth(world) / 1e9,
                topo.RingHopLatency(world) * 1e6,
                topo.SingleHost(world) ? "yes" : "no");
    if (!first) rows += ',';
    first = false;
    rows += "{\"world\":" + std::to_string(world) +
            ",\"ring_bandwidth_bytes_per_second\":" +
            JsonNumber(topo.RingBandwidth(world)) +
            ",\"ring_hop_latency_seconds\":" +
            JsonNumber(topo.RingHopLatency(world)) + ",\"single_host\":" +
            (topo.SingleHost(world) ? "true" : "false") + "}";
  }
  rows += "]";
  report.AddRaw("ring_bottlenecks", rows);
  report.Write();
  std::printf("\nCrossing the host boundary (world > 8) drops the ring to "
              "NIC bandwidth — the paper's recommendation to keep DDP "
              "groups within one machine when possible (6.1).\n");
  return 0;
}
