// Figure 6: per-iteration latency breakdown with and without overlapping
// communication with the backward pass, for ResNet50 and BERT on NCCL and
// Gloo, 32 GPUs across 4 machines. Latencies are normalized so each
// combination's non-overlapping total is 1, as in the paper.

#include <cstdio>

#include "bench_util.h"
#include "cluster/cluster_sim.h"

using namespace ddpkit;  // NOLINT

namespace {

void RunCombo(const cluster::ModelSpec& spec, sim::Backend backend) {
  cluster::ClusterConfig config;
  config.world = 32;
  config.backend = backend;
  config.straggler.sigma = 0.02;

  auto non_overlap_config = config;
  non_overlap_config.overlap = false;
  auto non_overlap = cluster::ClusterSim(spec, non_overlap_config).Run(20);
  auto overlap = cluster::ClusterSim(spec, config).Run(20);

  const double norm = non_overlap.mean_breakdown.total;
  auto row = [&](const char* label, const cluster::IterationBreakdown& b) {
    std::printf("  %-14s fwd=%.3f bwd_comp=%.3f bwd_comm=%.3f opt=%.3f "
                "total=%.3f\n",
                label, b.forward / norm, b.backward_compute / norm,
                b.backward_comm_exposed / norm, b.optimizer / norm,
                b.total / norm);
  };
  std::printf("%s on %s (32 GPUs, normalized to non-overlap total):\n",
              spec.name.c_str(), sim::BackendName(backend));
  row("non-overlap", non_overlap.mean_breakdown);
  row("overlap", overlap.mean_breakdown);
  const double speedup =
      (non_overlap.mean_breakdown.total - overlap.mean_breakdown.total) /
      non_overlap.mean_breakdown.total;
  std::printf("  overlap speedup: %.1f%%\n\n", speedup * 100.0);
}

}  // namespace

int main() {
  bench::Banner("Figure 6", "Per-iteration latency breakdown (32 GPUs)");
  RunCombo(cluster::ResNet50Spec(), sim::Backend::kNccl);
  RunCombo(cluster::BertBaseSpec(), sim::Backend::kNccl);
  RunCombo(cluster::ResNet50Spec(), sim::Backend::kGloo);
  RunCombo(cluster::BertBaseSpec(), sim::Backend::kGloo);
  std::printf("Expected shape: backward dominates every combination; "
              "communication is over half the backward delay and grows "
              "with model size; NCCL >> Gloo; overlap gains are largest "
              "when compute and communication are balanced (paper: 38.0%% "
              "/ 35.2%% on NCCL, 26.8%% / 21.5%% on Gloo).\n");
  return 0;
}
