// Figure 6: per-iteration latency breakdown with and without overlapping
// communication with the backward pass, for ResNet50 and BERT on NCCL and
// Gloo, 32 GPUs across 4 machines. Latencies are normalized so each
// combination's non-overlapping total is 1, as in the paper.
//
// Two measurement planes back the same figure:
//  - the analytic ClusterSim sweep (32 GPUs, straggler jitter) for the
//    paper-scale numbers, and
//  - a real 4-rank DDP run through the Reducer's telemetry layer, whose
//    per-iteration DDPTelemetry frames carry the same quantities (forward,
//    backward compute, exposed allreduce wait, hidden overlap) measured
//    from the actual bucket launch/completion windows.
// Both land in BENCH_fig6_breakdown.json.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "bench_json.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "nn/zoo.h"

using namespace ddpkit;  // NOLINT

namespace {

std::string RunCombo(const cluster::ModelSpec& spec, sim::Backend backend) {
  cluster::ClusterConfig config;
  config.world = 32;
  config.backend = backend;
  config.straggler.sigma = 0.02;

  auto non_overlap_config = config;
  non_overlap_config.overlap = false;
  auto non_overlap = cluster::ClusterSim(spec, non_overlap_config).Run(20);
  auto overlap = cluster::ClusterSim(spec, config).Run(20);

  const double norm = non_overlap.mean_breakdown.total;
  auto row = [&](const char* label, const cluster::IterationBreakdown& b) {
    std::printf("  %-14s fwd=%.3f bwd_comp=%.3f bwd_comm=%.3f opt=%.3f "
                "total=%.3f\n",
                label, b.forward / norm, b.backward_compute / norm,
                b.backward_comm_exposed / norm, b.optimizer / norm,
                b.total / norm);
  };
  std::printf("%s on %s (32 GPUs, normalized to non-overlap total):\n",
              spec.name.c_str(), sim::BackendName(backend));
  row("non-overlap", non_overlap.mean_breakdown);
  row("overlap", overlap.mean_breakdown);
  const double speedup =
      (non_overlap.mean_breakdown.total - overlap.mean_breakdown.total) /
      non_overlap.mean_breakdown.total;
  std::printf("  overlap speedup: %.1f%%\n\n", speedup * 100.0);

  auto breakdown_json = [](const cluster::IterationBreakdown& b) {
    std::string out = "{\"forward\":" + JsonNumber(b.forward);
    out += ",\"backward_compute\":" + JsonNumber(b.backward_compute);
    out += ",\"backward_comm_exposed\":" + JsonNumber(b.backward_comm_exposed);
    out += ",\"optimizer\":" + JsonNumber(b.optimizer);
    out += ",\"total\":" + JsonNumber(b.total) + "}";
    return out;
  };
  std::string combo = "{\"model\":\"" + spec.name + "\",\"backend\":\"" +
                      sim::BackendName(backend) + "\"";
  combo += ",\"non_overlap\":" + breakdown_json(non_overlap.mean_breakdown);
  combo += ",\"overlap\":" + breakdown_json(overlap.mean_breakdown);
  combo += ",\"overlap_speedup\":" + JsonNumber(speedup) + "}";
  return combo;
}

/// The same breakdown measured by the Reducer's own instrumentation: a
/// 4-rank DDP world over a multi-bucket MLP, virtual-time compute model,
/// per-iteration DDPTelemetry frames.
void RunTelemetryPlane(bench::JsonReport* report) {
  auto telemetry = std::make_shared<core::TelemetryLog>();
  auto metrics = std::make_shared<MetricsRegistry>();
  auto trace = std::make_shared<core::TraceRecorder>();

  comm::SimWorldOptions world_options;
  world_options.metrics = metrics;
  comm::SimWorld::Run(4, world_options, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(7);
    auto model = std::make_shared<nn::Mlp>(
        std::vector<int64_t>{64, 256, 256, 256, 64}, &rng);
    core::DdpOptions options;
    options.bucket_cap_bytes = 64u << 10;  // several buckets -> overlap
    options.compute_model = std::make_shared<sim::ComputeCostModel>(
        sim::ComputeCostModel::GpuProfile());
    if (ctx.rank == 0) {
      options.telemetry = telemetry;
      options.metrics = metrics;
      options.trace = trace;
    }
    core::DistributedDataParallel ddp(model, ctx.process_group, options);
    Tensor x = Tensor::Full({8, 64}, 1.0);
    for (int iter = 0; iter < 3; ++iter) {
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      for (Tensor& p : ddp.parameters()) p.grad().Zero();
    }
  });

  const auto frames = telemetry->snapshot();
  std::printf("Reducer telemetry plane (4 ranks, rank 0, %zu synced "
              "iterations):\n", frames.size());
  for (const auto& f : frames) {
    std::printf("  iter %llu: fwd=%.6f bwd_comp=%.6f wait=%.6f overlap=%.6f "
                "comm=%.6f (%zu buckets)\n",
                static_cast<unsigned long long>(f.iteration),
                f.forward_seconds, f.backward_compute_seconds,
                f.allreduce_wait_seconds, f.overlap_seconds, f.comm_seconds,
                f.buckets.size());
  }
  std::printf("\n");

  report->AddRaw("telemetry", telemetry->ToJson());
  report->AddRaw("metrics", metrics->ToJson());

  // Chrome-trace file with the same iterations: feed it to chrome://tracing
  // or tools/trace_summary for the overlap ratio.
  const char* dir = std::getenv("DDPKIT_BENCH_JSON_DIR");
  const std::string trace_path =
      (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "") +
      "TRACE_fig6_breakdown.json";
  const Status written = trace->WriteJson(trace_path);
  if (written.ok()) {
    std::printf("[trace] wrote %s (%zu events); inspect with "
                "tools/trace_summary\n\n", trace_path.c_str(), trace->size());
  } else {
    std::printf("[trace] WARNING: %s\n\n", written.message().c_str());
  }
}

}  // namespace

int main() {
  bench::Banner("Figure 6", "Per-iteration latency breakdown (32 GPUs)");
  bench::JsonReport report("fig6_breakdown");
  std::string combos = "[";
  combos += RunCombo(cluster::ResNet50Spec(), sim::Backend::kNccl);
  combos += "," + RunCombo(cluster::BertBaseSpec(), sim::Backend::kNccl);
  combos += "," + RunCombo(cluster::ResNet50Spec(), sim::Backend::kGloo);
  combos += "," + RunCombo(cluster::BertBaseSpec(), sim::Backend::kGloo);
  combos += "]";
  report.AddRaw("combos", combos);

  RunTelemetryPlane(&report);
  report.Write();

  std::printf("Expected shape: backward dominates every combination; "
              "communication is over half the backward delay and grows "
              "with model size; NCCL >> Gloo; overlap gains are largest "
              "when compute and communication are balanced (paper: 38.0%% "
              "/ 35.2%% on NCCL, 26.8%% / 21.5%% on Gloo).\n");
  return 0;
}
