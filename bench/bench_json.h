#ifndef DDPKIT_BENCH_BENCH_JSON_H_
#define DDPKIT_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace ddpkit::bench {

/// Machine-readable companion to the human-readable bench output: each
/// bench binary assembles one flat JSON object and writes it to
/// BENCH_<name>.json, so CI can archive the numbers and plots can be
/// regenerated without scraping stdout.
///
/// Destination, first match wins:
///   1. $DDPKIT_BENCH_JSON_PATH          (exact file path)
///   2. $DDPKIT_BENCH_JSON_DIR/BENCH_<name>.json
///   3. ./BENCH_<name>.json
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Scalar metric (rendered with JsonNumber: finite, compact).
  void Add(const std::string& key, double value) {
    fields_.emplace_back(key, JsonNumber(value));
  }

  void AddInt(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
  }

  void AddText(const std::string& key, const std::string& value) {
    std::string rendered = "\"";
    AppendJsonEscaped(&rendered, value);
    rendered += '"';
    fields_.emplace_back(key, std::move(rendered));
  }

  /// Pre-rendered JSON value (TelemetryLog::ToJson(),
  /// MetricsRegistry::ToJson(), hand-built arrays). Trusted verbatim.
  void AddRaw(const std::string& key, std::string json) {
    fields_.emplace_back(key, std::move(json));
  }

  std::string ToJson() const {
    std::string out = "{\"bench\":\"";
    AppendJsonEscaped(&out, name_);
    out += '"';
    for (const auto& [key, value] : fields_) {
      out += ",\"";
      AppendJsonEscaped(&out, key);
      out += "\":";
      out += value;
    }
    out += '}';
    return out;
  }

  std::string OutputPath() const {
    if (const char* path = std::getenv("DDPKIT_BENCH_JSON_PATH")) return path;
    const std::string file = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("DDPKIT_BENCH_JSON_DIR")) {
      return std::string(dir) + "/" + file;
    }
    return file;
  }

  /// Writes the report; prints the destination (or the failure) to stdout
  /// so bench logs record where the numbers went. Returns false on I/O
  /// failure — benches treat that as a warning, not an abort.
  bool Write() const {
    const std::string path = OutputPath();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::printf("[bench_json] cannot open %s for writing\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    std::printf("[bench_json] wrote %s (%zu bytes)\n", path.c_str(),
                json.size());
    return ok;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace ddpkit::bench

#endif  // DDPKIT_BENCH_BENCH_JSON_H_
