// Figure 8: the Figure 7 bucket-size sweep repeated on 32 GPUs. The paper's
// observations reproduced here: outliers span a wider range (more
// participants, more straggler impact); 0 MB gets clearly worse than at 16
// GPUs; caps >= 5 MB scale without noticeable regression.

#include "bucket_sweep.h"

int main() {
  ddpkit::bench::RunBucketFigure("Figure 8", 32);
  return 0;
}
