// Ablation B: the paper's future-work directions, implemented and measured.
//  (1) Gradient-order prediction (6.2.1): trace the real ready order on the
//      thread-backed stack and rebuild buckets; measure virtual iteration
//      latency before/after on a model whose registration order
//      mis-predicts its backward order.
//  (2) Gradient compression (6.2.3): fp16 and 1-bit payload scaling in the
//      cluster simulator across backends.
//  (3) Layer dropping (6.2.2): coordinated stochastic depth saves compute
//      but — with the fixed parameter-to-bucket mapping — none of the
//      communication, exactly the caveat the paper raises.
//  (4) ZeRO-style optimizer-state sharding (7): identical training result,
//      ~1/world optimizer memory, extra broadcast round per step.

#include <cstdio>
#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "core/order_tracer.h"
#include "core/zero_redundancy_optimizer.h"
#include "nn/layers.h"
#include "nn/zoo.h"
#include "nn/stochastic_depth.h"
#include "optim/sgd.h"

using namespace ddpkit;  // NOLINT

namespace {

/// Wide layers registered in REVERSE of invocation order, so the default
/// reverse-parameters() heuristic launches buckets in the worst order.
class PathologicalNet : public nn::Module {
 public:
  explicit PathologicalNet(Rng* rng) {
    for (int i = 0; i < 6; ++i) {
      layers_.push_back(RegisterModule(
          "fc" + std::to_string(i), std::make_shared<nn::Linear>(96, 96, rng)));
    }
  }
  Tensor Forward(const Tensor& input) override {
    Tensor x = input;
    // Invoke layers in reverse registration order.
    for (size_t i = layers_.size(); i-- > 0;) {
      x = ops::Relu(layers_[i]->Forward(x));
    }
    return x;
  }

 private:
  std::vector<std::shared_ptr<nn::Linear>> layers_;
};

void OrderTracingAblation() {
  std::printf("(1) gradient-order prediction (6.2.1), real DDP stack:\n");
  constexpr int kWorld = 4;
  std::vector<double> iter_latency;
  comm::SimWorld::Run(kWorld, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model = std::make_shared<PathologicalNet>(&rng);
    core::DdpOptions options;
    options.bucket_cap_bytes = 96 * 96 * 4 + 96 * 4;  // one layer per bucket
    options.compute_model = std::make_shared<sim::ComputeCostModel>(
        sim::ComputeCostModel::GpuProfile());
    core::DistributedDataParallel ddp(model, ctx.process_group, options);
    core::OrderTracer tracer(core::OrderTracer::Options{
        .stable_iterations = 2, .max_rebuilds = 1});
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.01});

    double last = ctx.clock->Now();
    for (int step = 0; step < 8; ++step) {
      opt.ZeroGrad();
      Tensor x = Tensor::Full({4, 96}, 0.1);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      opt.Step();
      const bool rebuilt = tracer.ObserveAndMaybeRebuild(&ddp.reducer());
      if (ctx.rank == 0) {
        const double now = ctx.clock->Now();
        iter_latency.push_back(now - last);
        last = now;
        if (rebuilt) std::printf("  [step %d] buckets rebuilt from trace\n",
                                 step);
      }
    }
  });
  std::printf("  per-iteration virtual latency (ms): ");
  for (double t : iter_latency) std::printf("%.3f ", t * 1e3);
  std::printf("\n  before rebuild the mispredicted launch order serializes "
              "communication behind the whole backward pass; after it, "
              "buckets launch as their layers finish.\n\n");
}

void CompressionAblation() {
  std::printf("(2) gradient compression (6.2.3), cluster simulator, 32 "
              "GPUs:\n");
  std::printf("  %-12s %-8s %-12s %-12s %-12s\n", "model", "backend",
              "fp32", "fp16(x0.5)", "1bit(x1/32)");
  for (const auto& spec : {cluster::ResNet50Spec(), cluster::BertBaseSpec()}) {
    for (sim::Backend backend : {sim::Backend::kNccl, sim::Backend::kGloo}) {
      std::vector<double> times;
      for (double scale : {1.0, 0.5, 1.0 / 32.0}) {
        cluster::ClusterConfig config;
        config.world = 32;
        config.backend = backend;
        config.comm_bytes_scale = scale;
        config.straggler.sigma = 0.0;
        config.compute.op_jitter_sigma = 0.0;
        cluster::ClusterSim sim(spec, config);
        times.push_back(sim.Run(10).mean_breakdown.total);
      }
      std::printf("  %-12s %-8s %-12.4f %-12.4f %-12.4f\n",
                  spec.name.c_str(), sim::BackendName(backend), times[0],
                  times[1], times[2]);
    }
  }
  std::printf("  (numerical behaviour of the fp16 and 1-bit hooks is "
              "covered by core_compression_test; here only the traffic "
              "reduction is modeled.)\n");
}

/// A droppable residual stack with an always-on head, mirroring the
/// stochastic-depth transformers of the paper's [17] citation.
class DropStack : public nn::Module {
 public:
  DropStack(int blocks, int64_t dim, double drop_prob, Rng* rng) {
    for (int i = 0; i < blocks; ++i) {
      layers_.push_back(RegisterModule(
          "block" + std::to_string(i),
          std::make_shared<nn::StochasticDepth>(
              std::make_shared<nn::Linear>(dim, dim, rng), drop_prob,
              900 + static_cast<uint64_t>(i))));
    }
    head_ = RegisterModule("head",
                           std::make_shared<nn::Linear>(dim, dim, rng));
  }
  Tensor Forward(const Tensor& input) override {
    Tensor x = input;
    for (auto& layer : layers_) x = ops::Add(x, layer->Forward(x));
    return head_->Forward(x);
  }

 private:
  std::vector<std::shared_ptr<nn::StochasticDepth>> layers_;
  std::shared_ptr<nn::Linear> head_;
};

void LayerDroppingAblation() {
  std::printf("(3) layer dropping (6.2.2), real DDP stack, 2 ranks:\n");
  std::printf("  %-12s %-18s %-18s %-16s\n", "drop_prob", "grad_hooks_fired",
              "bytes_reduced", "vclock_ms");
  for (double drop : {0.0, 0.5}) {
    uint64_t bytes = 0;
    double vclock = 0.0;
    size_t hooks = 0;
    comm::SimWorld::Run(2, [&](comm::SimWorld::RankContext& ctx) {
      Rng rng(12);
      auto model = std::make_shared<DropStack>(6, 64, drop, &rng);
      core::DdpOptions options;
      options.find_unused_parameters = true;
      options.compute_model = std::make_shared<sim::ComputeCostModel>(
          sim::ComputeCostModel::GpuProfile());
      core::DistributedDataParallel ddp(model, ctx.process_group, options);
      size_t fired = 0;
      for (int step = 0; step < 10; ++step) {
        model->ZeroGrad();
        Tensor x = Tensor::Full({4, 64}, 0.1);
        autograd::Backward(ops::MeanAll(ddp.Forward(x)));
        for (uint8_t used : ddp.globally_used_mask()) fired += used;
      }
      if (ctx.rank == 0) {
        bytes = ddp.reducer().stats().bytes_reduced;
        vclock = ctx.clock->Now();
        hooks = fired;
      }
    });
    std::printf("  %-12.1f %-18zu %-18llu %-16.3f\n", drop, hooks,
                static_cast<unsigned long long>(bytes), vclock * 1e3);
  }
  std::printf("  dropping layers cuts compute (vclock) but NOT bytes "
              "reduced: AllReduce granularity is the bucket and the "
              "parameter-to-bucket mapping is fixed (paper 6.2.2).\n\n");
}

void ZeroShardingAblation() {
  std::printf("(4) ZeRO-style optimizer-state sharding (paper 7):\n");
  constexpr int kWorld = 4;
  std::printf("  %-14s %-20s %-14s\n", "optimizer", "state_elems/rank",
              "vclock_ms");
  for (bool sharded : {false, true}) {
    int64_t state_elems = 0;
    double vclock = 0.0;
    comm::SimWorld::Run(kWorld, [&](comm::SimWorld::RankContext& ctx) {
      Rng rng(13);
      auto model = std::make_shared<nn::Mlp>(
          std::vector<int64_t>{128, 128, 128, 64}, &rng);
      core::DdpOptions options;
      options.compute_model = std::make_shared<sim::ComputeCostModel>(
          sim::ComputeCostModel::GpuProfile());
      core::DistributedDataParallel ddp(model, ctx.process_group, options);
      const optim::Sgd::Options sgd{.lr = 0.01, .momentum = 0.9};
      std::unique_ptr<core::ZeroRedundancyOptimizer> zero;
      std::unique_ptr<optim::Sgd> plain;
      int64_t my_state = 0;
      if (sharded) {
        zero = std::make_unique<core::ZeroRedundancyOptimizer>(
            model->parameters(), ctx.process_group,
            [&](std::vector<Tensor> shard) {
              for (const Tensor& p : shard) my_state += p.numel();
              return std::make_unique<optim::Sgd>(std::move(shard), sgd);
            });
      } else {
        plain = std::make_unique<optim::Sgd>(model->parameters(), sgd);
        my_state = model->NumParameters();
      }
      for (int step = 0; step < 5; ++step) {
        model->ZeroGrad();
        Tensor x = Tensor::Full({2, 128}, 0.1);
        autograd::Backward(ops::MeanAll(ddp.Forward(x)));
        if (sharded) {
          zero->Step();
        } else {
          plain->Step();
        }
      }
      if (ctx.rank == 0) {
        state_elems = my_state;
        vclock = ctx.clock->Now();
      }
    });
    std::printf("  %-14s %-20lld %-14.3f\n",
                sharded ? "zero-sharded" : "replicated",
                static_cast<long long>(state_elems), vclock * 1e3);
  }
  std::printf("  sharding divides momentum memory by ~world at the cost of "
              "the parameter broadcast after each step — the ZeRO "
              "speed-for-memory trade the paper describes in 7.\n");
}

}  // namespace

int main() {
  bench::Banner("Ablation B", "Future-work extensions (Sections 6.2 and 7)");
  OrderTracingAblation();
  CompressionAblation();
  LayerDroppingAblation();
  ZeroShardingAblation();
  return 0;
}
