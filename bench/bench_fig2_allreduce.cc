// Figure 2 (a)/(b): total AllReduce time for 60M float32 parameters as a
// function of parameters-per-AllReduce, on NCCL (2 GPUs, NVLink) and Gloo
// (2 ranks, CPU tensors). Reproduces the microbenchmark protocol: launch
// the chunked AllReduces asynchronously back-to-back and block on all.
//
// Paper shape: total time falls steeply with larger tensors; Gloo plateaus
// near 500K parameters per op, NCCL keeps improving through 20M.
//
// Extended with the algorithm-zoo sweep: every collective algorithm priced
// across message size x world size, with per-cell effective bandwidth and
// speedup over the classic ring. This is the surface tools/bench_compare
// gates against bench/baselines/BENCH_fig2_allreduce.json in CI.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"
#include "sim/collective_algo.h"
#include "sim/comm_cost_model.h"
#include "sim/topology.h"

using namespace ddpkit;  // NOLINT

namespace {

std::string RunBackend(sim::Backend backend) {
  cluster::ClusterConfig config;
  config.world = 2;
  config.backend = backend;
  cluster::ClusterSim sim(cluster::ResNet152Spec(), config);

  constexpr size_t kTotalParams = 60'000'000;
  const size_t sizes[] = {1'000,     3'000,     10'000,    30'000,
                          100'000,   300'000,   500'000,   1'000'000,
                          3'000'000, 10'000'000, 20'000'000};
  std::printf("%-22s %-12s %-16s\n", "params_per_allreduce", "num_ops",
              "total_time_sec");
  std::string rows = "[";
  bool first = true;
  for (size_t params : sizes) {
    const size_t bytes = params * 4;
    const double total = sim.SplitAllReduceSeconds(kTotalParams * 4, bytes);
    const size_t ops = (kTotalParams + params - 1) / params;
    std::printf("%-22zu %-12zu %-16.5f\n", params, ops, total);
    if (!first) rows += ',';
    first = false;
    rows += "{\"params_per_allreduce\":" + std::to_string(params) +
            ",\"num_ops\":" + std::to_string(ops) +
            ",\"total_seconds\":" + JsonNumber(total) + "}";
  }
  rows += "]";
  std::printf("\n");
  return "{\"backend\":\"" + std::string(sim::BackendName(backend)) +
         "\",\"rows\":" + rows + "}";
}

// ---------------------------------------------------------------------------
// Algorithm-zoo sweep: algorithm x message size x world size on the NCCL
// cost model. Each cell records modeled latency (ns), effective bandwidth
// (message bytes / modeled seconds), and the ratio against the classic
// ring at the same (world, bytes) — the pre-PR behavior every rank ran.
// ---------------------------------------------------------------------------

struct ZooResult {
  std::string rows_json;
  double speedup_auto_25mb_8ranks = 0.0;
};

ZooResult RunZooSweep() {
  const sim::Topology topology;  // 8 GPUs/host, NVLink intra, NIC inter
  const auto model = sim::MakeCostModel(sim::Backend::kNccl, topology);

  const int worlds[] = {2, 4, 8, 32};
  const size_t sizes[] = {4u << 10,  256u << 10, 1u << 20,
                          25u << 20, 100u << 20};
  const sim::CollectiveAlgorithm algos[] = {
      sim::CollectiveAlgorithm::kNaive,
      sim::CollectiveAlgorithm::kRing,
      sim::CollectiveAlgorithm::kRingChunked,
      sim::CollectiveAlgorithm::kHalvingDoubling,
      sim::CollectiveAlgorithm::kHierarchical,
      sim::CollectiveAlgorithm::kAuto,
  };

  ZooResult result;
  result.rows_json = "[";
  bool first = true;
  for (const int world : worlds) {
    std::printf("world=%d (%s)\n", world,
                topology.SingleHost(world) ? "single host" : "multi host");
    std::printf("  %-18s %-12s %-14s %-12s %-14s\n", "algorithm", "bytes",
                "time_us", "eff_GB/s", "speedup_vs_ring");
    for (const size_t bytes : sizes) {
      const double ring_s = model->AllReduceSeconds(
          bytes, world, 1, sim::CollectiveAlgorithm::kRing);
      for (const sim::CollectiveAlgorithm algo : algos) {
        const double s = model->AllReduceSeconds(bytes, world, 1, algo);
        const double gbps = s > 0.0 ? static_cast<double>(bytes) / s / 1e9
                                    : 0.0;
        const double speedup = s > 0.0 ? ring_s / s : 0.0;
        const sim::CollectiveAlgorithm resolved =
            sim::ResolveAllReduceAlgorithm(algo, bytes, world, topology);
        std::printf("  %-18s %-12zu %-14.2f %-12.3f %-14.3f\n",
                    sim::CollectiveAlgorithmName(algo), bytes, s * 1e6, gbps,
                    speedup);
        if (!first) result.rows_json += ',';
        first = false;
        result.rows_json +=
            "{\"algorithm\":\"" +
            std::string(sim::CollectiveAlgorithmName(algo)) +
            "\",\"resolved\":\"" +
            std::string(sim::CollectiveAlgorithmName(resolved)) +
            "\",\"world\":" + std::to_string(world) +
            ",\"bytes\":" + std::to_string(bytes) +
            ",\"ns\":" + JsonNumber(s * 1e9) +
            ",\"gbps\":" + JsonNumber(gbps) +
            ",\"speedup_vs_ring\":" + JsonNumber(speedup) + "}";
        if (world == 8 && bytes == (25u << 20) &&
            algo == sim::CollectiveAlgorithm::kAuto) {
          result.speedup_auto_25mb_8ranks = speedup;
        }
      }
    }
    std::printf("\n");
  }
  result.rows_json += "]";
  return result;
}

}  // namespace

int main() {
  bench::JsonReport report("fig2_allreduce");
  bench::Banner("Figure 2(a)", "NCCL total execution time vs tensor size "
                               "(60M params, 2 GPUs, NVLink)");
  const std::string nccl = RunBackend(sim::Backend::kNccl);

  bench::Banner("Figure 2(b)", "Gloo total execution time vs tensor size "
                               "(60M params, 2 ranks, CPU tensors)");
  const std::string gloo = RunBackend(sim::Backend::kGloo);
  report.AddRaw("backends", "[" + nccl + "," + gloo + "]");

  bench::Banner("Algorithm zoo", "collective algorithm x message size x "
                                 "world size (NCCL cost model)");
  const ZooResult zoo = RunZooSweep();
  report.AddRaw("zoo_sweep", zoo.rows_json);
  report.Add("speedup_auto_vs_ring_25mb_8ranks", zoo.speedup_auto_25mb_8ranks);
  report.Write();

  std::printf("Expected shape: monotone improvement with tensor size; Gloo "
              "flattens beyond ~500K params/op, NCCL keeps gaining to 20M "
              "(paper Fig 2a/2b).\n");
  std::printf("Zoo acceptance: auto-selected algorithm at 25MB / 8 ranks is "
              "%.2fx the classic ring (target >= 1.5x).\n",
              zoo.speedup_auto_25mb_8ranks);
  return zoo.speedup_auto_25mb_8ranks >= 1.5 ? 0 : 1;
}
