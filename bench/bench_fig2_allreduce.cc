// Figure 2 (a)/(b): total AllReduce time for 60M float32 parameters as a
// function of parameters-per-AllReduce, on NCCL (2 GPUs, NVLink) and Gloo
// (2 ranks, CPU tensors). Reproduces the microbenchmark protocol: launch
// the chunked AllReduces asynchronously back-to-back and block on all.
//
// Paper shape: total time falls steeply with larger tensors; Gloo plateaus
// near 500K parameters per op, NCCL keeps improving through 20M.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster_sim.h"

using namespace ddpkit;  // NOLINT

namespace {

void RunBackend(sim::Backend backend) {
  cluster::ClusterConfig config;
  config.world = 2;
  config.backend = backend;
  cluster::ClusterSim sim(cluster::ResNet152Spec(), config);

  constexpr size_t kTotalParams = 60'000'000;
  const size_t sizes[] = {1'000,     3'000,     10'000,    30'000,
                          100'000,   300'000,   500'000,   1'000'000,
                          3'000'000, 10'000'000, 20'000'000};
  std::printf("%-22s %-12s %-16s\n", "params_per_allreduce", "num_ops",
              "total_time_sec");
  for (size_t params : sizes) {
    const size_t bytes = params * 4;
    const double total = sim.SplitAllReduceSeconds(kTotalParams * 4, bytes);
    const size_t ops = (kTotalParams + params - 1) / params;
    std::printf("%-22zu %-12zu %-16.5f\n", params, ops, total);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Banner("Figure 2(a)", "NCCL total execution time vs tensor size "
                               "(60M params, 2 GPUs, NVLink)");
  RunBackend(sim::Backend::kNccl);

  bench::Banner("Figure 2(b)", "Gloo total execution time vs tensor size "
                               "(60M params, 2 ranks, CPU tensors)");
  RunBackend(sim::Backend::kGloo);

  std::printf("Expected shape: monotone improvement with tensor size; Gloo "
              "flattens beyond ~500K params/op, NCCL keeps gaining to 20M "
              "(paper Fig 2a/2b).\n");
  return 0;
}
