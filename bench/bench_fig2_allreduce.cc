// Figure 2 (a)/(b): total AllReduce time for 60M float32 parameters as a
// function of parameters-per-AllReduce, on NCCL (2 GPUs, NVLink) and Gloo
// (2 ranks, CPU tensors). Reproduces the microbenchmark protocol: launch
// the chunked AllReduces asynchronously back-to-back and block on all.
//
// Paper shape: total time falls steeply with larger tensors; Gloo plateaus
// near 500K parameters per op, NCCL keeps improving through 20M.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"

using namespace ddpkit;  // NOLINT

namespace {

std::string RunBackend(sim::Backend backend) {
  cluster::ClusterConfig config;
  config.world = 2;
  config.backend = backend;
  cluster::ClusterSim sim(cluster::ResNet152Spec(), config);

  constexpr size_t kTotalParams = 60'000'000;
  const size_t sizes[] = {1'000,     3'000,     10'000,    30'000,
                          100'000,   300'000,   500'000,   1'000'000,
                          3'000'000, 10'000'000, 20'000'000};
  std::printf("%-22s %-12s %-16s\n", "params_per_allreduce", "num_ops",
              "total_time_sec");
  std::string rows = "[";
  bool first = true;
  for (size_t params : sizes) {
    const size_t bytes = params * 4;
    const double total = sim.SplitAllReduceSeconds(kTotalParams * 4, bytes);
    const size_t ops = (kTotalParams + params - 1) / params;
    std::printf("%-22zu %-12zu %-16.5f\n", params, ops, total);
    if (!first) rows += ',';
    first = false;
    rows += "{\"params_per_allreduce\":" + std::to_string(params) +
            ",\"num_ops\":" + std::to_string(ops) +
            ",\"total_seconds\":" + JsonNumber(total) + "}";
  }
  rows += "]";
  std::printf("\n");
  return "{\"backend\":\"" + std::string(sim::BackendName(backend)) +
         "\",\"rows\":" + rows + "}";
}

}  // namespace

int main() {
  bench::JsonReport report("fig2_allreduce");
  bench::Banner("Figure 2(a)", "NCCL total execution time vs tensor size "
                               "(60M params, 2 GPUs, NVLink)");
  const std::string nccl = RunBackend(sim::Backend::kNccl);

  bench::Banner("Figure 2(b)", "Gloo total execution time vs tensor size "
                               "(60M params, 2 ranks, CPU tensors)");
  const std::string gloo = RunBackend(sim::Backend::kGloo);
  report.AddRaw("backends", "[" + nccl + "," + gloo + "]");
  report.Write();

  std::printf("Expected shape: monotone improvement with tensor size; Gloo "
              "flattens beyond ~500K params/op, NCCL keeps gaining to 20M "
              "(paper Fig 2a/2b).\n");
  return 0;
}
