// Property-style parameterized sweeps over the DDP configuration space:
// gradient correctness must be invariant to world size, bucket cap,
// reduction algorithm and backend flavor — the configuration knobs change
// speed, never math (paper §3 correctness contract).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"

namespace ddpkit::core {
namespace {

using comm::Algorithm;
using comm::SimWorld;
using comm::SimWorldOptions;

using SweepParam = std::tuple<int, size_t, Algorithm, sim::Backend>;

class DdpConfigSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DdpConfigSweepTest, GradientsMatchLocalReference) {
  const auto [world, bucket_cap, algorithm, backend] = GetParam();
  const int64_t per_rank = 2;
  const int64_t global_batch = per_rank * world;

  Rng data_rng(71);
  Tensor all_x = Tensor::Randn({global_batch, 6}, &data_rng);
  Tensor all_y = Tensor::Randn({global_batch, 3}, &data_rng);

  Rng model_rng(73);
  nn::Mlp local({6, 10, 3}, &model_rng);
  autograd::Backward(nn::MSELoss()(local.Forward(all_x), all_y));
  std::vector<float> local_grads;
  for (const Tensor& p : local.parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      local_grads.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }

  SimWorldOptions options;
  options.algorithm = algorithm;
  options.backend = backend;
  std::vector<std::vector<float>> per_rank_grads(
      static_cast<size_t>(world));
  SimWorld::Run(world, options, [&](SimWorld::RankContext& ctx) {
    Rng rng(73);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{6, 10, 3},
                                           &rng);
    DdpOptions ddp_options;
    ddp_options.bucket_cap_bytes = bucket_cap;
    DistributedDataParallel ddp(model, ctx.process_group, ddp_options);
    Tensor x = all_x.Narrow(0, ctx.rank * per_rank, per_rank).Clone();
    Tensor y = all_y.Narrow(0, ctx.rank * per_rank, per_rank).Clone();
    autograd::Backward(nn::MSELoss()(ddp.Forward(x), y));
    auto& mine = per_rank_grads[static_cast<size_t>(ctx.rank)];
    for (const Tensor& p : model->parameters()) {
      Tensor g = p.grad();
      for (int64_t i = 0; i < g.numel(); ++i) {
        mine.push_back(static_cast<float>(g.FlatAt(i)));
      }
    }
  });

  for (int r = 0; r < world; ++r) {
    const auto& grads = per_rank_grads[static_cast<size_t>(r)];
    ASSERT_EQ(grads.size(), local_grads.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      EXPECT_NEAR(grads[i], local_grads[i], 5e-5)
          << "rank " << r << " element " << i;
    }
    EXPECT_EQ(grads, per_rank_grads[0]);  // replicas bit-identical
  }
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& [world, cap, algorithm, backend] = info.param;
  return "w" + std::to_string(world) + "_cap" + std::to_string(cap) + "_" +
         comm::AlgorithmName(algorithm) + "_" + sim::BackendName(backend);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, DdpConfigSweepTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4),
        ::testing::Values(size_t{0}, size_t{200}, size_t{1} << 30),
        ::testing::Values(Algorithm::kNaive, Algorithm::kRing,
                          Algorithm::kTree),
        ::testing::Values(sim::Backend::kNccl, sim::Backend::kGloo)),
    SweepName);

}  // namespace
}  // namespace ddpkit::core
