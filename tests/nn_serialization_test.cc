#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/serialization.h"
#include "nn/zoo.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::nn {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/ddpkit_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

TEST(SerializationTest, RoundTripRestoresParametersAndBuffers) {
  Rng rng(1);
  SmallConvNet original(&rng, 4);
  // Touch the BatchNorm buffers so they are non-default.
  original.Forward(Tensor::Randn({2, 1, 28, 28}, &rng));

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(SaveStateDict(original, path).ok());

  Rng rng2(99);  // different init
  SmallConvNet restored(&rng2, 4);
  Status status = LoadStateDict(&restored, path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  auto a = original.named_parameters();
  auto b = restored.named_parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(kernels::MaxAbsDiff(a[i].second, b[i].second), 0.0)
        << a[i].first;
  }
  auto buf_a = original.named_buffers();
  auto buf_b = restored.named_buffers();
  for (size_t i = 0; i < buf_a.size(); ++i) {
    EXPECT_EQ(kernels::MaxAbsDiff(buf_a[i].second, buf_b[i].second), 0.0)
        << buf_a[i].first;
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RestoredModelProducesIdenticalOutputs) {
  Rng rng(2);
  Mlp original({6, 12, 3}, &rng);
  const std::string path = TempPath("outputs");
  ASSERT_TRUE(SaveStateDict(original, path).ok());

  Rng rng2(3);
  Mlp restored({6, 12, 3}, &rng2);
  ASSERT_TRUE(LoadStateDict(&restored, path).ok());

  Rng data_rng(4);
  Tensor x = Tensor::Randn({5, 6}, &data_rng);
  EXPECT_EQ(kernels::MaxAbsDiff(original.Forward(x), restored.Forward(x)),
            0.0);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsNotFound) {
  Rng rng(5);
  Mlp model({2, 2}, &rng);
  Status status = LoadStateDict(&model, "/nonexistent/dir/x.bin");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SerializationTest, ArchitectureMismatchRejected) {
  Rng rng(6);
  Mlp small({4, 4}, &rng);
  Mlp big({4, 8, 4}, &rng);
  const std::string path = TempPath("mismatch");
  ASSERT_TRUE(SaveStateDict(small, path).ok());
  Status status = LoadStateDict(&big, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchRejected) {
  Rng rng(7);
  Mlp a({4, 4}, &rng);
  Mlp b({4, 6}, &rng);  // same entry names, different shapes
  const std::string path = TempPath("shape");
  ASSERT_TRUE(SaveStateDict(a, path).ok());
  Status status = LoadStateDict(&b, path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(SerializationTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a state dict", f);
  std::fclose(f);
  Rng rng(8);
  Mlp model({2, 2}, &rng);
  Status status = LoadStateDict(&model, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, CheckpointResumeInDdpTraining) {
  // Save mid-training on rank 0, then restart a fresh world from the
  // checkpoint: the DDP constructor broadcast propagates rank 0's loaded
  // state, so training resumes from a consistent point on all ranks.
  const std::string path = TempPath("ddp_resume");
  std::vector<float> params_at_save;

  comm::SimWorld::Run(2, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(10);
    auto model = std::make_shared<Mlp>(std::vector<int64_t>{4, 4}, &rng);
    core::DistributedDataParallel ddp(model, ctx.process_group);
    for (int step = 0; step < 3; ++step) {
      model->ZeroGrad();
      Rng data_rng(step);
      Tensor x = Tensor::Randn({2, 4}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    }
    if (ctx.rank == 0) {
      ASSERT_TRUE(SaveStateDict(*model, path).ok());
      for (const Tensor& p : model->parameters()) {
        for (int64_t i = 0; i < p.numel(); ++i) {
          params_at_save.push_back(static_cast<float>(p.FlatAt(i)));
        }
      }
    }
  });

  std::vector<std::vector<float>> resumed(2);
  comm::SimWorld::Run(2, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(777 + ctx.rank);  // fresh (different!) init everywhere
    auto model = std::make_shared<Mlp>(std::vector<int64_t>{4, 4}, &rng);
    if (ctx.rank == 0) {
      ASSERT_TRUE(LoadStateDict(model.get(), path).ok());
    }
    core::DistributedDataParallel ddp(model, ctx.process_group);
    for (const Tensor& p : model->parameters()) {
      for (int64_t i = 0; i < p.numel(); ++i) {
        resumed[static_cast<size_t>(ctx.rank)].push_back(
            static_cast<float>(p.FlatAt(i)));
      }
    }
  });
  EXPECT_EQ(resumed[0], params_at_save);
  EXPECT_EQ(resumed[1], params_at_save);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ddpkit::nn
