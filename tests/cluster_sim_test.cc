#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"

namespace ddpkit::cluster {
namespace {

ClusterConfig BaseConfig(int world, sim::Backend backend) {
  ClusterConfig config;
  config.world = world;
  config.backend = backend;
  config.straggler.sigma = 0.0;  // deterministic for assertions
  config.compute.op_jitter_sigma = 0.0;
  return config;
}

TEST(ClusterSimTest, SingleGpuHasNoCommunication) {
  ClusterSim sim(ResNet50Spec(), BaseConfig(1, sim::Backend::kNccl));
  auto result = sim.Run(5);
  EXPECT_DOUBLE_EQ(result.mean_breakdown.backward_comm_exposed, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_breakdown.comm_busy, 0.0);
  EXPECT_GT(result.mean_breakdown.total, 0.05);  // ~0.1 s iteration
  EXPECT_LT(result.mean_breakdown.total, 0.3);
}

TEST(ClusterSimTest, DistributedIsSlowerThanLocal) {
  auto local =
      ClusterSim(ResNet50Spec(), BaseConfig(1, sim::Backend::kNccl)).Run(5);
  auto distributed =
      ClusterSim(ResNet50Spec(), BaseConfig(32, sim::Backend::kNccl)).Run(5);
  EXPECT_GT(distributed.mean_breakdown.total, local.mean_breakdown.total);
}

TEST(ClusterSimTest, OverlapBeatsNoOverlap) {
  // The central claim of §3.2.3 / Fig 6: overlapping communication with
  // the backward pass shortens iterations.
  auto with = BaseConfig(32, sim::Backend::kNccl);
  auto without = with;
  without.overlap = false;
  auto t_overlap = ClusterSim(ResNet50Spec(), with).Run(5);
  auto t_serial = ClusterSim(ResNet50Spec(), without).Run(5);
  EXPECT_LT(t_overlap.mean_breakdown.total,
            0.95 * t_serial.mean_breakdown.total);
}

TEST(ClusterSimTest, GlooSlowerThanNccl) {
  auto nccl =
      ClusterSim(ResNet50Spec(), BaseConfig(32, sim::Backend::kNccl)).Run(3);
  auto gloo =
      ClusterSim(ResNet50Spec(), BaseConfig(32, sim::Backend::kGloo)).Run(3);
  EXPECT_GT(gloo.mean_breakdown.total, nccl.mean_breakdown.total);
}

TEST(ClusterSimTest, BucketSweepHasInteriorOptimum) {
  // Fig 7: both 0 MB (per-gradient) and one-giant-bucket are worse than a
  // mid-size cap.
  auto time_for_cap = [](size_t cap) {
    auto config = BaseConfig(16, sim::Backend::kNccl);
    config.bucket_cap_bytes = cap;
    return ClusterSim(ResNet50Spec(), config).Run(5).mean_breakdown.total;
  };
  const double zero = time_for_cap(0);
  const double mid = time_for_cap(25u << 20);
  const double giant = time_for_cap(size_t{1} << 40);
  EXPECT_LT(mid, zero);
  EXPECT_LT(mid, giant);
}

TEST(ClusterSimTest, SkipSyncReducesAmortizedLatency) {
  auto config = BaseConfig(32, sim::Backend::kNccl);
  auto every = ClusterSim(ResNet50Spec(), config).Run(16);
  config.skip_sync_every = 8;
  auto skip8 = ClusterSim(ResNet50Spec(), config).Run(16);
  const double mean_every = every.LatencySummary().mean;
  const double mean_skip = skip8.LatencySummary().mean;
  EXPECT_LT(mean_skip, mean_every);
}

TEST(ClusterSimTest, RoundRobinHelpsCommBoundModel) {
  // Fig 12: BERT on NCCL gains from rr3.
  auto config = BaseConfig(16, sim::Backend::kNccl);
  auto rr1 = ClusterSim(BertBaseSpec(), config).Run(5);
  config.round_robin_groups = 3;
  auto rr3 = ClusterSim(BertBaseSpec(), config).Run(5);
  EXPECT_LT(rr3.mean_breakdown.total, rr1.mean_breakdown.total);
}

TEST(ClusterSimTest, RoundRobinNegligibleForComputeBoundModel) {
  // Fig 12(a): ResNet50 on NCCL sees little difference.
  auto config = BaseConfig(8, sim::Backend::kNccl);
  auto rr1 = ClusterSim(ResNet50Spec(), config).Run(5);
  config.round_robin_groups = 3;
  auto rr3 = ClusterSim(ResNet50Spec(), config).Run(5);
  const double delta = std::abs(rr1.mean_breakdown.total -
                                rr3.mean_breakdown.total);
  EXPECT_LT(delta / rr1.mean_breakdown.total, 0.15);
}

TEST(ClusterSimTest, BiggerModelTakesLonger) {
  auto r50 =
      ClusterSim(ResNet50Spec(), BaseConfig(32, sim::Backend::kNccl)).Run(3);
  auto bert =
      ClusterSim(BertBaseSpec(), BaseConfig(32, sim::Backend::kNccl)).Run(3);
  EXPECT_GT(bert.mean_breakdown.total, 2.0 * r50.mean_breakdown.total);
}

TEST(ClusterSimTest, FindUnusedAddsBitmapCost) {
  auto config = BaseConfig(32, sim::Backend::kNccl);
  auto without = ClusterSim(ResNet50Spec(), config).Run(3);
  config.find_unused_parameters = true;
  auto with = ClusterSim(ResNet50Spec(), config).Run(3);
  EXPECT_GT(with.mean_breakdown.comm_busy, without.mean_breakdown.comm_busy);
}

TEST(ClusterSimTest, CompressionScaleShrinksCommTime) {
  auto config = BaseConfig(32, sim::Backend::kGloo);
  auto full = ClusterSim(BertBaseSpec(), config).Run(3);
  config.comm_bytes_scale = 0.5;  // fp16 hook
  auto half = ClusterSim(BertBaseSpec(), config).Run(3);
  EXPECT_LT(half.mean_breakdown.comm_busy,
            0.7 * full.mean_breakdown.comm_busy);
}

TEST(ClusterSimTest, StragglersWidenTheDistribution) {
  auto config = BaseConfig(32, sim::Backend::kNccl);
  config.straggler.sigma = 0.05;
  config.compute.op_jitter_sigma = 0.02;
  auto result = ClusterSim(ResNet50Spec(), config).Run(50);
  auto summary = result.LatencySummary();
  EXPECT_GT(summary.max, summary.min);
  EXPECT_GT(summary.stddev, 0.0);
}

TEST(ClusterSimTest, HiccupsCreateOutliers) {
  auto config = BaseConfig(16, sim::Backend::kNccl);
  config.hiccup_every = 10;
  config.hiccup_seconds = 0.5;
  auto result = ClusterSim(ResNet50Spec(), config).Run(25);
  auto summary = result.LatencySummary();
  EXPECT_GT(summary.max, summary.median + 0.4);
}

TEST(ClusterSimTest, SplitAllReduceMatchesFig2Shape) {
  ClusterSim sim(ResNet152Spec(), BaseConfig(2, sim::Backend::kNccl));
  const size_t total = 240u << 20;
  const double small = sim.SplitAllReduceSeconds(total, 4096);
  const double large = sim.SplitAllReduceSeconds(total, 80u << 20);
  EXPECT_GT(small, 10.0 * large);
}

TEST(ClusterSimTest, DeterministicForSameSeed) {
  auto config = BaseConfig(16, sim::Backend::kNccl);
  config.straggler.sigma = 0.05;
  config.compute.op_jitter_sigma = 0.03;
  auto a = ClusterSim(ResNet50Spec(), config).Run(10);
  auto b = ClusterSim(ResNet50Spec(), config).Run(10);
  EXPECT_EQ(a.iteration_latencies, b.iteration_latencies);
}

TEST(ClusterSimTest, BucketAssignmentSharedWithProduction) {
  auto config = BaseConfig(4, sim::Backend::kNccl);
  config.bucket_cap_bytes = 25u << 20;
  ClusterSim sim(ResNet50Spec(), config);
  auto direct = core::AssignBuckets(ResNet50Spec().params, 25u << 20);
  EXPECT_EQ(sim.assignment().buckets, direct.buckets);
}

}  // namespace
}  // namespace ddpkit::cluster
