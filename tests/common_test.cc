#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace ddpkit {
namespace {

// ---- Status ------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),  Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(), Status::Internal("").code(),
      Status::TimedOut("").code(),         Status::NotFound("").code(),
      Status::Unimplemented("").code(),
  };
  EXPECT_EQ(codes.size(), 7u);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.ValueOr(7), 42);

  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ValueOr(7), 7);
}

// ---- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 2000 draws
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 0.5), 0.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(17);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// ---- Stats ---------------------------------------------------------------------

TEST(StatsTest, SummaryOfKnownSamples) {
  std::vector<double> samples = {5.0, 1.0, 3.0, 2.0, 4.0};
  Summary s = Summarize(samples);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(StatsTest, SingleSample) {
  Summary s = Summarize({2.5});
  EXPECT_DOUBLE_EQ(s.min, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 1.0), 10.0);
}

// ---- Barrier --------------------------------------------------------------------

TEST(BarrierTest, SynchronizesThreads) {
  constexpr int kThreads = 8;
  Barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<int> serial_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      phase_counter.fetch_add(1);
      if (barrier.ArriveAndWait()) serial_count.fetch_add(1);
      // After the barrier, all increments must be visible.
      EXPECT_EQ(phase_counter.load(), kThreads);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial_count.load(), 1);  // exactly one "serial" thread
}

TEST(BarrierTest, Reusable) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.ArriveAndWait();
        EXPECT_EQ(counter.load() % (kThreads * kRounds + 1),
                  counter.load());  // no torn state
        barrier.ArriveAndWait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

}  // namespace
}  // namespace ddpkit
