#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "core/memory.h"
#include "core/trace.h"
#include "nn/zoo.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

// ---- TraceRecorder ------------------------------------------------------------

TEST(TraceRecorderTest, RecordsAndSnapshots) {
  TraceRecorder trace;
  trace.AddSpan("a", "comm", 0, 0.0, 1.0);
  trace.AddSpan("b", "backward", 1, 0.5, 2.0);
  EXPECT_EQ(trace.size(), 2u);
  auto spans = trace.snapshot();
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[1].rank, 1);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorderTest, ChromeJsonWellFormed) {
  TraceRecorder trace;
  trace.AddSpan("allreduce \"bucket\" 0", "comm", 2, 0.001, 0.002);
  const std::string json = trace.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\\\"bucket\\\""), std::string::npos);  // escaping
  EXPECT_NE(json.find("\"dur\":1000"), std::string::npos);    // 1 ms in us
}

TEST(TraceRecorderTest, DdpEmitsForwardBackwardCommSpans) {
  auto trace = std::make_shared<TraceRecorder>();
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(1);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{8, 8}, &rng);
    DdpOptions options;
    options.trace = trace;
    options.compute_model = std::make_shared<sim::ComputeCostModel>(
        sim::ComputeCostModel::GpuProfile());
    DistributedDataParallel ddp(model, ctx.process_group, options);
    Tensor x = Tensor::Full({2, 8}, 1.0);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
  });

  int forward = 0, backward = 0, comm = 0;
  for (const auto& span : trace->snapshot()) {
    EXPECT_LE(span.start_seconds, span.end_seconds);
    if (span.category == "forward") ++forward;
    if (span.category == "backward") ++backward;
    if (span.category == "comm") ++comm;
  }
  EXPECT_EQ(forward, 2);   // one per rank
  EXPECT_EQ(backward, 4);  // two params per rank
  EXPECT_EQ(comm, 2);      // one bucket per rank
}

TEST(TraceRecorderTest, WriteJsonRoundTrip) {
  TraceRecorder trace;
  trace.AddSpan("x", "comm", 0, 0.0, 0.5);
  const std::string path = std::string(::testing::TempDir()) +
                           "/ddpkit_trace_test.json";
  ASSERT_TRUE(trace.WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {0};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf).substr(0, 2), "{\"");
  std::remove(path.c_str());
}

// ---- MemoryEstimate -------------------------------------------------------------

std::vector<ParamMeta> MegabyteParams(int count) {
  std::vector<ParamMeta> params;
  for (int i = 0; i < count; ++i) {
    params.push_back(ParamMeta{262144, 1u << 20, 0});  // 1 MB each
  }
  return params;
}

TEST(MemoryEstimateTest, BaselineCountsParamsGradsBuckets) {
  ReducerOptions options;
  options.bucket_cap_bytes = 4u << 20;
  auto estimate = EstimateDdpMemory(MegabyteParams(8), options);
  EXPECT_EQ(estimate.parameter_bytes, 8u << 20);
  EXPECT_EQ(estimate.gradient_bytes, 8u << 20);
  EXPECT_EQ(estimate.bucket_bytes, 8u << 20);
  EXPECT_EQ(estimate.bitmap_bytes, 0u);
  EXPECT_EQ(estimate.Total(), 24u << 20);
}

TEST(MemoryEstimateTest, BucketViewsEliminateGradientCopy) {
  ReducerOptions options;
  options.gradient_as_bucket_view = true;
  auto estimate = EstimateDdpMemory(MegabyteParams(8), options);
  EXPECT_EQ(estimate.gradient_bytes, 0u);
  EXPECT_EQ(estimate.Total(), 16u << 20);
}

TEST(MemoryEstimateTest, FindUnusedAddsBitmaps) {
  ReducerOptions options;
  options.find_unused_parameters = true;
  auto estimate = EstimateDdpMemory(MegabyteParams(8), options);
  EXPECT_EQ(estimate.bitmap_bytes, 16u);  // 2 bitmaps x 8 params
}

TEST(MemoryEstimateTest, CompressionHookPayloads) {
  ReducerOptions fp16;
  fp16.comm_hook = std::make_shared<Fp16CompressionHook>();
  fp16.bucket_cap_bytes = 4u << 20;
  auto with_fp16 = EstimateDdpMemory(MegabyteParams(8), fp16);
  EXPECT_EQ(with_fp16.hook_payload_bytes, 2u << 20);  // half of 4MB bucket

  ReducerOptions onebit;
  onebit.comm_hook = std::make_shared<OneBitCompressionHook>();
  auto with_onebit = EstimateDdpMemory(MegabyteParams(8), onebit);
  // Residuals dominate: full bucket bytes + 1/32 of max bucket.
  EXPECT_GT(with_onebit.hook_payload_bytes, 8u << 20);
}

TEST(MemoryEstimateTest, ToStringMentionsTotal) {
  auto estimate = EstimateDdpMemory(MegabyteParams(2), ReducerOptions{});
  EXPECT_NE(estimate.ToString().find("total="), std::string::npos);
}

}  // namespace
}  // namespace ddpkit::core
