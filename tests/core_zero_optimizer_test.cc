// ZeroRedundancyOptimizer: optimizer-state sharding (§7 ZeRO discussion)
// must be mathematically identical to the unsharded optimizer while each
// rank only holds state for its own shard.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "core/zero_redundancy_optimizer.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

ZeroRedundancyOptimizer::OptimizerFactory SgdFactory(double lr,
                                                     double momentum) {
  return [lr, momentum](std::vector<Tensor> shard) {
    return std::make_unique<optim::Sgd>(
        std::move(shard), optim::Sgd::Options{.lr = lr, .momentum = momentum});
  };
}

TEST(ZeroOptimizerTest, ShardsPartitionAllParameters) {
  SimWorld::Run(3, [&](SimWorld::RankContext& ctx) {
    Rng rng(1);
    auto model = std::make_shared<nn::Mlp>(
        std::vector<int64_t>{8, 16, 16, 4}, &rng);
    ZeroRedundancyOptimizer zero(model->parameters(), ctx.process_group,
                                 SgdFactory(0.1, 0.0));
    std::set<size_t> seen;
    const size_t num_params = model->parameters().size();
    for (int r = 0; r < 3; ++r) {
      for (size_t idx : zero.ShardForRank(r)) {
        EXPECT_TRUE(seen.insert(idx).second) << "param owned twice";
        EXPECT_EQ(zero.OwnerOf(idx), r);
      }
    }
    EXPECT_EQ(seen.size(), num_params);
  });
}

TEST(ZeroOptimizerTest, ShardsAreBalancedByElements) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(2);
    // Four equal weight matrices split evenly across two ranks.
    auto model = std::make_shared<nn::Mlp>(
        std::vector<int64_t>{32, 32, 32, 32, 32}, &rng);
    auto params = model->parameters();
    ZeroRedundancyOptimizer zero(params, ctx.process_group,
                                 SgdFactory(0.1, 0.0));
    int64_t load[2] = {0, 0};
    for (int r = 0; r < 2; ++r) {
      for (size_t idx : zero.ShardForRank(r)) load[r] += params[idx].numel();
    }
    const double ratio = static_cast<double>(std::max(load[0], load[1])) /
                         static_cast<double>(std::min(load[0], load[1]));
    EXPECT_LT(ratio, 1.6);
  });
}

TEST(ZeroOptimizerTest, TrainingMatchesUnshardedOptimizer) {
  constexpr int kWorld = 4;
  constexpr int kSteps = 5;
  const int64_t per_rank = 2;

  Rng data_rng(3);
  std::vector<Tensor> xs, ys;
  for (int s = 0; s < kSteps; ++s) {
    xs.push_back(Tensor::Randn({per_rank * kWorld, 6}, &data_rng));
    ys.push_back(Tensor::Randn({per_rank * kWorld, 3}, &data_rng));
  }

  auto run = [&](bool sharded) {
    std::vector<float> result;
    SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
      Rng rng(7);
      auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{6, 8, 3},
                                             &rng);
      DistributedDataParallel ddp(model, ctx.process_group);
      std::unique_ptr<ZeroRedundancyOptimizer> zero;
      std::unique_ptr<optim::Sgd> plain;
      if (sharded) {
        zero = std::make_unique<ZeroRedundancyOptimizer>(
            model->parameters(), ctx.process_group, SgdFactory(0.05, 0.9));
      } else {
        plain = std::make_unique<optim::Sgd>(
            model->parameters(),
            optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
      }
      for (int s = 0; s < kSteps; ++s) {
        model->ZeroGrad();
        Tensor x = xs[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
        Tensor y = ys[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
        autograd::Backward(nn::MSELoss()(ddp.Forward(x), y));
        if (sharded) {
          zero->Step();
        } else {
          plain->Step();
        }
      }
      if (ctx.rank == 0) {
        for (const Tensor& p : model->parameters()) {
          for (int64_t i = 0; i < p.numel(); ++i) {
            result.push_back(static_cast<float>(p.FlatAt(i)));
          }
        }
      }
    });
    return result;
  };

  std::vector<float> sharded = run(true);
  std::vector<float> unsharded = run(false);
  ASSERT_EQ(sharded.size(), unsharded.size());
  for (size_t i = 0; i < sharded.size(); ++i) {
    // DDP gradients are identical on every rank, so the owner's update is
    // the same one every rank would have applied: bit-identical results.
    EXPECT_EQ(sharded[i], unsharded[i]) << "element " << i;
  }
}

TEST(ZeroOptimizerTest, ReplicasStayIdentical) {
  constexpr int kWorld = 3;
  std::vector<std::vector<float>> params(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(11);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{5, 7, 2},
                                           &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    ZeroRedundancyOptimizer zero(model->parameters(), ctx.process_group,
                                 SgdFactory(0.02, 0.9));
    for (int s = 0; s < 4; ++s) {
      zero.ZeroGrad();
      Rng data_rng(s * 13 + ctx.rank);
      Tensor x = Tensor::Randn({2, 5}, &data_rng);
      Tensor y = Tensor::Randn({2, 2}, &data_rng);
      autograd::Backward(nn::MSELoss()(ddp.Forward(x), y));
      zero.Step();
    }
    std::vector<float> flat;
    for (const Tensor& p : model->parameters()) {
      for (int64_t i = 0; i < p.numel(); ++i) {
        flat.push_back(static_cast<float>(p.FlatAt(i)));
      }
    }
    params[static_cast<size_t>(ctx.rank)] = std::move(flat);
  });
  EXPECT_EQ(params[0], params[1]);
  EXPECT_EQ(params[0], params[2]);
}

TEST(ZeroOptimizerTest, WorldOfOneOwnsEverything) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    Rng rng(13);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 2}, &rng);
    ZeroRedundancyOptimizer zero(model->parameters(), ctx.process_group,
                                 SgdFactory(0.1, 0.0));
    EXPECT_EQ(zero.ShardForRank(0).size(), model->parameters().size());
  });
}

}  // namespace
}  // namespace ddpkit::core
