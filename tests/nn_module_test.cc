#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/zoo.h"

namespace ddpkit::nn {
namespace {

TEST(ModuleTest, ParametersInRegistrationOrder) {
  Rng rng(1);
  Mlp mlp({4, 8, 2}, &rng);
  auto named = mlp.named_parameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc0.weight");
  EXPECT_EQ(named[1].first, "fc0.bias");
  EXPECT_EQ(named[2].first, "fc1.weight");
  EXPECT_EQ(named[3].first, "fc1.bias");
}

TEST(ModuleTest, ParametersRequireGrad) {
  Rng rng(2);
  Mlp mlp({3, 3}, &rng);
  for (const Tensor& p : mlp.parameters()) {
    EXPECT_TRUE(p.requires_grad());
  }
}

TEST(ModuleTest, NumParametersCountsEverything) {
  Rng rng(3);
  Mlp mlp({4, 8, 2}, &rng);
  EXPECT_EQ(mlp.NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(ModuleTest, BuffersAreSeparateFromParameters) {
  BatchNorm2d bn(4);
  EXPECT_EQ(bn.parameters().size(), 2u);  // gamma, beta
  EXPECT_EQ(bn.buffers().size(), 2u);     // running mean/var
  auto buffer_names = bn.named_buffers();
  EXPECT_EQ(buffer_names[0].first, "running_mean");
  EXPECT_EQ(buffer_names[1].first, "running_var");
}

TEST(ModuleTest, TrainingModeIsRecursive) {
  Rng rng(4);
  SmallConvNet net(&rng);
  EXPECT_TRUE(net.training());
  net.SetTraining(false);
  EXPECT_FALSE(net.training());
}

TEST(ModuleTest, ZeroGradZeroesAll) {
  Rng rng(5);
  Mlp mlp({2, 2}, &rng);
  Tensor x = Tensor::Randn({3, 2}, &rng);
  autograd::Backward(ops::MeanAll(mlp.Forward(x)));
  bool any_nonzero = false;
  for (const Tensor& p : mlp.parameters()) {
    ASSERT_TRUE(p.grad().defined());
    for (int64_t i = 0; i < p.numel(); ++i) {
      if (p.grad().FlatAt(i) != 0.0) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  mlp.ZeroGrad();
  for (const Tensor& p : mlp.parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      EXPECT_EQ(p.grad().FlatAt(i), 0.0);
    }
  }
}

TEST(ModuleTest, SequentialRunsInOrder) {
  Rng rng(6);
  auto seq = std::make_shared<Sequential>();
  seq->Append(std::make_shared<Linear>(4, 8, &rng))
      .Append(std::make_shared<ReLU>())
      .Append(std::make_shared<Linear>(8, 2, &rng));
  EXPECT_EQ(seq->size(), 3u);
  Tensor out = seq->Forward(Tensor::Randn({5, 4}, &rng));
  EXPECT_EQ(out.size(0), 5);
  EXPECT_EQ(out.size(1), 2);
  // 2 Linear layers with bias.
  EXPECT_EQ(seq->parameters().size(), 4u);
}

TEST(ModuleTest, NestedModuleNamesAreQualified) {
  Rng rng(7);
  ResNetTiny net(&rng, 3, 4, 10, 1);
  auto named = net.named_parameters();
  EXPECT_EQ(named[0].first, "stem.weight");
  bool found_nested = false;
  for (const auto& [name, p] : named) {
    if (name.find("stage1_0.conv1.weight") != std::string::npos) {
      found_nested = true;
    }
  }
  EXPECT_TRUE(found_nested);
}

}  // namespace
}  // namespace ddpkit::nn
