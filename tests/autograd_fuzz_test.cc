// Randomized property test for the autograd engine: build random DAGs of
// differentiable ops over a handful of leaf parameters, then check every
// analytic gradient against central finite differences. Catches wrong
// backward formulas, fan-in accumulation bugs, and engine scheduling
// errors that hand-written cases miss.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace ddpkit {
namespace {

using autograd::Backward;
using autograd::NoGradGuard;

/// Applies a randomly chosen shape-preserving differentiable op. The op
/// choice consumes `rng` deterministically, so the same seed rebuilds the
/// same graph — required for finite differencing.
Tensor RandomUnary(const Tensor& x, uint64_t choice) {
  switch (choice % 5) {
    case 0:
      // Smooth ops only: ReLU kinks within the finite-difference epsilon
      // would produce spurious mismatches.
      return ops::Gelu(ops::Scale(x, 1.3));
    case 1:
      return ops::Gelu(x);
    case 2:
      // exp of a tamed input to avoid overflow.
      return ops::Exp(ops::Scale(x, 0.3));
    case 3:
      return ops::Scale(x, -0.7);
    default:
      return ops::Mul(x, x);
  }
}

Tensor RandomBinary(const Tensor& a, const Tensor& b, uint64_t choice) {
  switch (choice % 3) {
    case 0:
      return ops::Add(a, b);
    case 1:
      return ops::Sub(a, b);
    default:
      return ops::Mul(a, b);
  }
}

/// Builds a random DAG over `leaves` using a fixed op-choice sequence and
/// returns the scalar loss.
Tensor BuildGraph(const std::vector<Tensor>& leaves,
                  const std::vector<uint64_t>& choices) {
  std::vector<Tensor> pool = leaves;
  size_t c = 0;
  auto next = [&] { return choices[c++ % choices.size()]; };
  // Grow the pool with random ops over random existing nodes.
  for (int step = 0; step < 6; ++step) {
    const uint64_t kind = next();
    const Tensor& a = pool[next() % pool.size()];
    if (kind % 2 == 0) {
      pool.push_back(RandomUnary(a, next()));
    } else {
      const Tensor& b = pool[next() % pool.size()];
      pool.push_back(RandomBinary(a, b, next()));
    }
  }
  // Sum everything so every path contributes to the loss.
  Tensor acc = pool.back();
  for (size_t i = 0; i + 1 < pool.size(); ++i) {
    acc = ops::Add(acc, pool[i]);
  }
  return ops::MeanAll(acc);
}

class AutogradFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradFuzzTest, AnalyticMatchesNumerical) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));

  std::vector<Tensor> leaves;
  for (int i = 0; i < 3; ++i) {
    Tensor leaf = Tensor::Rand({4}, &rng, -1.0, 1.0);
    leaf.set_requires_grad(true);
    leaves.push_back(leaf);
  }
  std::vector<uint64_t> choices;
  for (int i = 0; i < 64; ++i) choices.push_back(rng.Next());

  Tensor loss = BuildGraph(leaves, choices);
  Backward(loss);

  auto loss_value = [&] {
    NoGradGuard guard;
    return BuildGraph(leaves, choices).Item();
  };
  for (size_t li = 0; li < leaves.size(); ++li) {
    Tensor leaf = leaves[li];
    ASSERT_TRUE(leaf.grad().defined()) << "leaf " << li;
    for (int64_t i = 0; i < leaf.numel(); ++i) {
      const double analytic = leaf.grad().FlatAt(i);
      const double orig = leaf.FlatAt(i);
      const double eps = 5e-3;
      leaf.FlatSet(i, orig + eps);
      const double plus = loss_value();
      leaf.FlatSet(i, orig - eps);
      const double minus = loss_value();
      leaf.FlatSet(i, orig);
      const double numeric = (plus - minus) / (2.0 * eps);
      EXPECT_NEAR(analytic, numeric, 5e-2 * (1.0 + std::abs(numeric)))
          << "seed " << seed << " leaf " << li << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest,
                         ::testing::Range(1, 21),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ddpkit
