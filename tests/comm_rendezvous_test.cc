// Elastic-recovery rendezvous protocol (DESIGN.md §9): generation-stamped
// regroup over the survivors, typed failures for lone survivors and sealed-
// out stragglers, generation gating of old-group collectives, and Store key
// hygiene across repeated recoveries.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault_plan.h"
#include "comm/process_group_sim.h"
#include "comm/rendezvous.h"
#include "comm/sim_world.h"
#include "comm/store.h"

namespace ddpkit::comm {
namespace {

// ---------------------------------------------------------------------------
// Membership payload plumbing
// ---------------------------------------------------------------------------

TEST(RendezvousMembersTest, SerializeParseRoundTrip) {
  const std::vector<int> members = {0, 2, 5, 7};
  std::vector<int> parsed;
  ASSERT_TRUE(ParseMembers(SerializeMembers(members), /*old_world=*/8,
                           &parsed));
  EXPECT_EQ(parsed, members);
}

TEST(RendezvousMembersTest, ParseRejectsMalformedPayloads) {
  std::vector<int> parsed;
  // Untrusted Store bytes: every structural defect must parse-fail, never
  // throw or yield a bogus membership.
  EXPECT_FALSE(ParseMembers("", 8, &parsed));
  EXPECT_FALSE(ParseMembers("abc", 8, &parsed));
  EXPECT_FALSE(ParseMembers("2:0", 8, &parsed));        // count mismatch
  EXPECT_FALSE(ParseMembers("1:0:1", 8, &parsed));      // count mismatch
  EXPECT_FALSE(ParseMembers("2:1:0", 8, &parsed));      // not ascending
  EXPECT_FALSE(ParseMembers("2:0:0", 8, &parsed));      // duplicate
  EXPECT_FALSE(ParseMembers("2:0:8", 8, &parsed));      // out of range
  EXPECT_FALSE(ParseMembers("2:-1:0", 8, &parsed));     // negative
  EXPECT_FALSE(ParseMembers("0:", 8, &parsed));         // empty membership
  EXPECT_FALSE(ParseMembers("2:0x1:2", 8, &parsed));    // junk field
}

// ---------------------------------------------------------------------------
// The rendezvous protocol
// ---------------------------------------------------------------------------

RendezvousOptions FastOptions(double timeout = 2.0, int min_world = 2) {
  RendezvousOptions options;
  options.timeout_seconds = timeout;
  options.min_world = min_world;
  return options;
}

TEST(RendezvousTest, FullMembershipKeepsRanksAndBumpsGeneration) {
  Store store;
  constexpr int kWorld = 4;
  std::vector<Result<RendezvousResult>> results;
  results.reserve(kWorld);
  for (int r = 0; r < kWorld; ++r) {
    results.push_back(Result<RendezvousResult>(Status::Internal("unset")));
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < kWorld; ++r) {
    threads.emplace_back([&, r] {
      results[static_cast<size_t>(r)] = AbortAndRendezvous(
          &store, "full", r, kWorld, /*from_generation=*/0, FastOptions());
    });
  }
  for (auto& t : threads) t.join();

  for (int r = 0; r < kWorld; ++r) {
    const auto& got = results[static_cast<size_t>(r)];
    ASSERT_TRUE(got.ok()) << "rank " << r << ": " << got.status().ToString();
    const RendezvousResult& rr = got.value();
    EXPECT_EQ(rr.generation, 1u);
    EXPECT_EQ(rr.new_rank, r);  // nobody died: dense ranks are unchanged
    EXPECT_EQ(rr.new_world, kWorld);
    EXPECT_EQ(rr.survivors, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(rr.source_old_rank, 0);
  }
}

TEST(RendezvousTest, ShrinkRenumbersSurvivorsDensely) {
  Store store;
  constexpr int kWorld = 4;
  // Rank 2 is dead: it never joins. Survivors wait out the short barrier,
  // seal {0, 1, 3}, and renumber densely.
  std::vector<Result<RendezvousResult>> results;
  for (int r = 0; r < kWorld; ++r) {
    results.push_back(Result<RendezvousResult>(Status::Internal("unset")));
  }
  std::vector<std::thread> threads;
  for (int r : {0, 1, 3}) {
    threads.emplace_back([&, r] {
      results[static_cast<size_t>(r)] =
          AbortAndRendezvous(&store, "shrink", r, kWorld,
                             /*from_generation=*/0, FastOptions(0.4));
    });
  }
  for (auto& t : threads) t.join();

  const std::vector<int> expect_new_rank = {0, 1, -1, 2};
  for (int r : {0, 1, 3}) {
    const auto& got = results[static_cast<size_t>(r)];
    ASSERT_TRUE(got.ok()) << "rank " << r << ": " << got.status().ToString();
    const RendezvousResult& rr = got.value();
    EXPECT_EQ(rr.generation, 1u);
    EXPECT_EQ(rr.new_world, 3);
    EXPECT_EQ(rr.survivors, (std::vector<int>{0, 1, 3}));
    EXPECT_EQ(rr.new_rank, expect_new_rank[static_cast<size_t>(r)]);
    EXPECT_EQ(rr.source_old_rank, 0);
  }
}

TEST(RendezvousTest, LoneSurvivorGetsTypedTimeoutNotAHang) {
  Store store;
  const auto start = std::chrono::steady_clock::now();
  auto got = AbortAndRendezvous(&store, "lone", /*old_rank=*/0,
                                /*old_world=*/2, /*from_generation=*/0,
                                FastOptions(0.3));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kTimedOut)
      << got.status().ToString();
  EXPECT_NE(got.status().message().find("survivor"), std::string::npos)
      << got.status().message();
  // Bounded: roughly the barrier budget plus the members wait, nowhere
  // near a hang.
  EXPECT_LT(elapsed, 5.0);
}

TEST(RendezvousTest, MinWorldOneAllowsSoloRegroup) {
  Store store;
  auto got = AbortAndRendezvous(&store, "solo", /*old_rank=*/1,
                                /*old_world=*/2, /*from_generation=*/0,
                                FastOptions(0.3, /*min_world=*/1));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().new_rank, 0);
  EXPECT_EQ(got.value().new_world, 1);
  EXPECT_EQ(got.value().survivors, std::vector<int>{1});
  EXPECT_EQ(got.value().source_old_rank, 1);
}

TEST(RendezvousTest, SealedOutStragglerGetsTypedTimeout) {
  Store store;
  constexpr int kWorld = 3;
  std::vector<Result<RendezvousResult>> results;
  for (int r = 0; r < kWorld; ++r) {
    results.push_back(Result<RendezvousResult>(Status::Internal("unset")));
  }
  std::vector<std::thread> threads;
  // Ranks 0 and 1 rendezvous promptly with a short barrier; rank 2 shows
  // up only after the membership is guaranteed sealed without it.
  for (int r : {0, 1}) {
    threads.emplace_back([&, r] {
      results[static_cast<size_t>(r)] =
          AbortAndRendezvous(&store, "straggle", r, kWorld,
                             /*from_generation=*/0, FastOptions(0.3));
    });
  }
  threads.emplace_back([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    results[2] = AbortAndRendezvous(&store, "straggle", 2, kWorld,
                                    /*from_generation=*/0, FastOptions(0.3));
  });
  for (auto& t : threads) t.join();

  for (int r : {0, 1}) {
    ASSERT_TRUE(results[static_cast<size_t>(r)].ok())
        << results[static_cast<size_t>(r)].status().ToString();
    EXPECT_EQ(results[static_cast<size_t>(r)].value().new_world, 2);
  }
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), StatusCode::kTimedOut)
      << results[2].status().ToString();
}

TEST(RendezvousTest, NullStoreAndBadArgsAreInvalid) {
  Store store;
  EXPECT_EQ(AbortAndRendezvous(nullptr, "ns", 0, 2, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AbortAndRendezvous(&store, "ns", -1, 2, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AbortAndRendezvous(&store, "ns", 2, 2, 0).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Key hygiene: each round's keys are deleted once the regroup completes
// ---------------------------------------------------------------------------

TEST(RendezvousTest, CleanupDeletesTheGenerationsKeys) {
  Store store;
  std::thread peer([&] {
    auto got = AbortAndRendezvous(&store, "gc", 1, 2, 0, FastOptions());
    EXPECT_TRUE(got.ok()) << got.status().ToString();
  });
  auto got = AbortAndRendezvous(&store, "gc", 0, 2, 0, FastOptions());
  peer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  EXPECT_GT(store.NumKeys(), 0u);  // join/seal/members keys exist
  CleanupRendezvous(&store, "gc", got.value().generation);
  EXPECT_EQ(store.NumKeys(), 0u);
}

TEST(RendezvousTest, KeyCountStaysBoundedAcrossManyGenerations) {
  // Satellite invariant: 100 recovery epochs leak nothing — every round
  // cleans the previous state, so the Store's key count is bounded by one
  // in-flight round, not by the recovery count.
  Store store;
  size_t peak = 0;
  for (uint64_t gen = 0; gen < 100; ++gen) {
    Result<RendezvousResult> a(Status::Internal("unset"));
    std::thread peer([&] {
      a = AbortAndRendezvous(&store, "epochs", 1, 2, gen, FastOptions());
    });
    auto b = AbortAndRendezvous(&store, "epochs", 0, 2, gen, FastOptions());
    peer.join();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    peak = std::max(peak, store.NumKeys());
    CleanupRendezvous(&store, "epochs", b.value().generation);
    ASSERT_LE(store.NumKeys(), 0u) << "generation " << gen << " leaked keys";
  }
  // One round in flight: 2 join keys + seal + members.
  EXPECT_LE(peak, 4u);
}

// ---------------------------------------------------------------------------
// Generation gating on the process group
// ---------------------------------------------------------------------------

TEST(GenerationGateTest, AbortFailsInflightAndSubsequentCollectives) {
  // Rank 0 contributes to an AllReduce rank 1 never joins, so the work is
  // genuinely in flight; rank 1 then retires the group. The abort must
  // fail the pending work AND every later contribution, typed
  // kInvalidGeneration — the old-generation straggler can never hang.
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    EXPECT_EQ(ctx.process_group->generation(), 0u);
    if (ctx.rank != 0) {
      // Retire the group only once rank 0's contribution is registered —
      // this exercises the inflight-drain path, not the issue-time gate.
      (void)ctx.store->Get("gate/issued");
      ctx.process_group->AbortGroup(1, "test retirement");
      EXPECT_EQ(ctx.process_group->superseded_by(), 1u);
      return;
    }
    Tensor pending = Tensor::Full({8}, 1.0);
    WorkHandle work = ctx.process_group->AllReduce(pending);
    EXPECT_FALSE(work->Poll());  // short one participant: still in flight
    ctx.store->Set("gate/issued", "1");

    // Blocks until the abort fails the work — typed, no watchdog needed.
    Status st = work->Wait(ctx.clock, 1000.0);
    ASSERT_EQ(st.code(), StatusCode::kInvalidGeneration) << st.ToString();
    EXPECT_EQ(work->error(), WorkError::kInvalidGeneration);
    EXPECT_NE(st.message().find("superseded by generation 1"),
              std::string::npos)
        << st.message();

    // Straggler shape: a collective issued after retirement fails fast at
    // registration, it does not wait out any watchdog.
    Tensor late = Tensor::Full({8}, 1.0);
    WorkHandle straggler = ctx.process_group->AllReduce(late);
    EXPECT_TRUE(straggler->Poll());
    Status late_st = straggler->Wait(ctx.clock, 5.0);
    EXPECT_EQ(late_st.code(), StatusCode::kInvalidGeneration)
        << late_st.ToString();
    EXPECT_EQ(ctx.process_group->superseded_by(), 1u);
  });
}

TEST(GenerationGateTest, RegroupedGenerationRunsCleanAfterAbort) {
  // Survivor-side happy path: retire generation 0, re-form through the
  // SimWorld factory at generation 1 (full membership here), and verify
  // the new group both carries the stamp and reduces correctly.
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Tensor warm = Tensor::Full({4}, 1.0);
    ASSERT_TRUE(
        ctx.process_group->AllReduce(warm)->Wait(ctx.clock, 30.0).ok());

    ctx.process_group->AbortGroup(1, "regroup test");
    std::shared_ptr<ProcessGroup> next =
        ctx.make_group(/*generation=*/1, ctx.rank, ctx.world);
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->generation(), 1u);
    EXPECT_EQ(next->superseded_by(), 0u);

    Tensor t = Tensor::Full({8}, ctx.rank + 1.0);
    Status st = next->AllReduce(t)->Wait(next->clock(), 30.0);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_DOUBLE_EQ(t.FlatAt(0), 3.0);
  });
}

}  // namespace
}  // namespace ddpkit::comm
