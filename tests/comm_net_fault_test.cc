// WireFaultPlan / WireFaultInjector: every injected fault kind must be
// replayable from its plan, visible to the peer as a real wire condition
// (EOF, reset, stall), and invisible when the plan is empty. Fault
// decisions are seed/op deterministic; only their wall timing is real.
//
// Also hosts the net_socket edge-case regressions from the wire audit:
// typed errors for a peer reset mid-frame and send-side partial shutdown.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "comm/chaos_spec.h"
#include "comm/fault_plan.h"
#include "comm/net_fault.h"
#include "comm/net_socket.h"

namespace ddpkit::comm {
namespace {

// ddplint: allow-file(banned-nondeterminism) reason: these tests measure
// real wall-clock wire behaviour (blackhole waits, slow-link pacing) on
// purpose.

/// A connected AF_UNIX stream pair; index 0 plays "rank 0's end".
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  }
  ~SocketPair() {
    CloseFd(fds[0]);
    CloseFd(fds[1]);
  }
};

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TEST(WireFaultPlanTest, RandomPairIsSeedDeterministic) {
  for (int world : {2, 4, 8}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const auto a = WireFaultPlan::RandomPair(seed, world);
      const auto b = WireFaultPlan::RandomPair(seed, world);
      EXPECT_EQ(a, b) << "seed " << seed << " world " << world;
      EXPECT_GE(a.first, 0);
      EXPECT_LT(a.first, a.second);
      EXPECT_LT(a.second, world);
    }
  }
  // Different seeds must not all collapse onto one pair.
  bool any_differ = false;
  const auto first = WireFaultPlan::RandomPair(1, 8);
  for (uint64_t seed = 2; seed <= 16 && !any_differ; ++seed) {
    any_differ = WireFaultPlan::RandomPair(seed, 8) != first;
  }
  EXPECT_TRUE(any_differ);
}

TEST(WireFaultPlanTest, DebugStringReplaysFromSeed) {
  auto build = [](uint64_t seed) {
    WireFaultPlan plan;
    plan.AddRandomPartition(seed, /*world=*/8, /*from_op=*/7,
                            /*heal_after_hits=*/3);
    plan.ResetConnection(0, 1, /*at_op=*/2);
    plan.TruncateSend(2, 3, /*at_op=*/4, /*after_bytes=*/128);
    plan.SlowLink(4, 5, /*latency_seconds=*/0.001,
                  /*bytes_per_second=*/1e6);
    plan.FlakyAccept(6, /*fail_count=*/2);
    return plan.DebugString();
  };
  EXPECT_EQ(build(42), build(42));
  EXPECT_FALSE(build(42).empty());
}

TEST(WireFaultPlanTest, QueriesAreDirectional) {
  WireFaultPlan plan;
  plan.PartitionOneWay(0, 1, /*from_op=*/0);
  EXPECT_NE(plan.FindPartition(0, 1), nullptr);
  EXPECT_EQ(plan.FindPartition(1, 0), nullptr);

  WireFaultPlan both;
  both.PartitionTwoWay(2, 3, /*from_op=*/5);
  EXPECT_NE(both.FindPartition(2, 3), nullptr);
  EXPECT_NE(both.FindPartition(3, 2), nullptr);
  EXPECT_EQ(both.FindPartition(2, 3)->from_op, 5u);
}

TEST(WireFaultInjectorTest, NullPlanIsTransparent) {
  SocketPair pair;
  WireFaultInjector shim(nullptr, /*self_rank=*/0);
  const char msg[] = "hello";
  ASSERT_TRUE(shim.SendAll(1, pair.fds[0], msg, sizeof(msg),
                           Deadline::After(1.0))
                  .ok());
  char got[sizeof(msg)] = {};
  ASSERT_TRUE(
      RecvAll(pair.fds[1], got, sizeof(got), Deadline::After(1.0)).ok());
  EXPECT_STREQ(got, "hello");
  EXPECT_EQ(shim.faults_injected(), 0u);
}

TEST(WireFaultInjectorTest, PartitionBlackholesSendWithTypedTimeout) {
  WireFaultPlan plan;
  plan.PartitionOneWay(0, 1, /*from_op=*/0);
  plan.blackhole_cap_seconds = 0.05;
  SocketPair pair;
  WireFaultInjector shim(&plan, /*self_rank=*/0);
  const char msg[] = "x";
  const Status status =
      shim.SendAll(1, pair.fds[0], msg, 1, Deadline::After(5.0));
  EXPECT_EQ(status.code(), StatusCode::kTimedOut);
  EXPECT_NE(status.message().find("injected partition"), std::string::npos);
  EXPECT_EQ(shim.link_hits(1), 1u);
  // Nothing reached the wire.
  char buf = 0;
  // A raw nonblocking peek — no net_socket helper can prove absence.
  EXPECT_EQ(recv(pair.fds[1], &buf, 1, MSG_DONTWAIT), -1);  // ddplint: allow(raw-wire-io) reason: peek for absence of bytes
}

TEST(WireFaultInjectorTest, OneWayPartitionIsAsymmetric) {
  WireFaultPlan plan;
  plan.PartitionOneWay(0, 1, /*from_op=*/0);
  plan.blackhole_cap_seconds = 0.02;
  SocketPair pair;
  WireFaultInjector rank0(&plan, 0);
  WireFaultInjector rank1(&plan, 1);
  const char msg[] = "y";
  // 0 -> 1 is dead...
  EXPECT_EQ(rank0.SendAll(1, pair.fds[0], msg, 1, Deadline::After(1.0))
                .code(),
            StatusCode::kTimedOut);
  // ...while 1 -> 0 flows (same plan, opposite direction).
  ASSERT_TRUE(
      rank1.SendAll(0, pair.fds[1], msg, 1, Deadline::After(1.0)).ok());
  char got = 0;
  ASSERT_TRUE(RecvAll(pair.fds[0], &got, 1, Deadline::After(1.0)).ok());
  EXPECT_EQ(got, 'y');
}

TEST(WireFaultInjectorTest, PartitionHealsAfterHitBudget) {
  WireFaultPlan plan;
  plan.PartitionTwoWay(0, 1, /*from_op=*/0, /*heal_after_hits=*/2);
  plan.blackhole_cap_seconds = 0.01;
  SocketPair pair;
  WireFaultInjector shim(&plan, 0);
  const char msg[] = "z";
  for (int hit = 0; hit < 2; ++hit) {
    EXPECT_EQ(shim.SendAll(1, pair.fds[0], msg, 1, Deadline::After(1.0))
                  .code(),
              StatusCode::kTimedOut);
  }
  EXPECT_EQ(shim.link_hits(1), 2u);
  // Third op: the link has healed, bytes flow.
  ASSERT_TRUE(
      shim.SendAll(1, pair.fds[0], msg, 1, Deadline::After(1.0)).ok());
  char got = 0;
  ASSERT_TRUE(RecvAll(pair.fds[1], &got, 1, Deadline::After(1.0)).ok());
  EXPECT_EQ(got, 'z');
}

TEST(WireFaultInjectorTest, PartitionActivationIsOpGatedAndSticky) {
  WireFaultPlan plan;
  plan.PartitionOneWay(0, 1, /*from_op=*/5);
  plan.blackhole_cap_seconds = 0.01;
  SocketPair pair;
  WireFaultInjector shim(&plan, 0);
  const char msg[] = "a";
  shim.set_op_index(4);
  ASSERT_TRUE(
      shim.SendAll(1, pair.fds[0], msg, 1, Deadline::After(1.0)).ok());
  shim.set_op_index(5);
  EXPECT_EQ(
      shim.SendAll(1, pair.fds[0], msg, 1, Deadline::After(1.0)).code(),
      StatusCode::kTimedOut);
  // Sticky across a sequence reset (a regrouped generation restarts seq
  // numbering at 0, the partition must keep biting).
  shim.set_op_index(0);
  EXPECT_EQ(
      shim.SendAll(1, pair.fds[0], msg, 1, Deadline::After(1.0)).code(),
      StatusCode::kTimedOut);
}

TEST(WireFaultInjectorTest, HeartbeatSeesPartitionButNeverCountsHits) {
  WireFaultPlan plan;
  plan.PartitionOneWay(0, 1, /*from_op=*/0, /*heal_after_hits=*/1);
  plan.blackhole_cap_seconds = 0.01;
  SocketPair pair;
  WireFaultInjector shim(&plan, 0);
  const char ping = 'h';
  for (int probe = 0; probe < 5; ++probe) {
    EXPECT_EQ(
        shim.Heartbeat(1, pair.fds[0], &ping, 1, Deadline::After(0.1))
            .code(),
        StatusCode::kTimedOut);
  }
  // Five probes, zero hits: the heal clock only advances on data-plane
  // and connect traffic.
  EXPECT_EQ(shim.link_hits(1), 0u);
  EXPECT_TRUE(shim.SendPartitioned(1));
}

TEST(WireFaultInjectorTest, ResetInjectsPeerVisibleEof) {
  WireFaultPlan plan;
  plan.ResetConnection(0, 1, /*at_op=*/0);
  SocketPair pair;
  WireFaultInjector shim(&plan, 0);
  const char msg[] = "b";
  const Status status =
      shim.SendAll(1, pair.fds[0], msg, 1, Deadline::After(1.0));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("injected connection reset"),
            std::string::npos);
  // The peer observes the torn stream as a typed mid-message close.
  char buf[4] = {};
  const Status peer =
      RecvAll(pair.fds[1], buf, sizeof(buf), Deadline::After(1.0));
  EXPECT_EQ(peer.code(), StatusCode::kInternal);
  EXPECT_NE(peer.message().find("peer closed connection mid-message"),
            std::string::npos);
  // One-shot: a later op on a fresh connection is clean.
  SocketPair fresh;
  shim.set_op_index(1);
  EXPECT_TRUE(
      shim.SendAll(1, fresh.fds[0], msg, 1, Deadline::After(1.0)).ok());
}

TEST(WireFaultInjectorTest, TruncationCutsMidFrame) {
  WireFaultPlan plan;
  plan.TruncateSend(0, 1, /*at_op=*/0, /*after_bytes=*/3);
  SocketPair pair;
  WireFaultInjector shim(&plan, 0);
  const std::string payload(64, 'q');
  const Status status = shim.SendFrame(1, pair.fds[0], payload.data(),
                                       payload.size(), Deadline::After(1.0));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("injected mid-frame truncation"),
            std::string::npos);
  // The length prefix escaped but the payload was cut: the peer's framed
  // read fails typed, mid-message.
  Result<std::vector<uint8_t>> frame =
      RecvFrame(pair.fds[1], Deadline::After(1.0));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInternal);
  EXPECT_NE(
      frame.status().message().find("peer closed connection mid-message"),
      std::string::npos);
}

TEST(WireFaultInjectorTest, SlowLinkDelaysButDeliversIntact) {
  WireFaultPlan plan;
  plan.SlowLink(0, 1, /*latency_seconds=*/0.05, /*bytes_per_second=*/0.0);
  SocketPair pair;
  WireFaultInjector shim(&plan, 0);
  const std::string payload = "throttled payload";
  const double start = WallSeconds();
  ASSERT_TRUE(shim.SendAll(1, pair.fds[0], payload.data(), payload.size(),
                           Deadline::After(5.0))
                  .ok());
  EXPECT_GE(WallSeconds() - start, 0.04);
  std::string got(payload.size(), 0);
  ASSERT_TRUE(
      RecvAll(pair.fds[1], got.data(), got.size(), Deadline::After(1.0))
          .ok());
  EXPECT_EQ(got, payload);
}

TEST(WireFaultInjectorTest, FlakyAcceptFailsExactlyNTimes) {
  WireFaultPlan plan;
  plan.FlakyAccept(/*rank=*/0, /*fail_count=*/2);
  WireFaultInjector shim(&plan, 0);

  Result<int> listen_fd = ListenTcp("127.0.0.1", 0, 4);
  ASSERT_TRUE(listen_fd.ok());
  Result<int> port = ListenPort(listen_fd.value());
  ASSERT_TRUE(port.ok());

  for (int failure = 0; failure < 2; ++failure) {
    Result<int> fd =
        shim.AcceptWithDeadline(listen_fd.value(), Deadline::After(0.5));
    ASSERT_FALSE(fd.ok());
    EXPECT_EQ(fd.status().code(), StatusCode::kInternal);
    EXPECT_NE(fd.status().message().find("injected flaky accept"),
              std::string::npos);
  }
  // Budget exhausted: a real connection goes through.
  std::thread connector([&] {
    Result<int> fd = ConnectWithDeadline("127.0.0.1", port.value(),
                                         Deadline::After(2.0));
    EXPECT_TRUE(fd.ok());
    if (fd.ok()) CloseFd(fd.value());
  });
  Result<int> fd =
      shim.AcceptWithDeadline(listen_fd.value(), Deadline::After(2.0));
  EXPECT_TRUE(fd.ok());
  if (fd.ok()) CloseFd(fd.value());
  connector.join();
  CloseFd(listen_fd.value());
  EXPECT_EQ(shim.faults_injected(), 2u);
}

TEST(WireFaultInjectorTest, ConnectConsultsBothDirections) {
  // A partition dst -> src alone must still kill src's connect: the
  // SYN-ACK can't come back.
  WireFaultPlan plan;
  plan.PartitionOneWay(1, 0, /*from_op=*/0);
  plan.blackhole_cap_seconds = 0.02;
  WireFaultInjector shim(&plan, /*self_rank=*/0);
  const Result<int> fd =
      shim.ConnectWithDeadline(1, "127.0.0.1", 1, Deadline::After(1.0));
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kTimedOut);
  EXPECT_NE(fd.status().message().find("injected partition"),
            std::string::npos);
  EXPECT_EQ(shim.link_hits(1), 1u);
}

// --- --chaos spec parsing --------------------------------------------------

TEST(ChaosSpecTest, PartitionWithHealClause) {
  // step 5 on the standard 4-broadcast harness is op 9; heal after 3 hits.
  Result<WireFaultPlan> plan = ParseWireChaosSpec(
      "partition:2x3@step5,heal@step8", /*seed=*/1, /*world=*/4);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  const auto* forward = plan.value().FindPartition(2, 3);
  const auto* backward = plan.value().FindPartition(3, 2);
  ASSERT_NE(forward, nullptr);
  ASSERT_NE(backward, nullptr);
  EXPECT_EQ(forward->from_op, 9u);
  EXPECT_EQ(forward->heal_after_hits, 3u);
  EXPECT_EQ(backward->heal_after_hits, 3u);
}

TEST(ChaosSpecTest, OneWayAndRandomLinks) {
  Result<WireFaultPlan> one_way =
      ParseWireChaosSpec("partition:0>1@step2", 1, 4);
  ASSERT_TRUE(one_way.ok());
  EXPECT_NE(one_way.value().FindPartition(0, 1), nullptr);
  EXPECT_EQ(one_way.value().FindPartition(1, 0), nullptr);

  const auto pair = WireFaultPlan::RandomPair(/*seed=*/7, /*world=*/8);
  Result<WireFaultPlan> random =
      ParseWireChaosSpec("partition:rand@step0", /*seed=*/7, /*world=*/8);
  ASSERT_TRUE(random.ok());
  EXPECT_NE(random.value().FindPartition(pair.first, pair.second), nullptr);
  EXPECT_NE(random.value().FindPartition(pair.second, pair.first), nullptr);
}

TEST(ChaosSpecTest, EveryFaultKindParses) {
  Result<WireFaultPlan> plan = ParseWireChaosSpec(
      "reset:0x1@step1,truncate:2>3@step2:128,slow:1x2:5:1000000,"
      "flaky-accept:3:2",
      1, 4);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_NE(plan.value().FindReset(0, 1), nullptr);
  EXPECT_NE(plan.value().FindReset(1, 0), nullptr);
  ASSERT_NE(plan.value().FindTruncation(2, 3), nullptr);
  EXPECT_EQ(plan.value().FindTruncation(2, 3)->after_bytes, 128u);
  EXPECT_EQ(plan.value().FindTruncation(3, 2), nullptr);  // one-way
  ASSERT_NE(plan.value().FindThrottle(1, 2), nullptr);
  EXPECT_NEAR(plan.value().FindThrottle(1, 2)->latency_seconds, 0.005,
              1e-12);
  EXPECT_EQ(plan.value().FindThrottle(1, 2)->bytes_per_second, 1000000.0);
  EXPECT_NE(plan.value().FindThrottle(2, 1), nullptr);
  EXPECT_EQ(plan.value().AcceptFailures(3), 2);
}

TEST(ChaosSpecTest, MalformedSpecsFailTyped) {
  const char* bad[] = {
      "",                          // empty
      "partition:2x3",             // missing @step
      "partition:2x9@step1",      // rank out of range for world 4
      "partition:2x2@step1",      // self link
      "heal@step3",                // heal with no partition before it
      "partition:0x1@step5,heal@step5",  // heal not after partition
      "truncate:0>1@step1",        // missing byte count
      "flaky-accept:1",            // missing count
      "warp:0x1@step1",            // unknown kind
  };
  for (const char* spec : bad) {
    Result<WireFaultPlan> plan = ParseWireChaosSpec(spec, 1, 4);
    EXPECT_FALSE(plan.ok()) << "accepted: \"" << spec << "\"";
    if (!plan.ok()) {
      EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(ChaosSpecTest, SameSeedSameCanonicalPlan) {
  const std::string spec = "partition:rand@step1,heal@step4";
  Result<WireFaultPlan> a = ParseWireChaosSpec(spec, 3, 8);
  Result<WireFaultPlan> b = ParseWireChaosSpec(spec, 3, 8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().DebugString(), b.value().DebugString());
}

// --- net_socket audit regressions -----------------------------------------

TEST(NetSocketAuditTest, RecvAllTypesPeerResetMidFrame) {
  SocketPair pair;
  // Half a message, then a hard close.
  const char partial[] = {1, 2, 3};
  ASSERT_TRUE(SendAll(pair.fds[0], partial, sizeof(partial),
                      Deadline::After(1.0))
                  .ok());
  CloseFd(pair.fds[0]);
  pair.fds[0] = -1;
  char buf[8] = {};
  const Status status =
      RecvAll(pair.fds[1], buf, sizeof(buf), Deadline::After(1.0));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("peer closed connection mid-message"),
            std::string::npos);
  EXPECT_NE(status.message().find("3/8"), std::string::npos);
}

TEST(NetSocketAuditTest, SendAllTypesPeerResetMidWrite) {
  SocketPair pair;
  // Close the read side entirely; a large enough write must fail typed
  // (EPIPE surfaces as kInternal, never a SIGPIPE crash — MSG_NOSIGNAL).
  CloseFd(pair.fds[1]);
  pair.fds[1] = -1;
  std::vector<char> big(1 << 20, 'w');
  const Status status = SendAll(pair.fds[0], big.data(), big.size(),
                                Deadline::After(1.0));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(NetSocketAuditTest, RecvFrameRejectsTruncatedPayloadTyped) {
  SocketPair pair;
  // A frame header promising 100 bytes followed by only 10.
  const uint32_t size = 100;
  ASSERT_TRUE(
      SendAll(pair.fds[0], &size, sizeof(size), Deadline::After(1.0)).ok());
  const char partial[10] = {};
  ASSERT_TRUE(SendAll(pair.fds[0], partial, sizeof(partial),
                      Deadline::After(1.0))
                  .ok());
  CloseFd(pair.fds[0]);
  pair.fds[0] = -1;
  Result<std::vector<uint8_t>> frame =
      RecvFrame(pair.fds[1], Deadline::After(1.0));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInternal);
  EXPECT_NE(
      frame.status().message().find("peer closed connection mid-message"),
      std::string::npos);
}

}  // namespace
}  // namespace ddpkit::comm
