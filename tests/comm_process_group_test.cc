#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "comm/sim_world.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::comm {
namespace {

TEST(ProcessGroupTest, AllReduceSumsAcrossRanks) {
  constexpr int kWorld = 4;
  std::vector<double> results(kWorld, 0.0);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({8}, ctx.rank + 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    results[static_cast<size_t>(ctx.rank)] = t.FlatAt(0);
  });
  for (double r : results) {
    EXPECT_DOUBLE_EQ(r, 1.0 + 2.0 + 3.0 + 4.0);
  }
}

TEST(ProcessGroupTest, BroadcastFromEachRoot) {
  constexpr int kWorld = 3;
  for (int root = 0; root < kWorld; ++root) {
    std::vector<double> results(kWorld, -1.0);
    SimWorld::Run(kWorld, [&, root](SimWorld::RankContext& ctx) {
      Tensor t = Tensor::Full({4}, 100.0 * ctx.rank);
      ctx.process_group->Broadcast(t, root)->Wait(ctx.clock);
      results[static_cast<size_t>(ctx.rank)] = t.FlatAt(0);
    });
    for (double r : results) {
      EXPECT_DOUBLE_EQ(r, 100.0 * root);
    }
  }
}

TEST(ProcessGroupTest, AllGatherCollectsRankOrder) {
  constexpr int kWorld = 4;
  std::vector<std::vector<double>> gathered(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor mine = Tensor::Full({2}, ctx.rank * 10.0);
    Tensor all = Tensor::Zeros({2 * kWorld});
    ctx.process_group->AllGather(mine, all)->Wait(ctx.clock);
    for (int64_t i = 0; i < all.numel(); ++i) {
      gathered[static_cast<size_t>(ctx.rank)].push_back(all.FlatAt(i));
    }
  });
  for (int r = 0; r < kWorld; ++r) {
    for (int q = 0; q < kWorld; ++q) {
      EXPECT_DOUBLE_EQ(gathered[static_cast<size_t>(r)][2 * q], q * 10.0);
    }
  }
}

TEST(ProcessGroupTest, BarrierSynchronizes) {
  constexpr int kWorld = 6;
  std::atomic<int> before{0};
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    before.fetch_add(1);
    ctx.process_group->Barrier();
    EXPECT_EQ(before.load(), kWorld);
  });
}

TEST(ProcessGroupTest, AsyncWorkOverlapsAndWaitsLater) {
  constexpr int kWorld = 2;
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor a = Tensor::Full({16}, 1.0);
    Tensor b = Tensor::Full({16}, 2.0);
    WorkHandle wa = ctx.process_group->AllReduce(a);
    WorkHandle wb = ctx.process_group->AllReduce(b);
    // Waiting out of launch order is fine; data is still correct.
    wb->Wait(ctx.clock);
    wa->Wait(ctx.clock);
    EXPECT_DOUBLE_EQ(a.FlatAt(0), 2.0);
    EXPECT_DOUBLE_EQ(b.FlatAt(0), 4.0);
  });
}

TEST(ProcessGroupTest, VirtualClockAdvancesOnWait) {
  constexpr int kWorld = 4;
  std::vector<double> times(kWorld, 0.0);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({1 << 18}, 1.0);  // 1 MB
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    times[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  for (double t : times) {
    EXPECT_GT(t, 0.0);
    // All ranks observe the same completion time (synchronized op from
    // identical arrival clocks).
    EXPECT_DOUBLE_EQ(t, times[0]);
  }
}

TEST(ProcessGroupTest, CommQueueSerializesCollectives) {
  // Two back-to-back AllReduces cost ~2x one: the group's comm queue
  // serializes them (the NCCL-stream behaviour motivating round-robin
  // groups).
  constexpr int kWorld = 2;
  std::vector<double> one(kWorld), two(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({1 << 20}, 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    one[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor a = Tensor::Full({1 << 20}, 1.0);
    Tensor b = Tensor::Full({1 << 20}, 1.0);
    WorkHandle wa = ctx.process_group->AllReduce(a);
    WorkHandle wb = ctx.process_group->AllReduce(b);
    wa->Wait(ctx.clock);
    wb->Wait(ctx.clock);
    two[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  EXPECT_NEAR(two[0] / one[0], 2.0, 0.2);
}

TEST(ProcessGroupTest, GlooFlavorIsSlower) {
  std::vector<double> nccl_time(2), gloo_time(2);
  SimWorldOptions nccl_opts;
  nccl_opts.backend = sim::Backend::kNccl;
  SimWorld::Run(2, nccl_opts, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({1 << 20}, 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    nccl_time[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  SimWorldOptions gloo_opts;
  gloo_opts.backend = sim::Backend::kGloo;
  SimWorld::Run(2, gloo_opts, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({1 << 20}, 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    gloo_time[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  EXPECT_GT(gloo_time[0], nccl_time[0]);
}

TEST(ProcessGroupTest, RingAndNaiveAlgorithmsAgreeNumerically) {
  for (Algorithm algo : {Algorithm::kNaive, Algorithm::kRing,
                         Algorithm::kTree}) {
    std::vector<double> result(3);
    SimWorldOptions options;
    options.algorithm = algo;
    SimWorld::Run(3, options, [&](SimWorld::RankContext& ctx) {
      Tensor t = Tensor::Full({7}, static_cast<double>(ctx.rank));
      ctx.process_group->AllReduce(t)->Wait(ctx.clock);
      result[static_cast<size_t>(ctx.rank)] = t.FlatAt(3);
    });
    EXPECT_DOUBLE_EQ(result[0], 3.0) << AlgorithmName(algo);
  }
}

TEST(ProcessGroupTest, ManySmallOpsStress) {
  constexpr int kWorld = 4;
  constexpr int kOps = 50;
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    std::vector<Tensor> tensors;
    std::vector<WorkHandle> works;
    for (int i = 0; i < kOps; ++i) {
      tensors.push_back(Tensor::Full({3}, 1.0));
      works.push_back(ctx.process_group->AllReduce(tensors.back()));
    }
    for (auto& w : works) w->Wait(ctx.clock);
    for (const Tensor& t : tensors) {
      EXPECT_DOUBLE_EQ(t.FlatAt(0), kWorld);
    }
  });
}

TEST(ProcessGroupTest, RanksAndWorldExposed) {
  SimWorld::Run(3, [&](SimWorld::RankContext& ctx) {
    EXPECT_EQ(ctx.process_group->world(), 3);
    EXPECT_EQ(ctx.process_group->rank(), ctx.rank);
    EXPECT_EQ(ctx.process_group->backend_name(), "nccl");
  });
}

}  // namespace
}  // namespace ddpkit::comm
