// Deterministic-interleaving stress for the reducer's locked hot path:
// four rank threads drive MarkParamReady (autograd hooks, plus the
// unused-parameter proactive path), coordinated RebuildBucketsFromTrace,
// and the AbortSync fault path, while the intra-op pool size sweeps
// 1/2/8 — so bucket copies and the all-reduce reduction fan out across
// worker threads that interleave differently every run. The training
// result must not care: gradients are asserted bit-exact against the
// single-threaded pool configuration for every seed.
//
// Runs under the TSan CI leg (label `stress`), where the same sweep vets
// the Mutex/CondVar discipline the thread-safety annotations promise.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/fault_plan.h"
#include "comm/sim_world.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "core/reducer.h"
#include "nn/zoo.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;
using comm::SimWorldOptions;

constexpr int kWorld = 4;
constexpr int kIterations = 4;
constexpr int64_t kDim = 8;

/// Restores the global pool size after a test that resizes it.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : previous_(ThreadPool::Global().num_threads()) {}
  ~PoolSizeGuard() { ThreadPool::SetNumThreads(previous_); }

 private:
  int previous_;
};

std::vector<float> FlattenGrads(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    Tensor g = p.grad();
    if (!g.defined()) {
      out.insert(out.end(), static_cast<size_t>(p.numel()), 0.0f);
      continue;
    }
    for (int64_t i = 0; i < g.numel(); ++i) {
      out.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }
  return out;
}

struct RunResult {
  /// Per-rank, all iterations' gradients concatenated in order.
  std::vector<std::vector<float>> grads{std::vector<std::vector<float>>(
      static_cast<size_t>(kWorld))};
  std::vector<Status> statuses{std::vector<Status>(
      static_cast<size_t>(kWorld))};
  std::vector<uint64_t> rebuilds{std::vector<uint64_t>(
      static_cast<size_t>(kWorld), 0)};
};

/// One full training episode: kIterations synced backwards through a
/// BranchyNet (find_unused_parameters exercises the proactive
/// MarkParamReady path; the taken branch flips per iteration, identically
/// on every rank), with a coordinated bucket rebuild after every even
/// iteration. Everything is derived from `seed`, so two runs with equal
/// seeds must agree exactly — whatever the pool size.
RunResult RunEpisode(uint64_t seed, int pool_threads) {
  PoolSizeGuard guard;
  ThreadPool::SetNumThreads(pool_threads);

  RunResult result;
  SimWorldOptions world_options;
  world_options.seed = seed;
  SimWorld::Run(kWorld, world_options, [&](SimWorld::RankContext& ctx) {
    const size_t r = static_cast<size_t>(ctx.rank);
    Rng model_rng(seed);
    auto model = std::make_shared<nn::BranchyNet>(kDim, &model_rng);
    DdpOptions options;
    options.find_unused_parameters = true;
    // ~1 layer per bucket: several buckets in flight per backward.
    options.bucket_cap_bytes = kDim * kDim * 4 + kDim * 4;
    DistributedDataParallel ddp(model, ctx.process_group, options);

    Rng data_rng(seed + 100 * static_cast<uint64_t>(ctx.rank));
    for (int iter = 0; iter < kIterations; ++iter) {
      model->set_use_branch_a(iter % 2 == 0);
      model->ZeroGrad();
      Tensor x = Tensor::Randn({2, kDim}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      const std::vector<float> grads = FlattenGrads(*model);
      result.grads[r].insert(result.grads[r].end(), grads.begin(),
                             grads.end());
      if (iter % 2 == 1) {
        // Collective: every rank calls it the same number of times.
        ddp.reducer().RebuildBucketsFromTrace();
      }
    }
    result.statuses[r] = ddp.sync_status();
    result.rebuilds[r] = ddp.reducer().stats().rebuilds;
  });
  return result;
}

/// Gradients (and the whole episode) must be a pure function of the seed:
/// the pool's worker interleavings — chunked bucket copies, parallel
/// all-reduce reductions — may not leak into results.
TEST(ConcurrencyStressTest, GradientsBitExactAcrossPoolSizes) {
  for (const uint64_t seed : {11u, 29u, 71u}) {
    const RunResult reference = RunEpisode(seed, /*pool_threads=*/1);
    for (size_t r = 0; r < kWorld; ++r) {
      ASSERT_TRUE(reference.statuses[r].ok())
          << "seed " << seed << " rank " << r << ": "
          << reference.statuses[r].ToString();
      ASSERT_FALSE(reference.grads[r].empty());
    }
    for (const int threads : {2, 8}) {
      const RunResult run = RunEpisode(seed, threads);
      for (size_t r = 0; r < kWorld; ++r) {
        EXPECT_TRUE(run.statuses[r].ok())
            << "seed " << seed << " threads " << threads << " rank " << r;
        EXPECT_EQ(run.rebuilds[r], reference.rebuilds[r])
            << "seed " << seed << " threads " << threads << " rank " << r;
        // Bit-exact: element-wise float equality, no tolerance.
        EXPECT_EQ(run.grads[r], reference.grads[r])
            << "seed " << seed << " threads " << threads << " rank " << r;
      }
    }
  }
}

/// Same sweep through the abort path: rank 3 crashes mid-episode, every
/// survivor must land on a typed error (no deadlock, no abort) at every
/// pool size, and the error must keep naming the same failure kind.
TEST(ConcurrencyStressTest, AbortSyncSurvivesPoolSweep) {
  auto plan = std::make_shared<comm::FaultPlan>();
  // Mlp({kDim, kDim}) has 2 parameters that fit one bucket: DDP's ctor
  // state broadcasts occupy seqs 0-1 and each synced backward is one
  // collective, so seq 4 is the third iteration's gradient bucket.
  plan->CrashRank(3, /*at_seq=*/4);

  for (const int threads : {1, 2, 8}) {
    PoolSizeGuard guard;
    ThreadPool::SetNumThreads(threads);

    std::vector<Status> statuses(kWorld);
    SimWorldOptions world_options;
    world_options.seed = 7;
    world_options.fault_plan = plan;
    world_options.collective_timeout_seconds = 5.0;
    SimWorld::Run(kWorld, world_options, [&](SimWorld::RankContext& ctx) {
      const size_t r = static_cast<size_t>(ctx.rank);
      Rng model_rng(7);
      auto model = std::make_shared<nn::Mlp>(
          std::vector<int64_t>{kDim, kDim}, &model_rng);
      DdpOptions options;
      options.bucket_cap_bytes = kDim * kDim * 4 + kDim * 4;
      options.collective_timeout_seconds = 5.0;
      DistributedDataParallel ddp(model, ctx.process_group, options);

      Rng data_rng(7 + 100 * static_cast<uint64_t>(ctx.rank));
      for (int iter = 0; iter < kIterations; ++iter) {
        model->ZeroGrad();
        Tensor x = Tensor::Randn({2, kDim}, &data_rng);
        autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      }
      statuses[r] = ddp.sync_status();
    });

    // Every survivor observed the crash as a typed error — no deadlock,
    // no abort, at any pool size. (Rank 3, the crashed one, is modeled as
    // absent; its own status is not part of the contract.)
    for (int r = 0; r < kWorld - 1; ++r) {
      EXPECT_FALSE(statuses[static_cast<size_t>(r)].ok())
          << "threads " << threads << " rank " << r
          << ": survivor never observed the crash";
    }
  }
}

}  // namespace
}  // namespace ddpkit::core
