#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/distributed_sampler.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::data {
namespace {

TEST(SyntheticRegressionTest, ShapesAndDeterminism) {
  SyntheticRegression ds(100, 5, 2, 42);
  auto batch = ds.Get({0, 7, 99});
  EXPECT_EQ(batch.inputs.size(0), 3);
  EXPECT_EQ(batch.inputs.size(1), 5);
  EXPECT_EQ(batch.targets.size(1), 2);

  SyntheticRegression ds2(100, 5, 2, 42);
  auto batch2 = ds2.Get({0, 7, 99});
  EXPECT_EQ(kernels::MaxAbsDiff(batch.inputs, batch2.inputs), 0.0);
  EXPECT_EQ(kernels::MaxAbsDiff(batch.targets, batch2.targets), 0.0);
}

TEST(SyntheticRegressionTest, TargetsFollowLinearModel) {
  // Targets are x @ W* + small noise: same x index -> same target.
  SyntheticRegression ds(10, 4, 1, 7);
  auto a = ds.Get({3});
  auto b = ds.Get({3});
  EXPECT_EQ(kernels::MaxAbsDiff(a.targets, b.targets), 0.0);
}

TEST(SyntheticMnistTest, ShapesAndLabelRange) {
  SyntheticMnist ds(50, 1);
  auto batch = ds.Get({0, 1, 2, 3});
  EXPECT_EQ(batch.inputs.shape(),
            (std::vector<int64_t>{4, 1, 28, 28}));
  EXPECT_EQ(batch.targets.dtype(), DType::kInt64);
  for (int64_t i = 0; i < 4; ++i) {
    const int64_t label = batch.targets.data<int64_t>()[i];
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(SyntheticMnistTest, SameIndexSameExampleEverywhere) {
  // Critical for DDP equivalence: any rank asking for example k gets
  // exactly the same pixels and label.
  SyntheticMnist ds_a(100, 9);
  SyntheticMnist ds_b(100, 9);
  auto a = ds_a.Get({42});
  auto b = ds_b.Get({42});
  EXPECT_EQ(kernels::MaxAbsDiff(a.inputs, b.inputs), 0.0);
  EXPECT_EQ(a.targets.data<int64_t>()[0], b.targets.data<int64_t>()[0]);
}

TEST(SyntheticMnistTest, ClassesAreSeparable) {
  // Same-class examples must be closer than cross-class examples on
  // average, otherwise the Fig 11 convergence runs would be meaningless.
  SyntheticMnist ds(200, 3, /*noise_stddev=*/0.5);
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < 200; ++i) idx.push_back(i);
  auto batch = ds.Get(idx);
  const int64_t dim = 28 * 28;
  const float* px = batch.inputs.data<float>();
  const int64_t* labels = batch.targets.data<int64_t>();
  double same_dist = 0.0, cross_dist = 0.0;
  int same_n = 0, cross_n = 0;
  for (int64_t i = 0; i < 60; ++i) {
    for (int64_t j = i + 1; j < 60; ++j) {
      double d = 0.0;
      for (int64_t k = 0; k < dim; ++k) {
        const double diff = px[i * dim + k] - px[j * dim + k];
        d += diff * diff;
      }
      if (labels[i] == labels[j]) {
        same_dist += d;
        ++same_n;
      } else {
        cross_dist += d;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_LT(same_dist / same_n, 0.7 * (cross_dist / cross_n));
}

TEST(SyntheticTokensTest, DeterministicLabelsInRange) {
  SyntheticTokens ds(40, 6, 32, 4, 5);
  auto batch = ds.Get({0, 10, 39});
  EXPECT_EQ(batch.inputs.shape(), (std::vector<int64_t>{3, 6}));
  for (int64_t i = 0; i < 3; ++i) {
    const int64_t label = batch.targets.data<int64_t>()[i];
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(DistributedSamplerTest, RanksPartitionTheEpoch) {
  constexpr int kWorld = 4;
  const int64_t n = 103;  // not divisible by world
  std::set<int64_t> all_indices;
  int64_t total = 0;
  for (int r = 0; r < kWorld; ++r) {
    DistributedSampler sampler(n, kWorld, r, 1);
    auto mine = sampler.EpochIndices(0);
    EXPECT_EQ(static_cast<int64_t>(mine.size()),
              sampler.samples_per_rank());
    total += static_cast<int64_t>(mine.size());
    for (int64_t idx : mine) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, n);
      all_indices.insert(idx);
    }
  }
  // Padded partition: every example covered, total = per_rank * world.
  EXPECT_EQ(all_indices.size(), static_cast<size_t>(n));
  EXPECT_EQ(total, ((n + kWorld - 1) / kWorld) * kWorld);
}

TEST(DistributedSamplerTest, ShuffleDiffersByEpochButNotByRankView) {
  DistributedSampler s0(50, 2, 0, 7);
  auto epoch0 = s0.EpochIndices(0);
  auto epoch1 = s0.EpochIndices(1);
  EXPECT_NE(epoch0, epoch1);
  // Same epoch re-queried: identical (pure function).
  EXPECT_EQ(s0.EpochIndices(0), epoch0);
}

TEST(DistributedSamplerTest, NoShuffleIsSequentialStriding) {
  DistributedSampler sampler(8, 2, 1, 0, /*shuffle=*/false);
  auto mine = sampler.EpochIndices(0);
  EXPECT_EQ(mine, (std::vector<int64_t>{1, 3, 5, 7}));
}

TEST(DistributedSamplerTest, WorldOfOneSeesEverything) {
  DistributedSampler sampler(10, 1, 0, 3, /*shuffle=*/false);
  auto mine = sampler.EpochIndices(0);
  EXPECT_EQ(mine.size(), 10u);
  std::set<int64_t> unique(mine.begin(), mine.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace ddpkit::data
