#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/comm_cost_model.h"
#include "sim/compute_cost_model.h"
#include "sim/jitter.h"

namespace ddpkit::sim {
namespace {

// ---- Communication cost models ------------------------------------------------

TEST(NcclCostTest, WorldOfOneIsFree) {
  NcclCostModel model{Topology()};
  EXPECT_DOUBLE_EQ(model.AllReduceSeconds(1 << 20, 1, 1), 0.0);
}

TEST(NcclCostTest, MonotonicInBytes) {
  NcclCostModel model{Topology()};
  double prev = 0.0;
  for (size_t bytes = 1024; bytes <= (64u << 20); bytes *= 4) {
    const double t = model.AllReduceSeconds(bytes, 8, 1);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(NcclCostTest, LatencyDominatedSmallBandwidthDominatedLarge) {
  // Fig 2(a)'s core shape: splitting a fixed volume into many small ops is
  // far slower than a few large ops.
  NcclCostModel model{Topology()};
  const size_t total = 240u << 20;  // 60M params
  const double many_small =
      static_cast<double>(total / 4096) * model.AllReduceSeconds(4096, 2, 1);
  const double few_large =
      3.0 * model.AllReduceSeconds(total / 3, 2, 1);
  EXPECT_GT(many_small, 20.0 * few_large);
}

TEST(NcclCostTest, FasterThanGlooEverywhere) {
  Topology topo;
  NcclCostModel nccl{topo};
  GlooCostModel gloo{topo};
  for (size_t bytes : {size_t{4096}, size_t{1} << 20, size_t{100} << 20}) {
    for (int world : {2, 8, 32}) {
      EXPECT_LT(nccl.AllReduceSeconds(bytes, world, 1),
                gloo.AllReduceSeconds(bytes, world, 1))
          << bytes << " " << world;
    }
  }
}

TEST(NcclCostTest, ConcurrentGroupsShareBandwidth) {
  NcclCostModel model{Topology()};
  const size_t bytes = 100u << 20;
  const double alone = model.AllReduceSeconds(bytes, 8, 1);
  const double shared = model.AllReduceSeconds(bytes, 8, 4);
  EXPECT_GT(shared, alone);  // each op is slower...
  // ...but 4 concurrent queues still beat one serialized queue because a
  // single group cannot saturate the link (per_group_bw_fraction).
  EXPECT_LT(shared, 4.0 * alone);
}

TEST(NcclCostTest, DegradedLinksAboveThreshold) {
  NcclCostModel::Options options;
  options.degraded_above_world = 128;
  options.degraded_net_factor = 0.5;
  NcclCostModel model{Topology(), options};
  const size_t bytes = 100u << 20;
  const double at_128 = model.AllReduceSeconds(bytes, 128, 1);
  const double at_256 = model.AllReduceSeconds(bytes, 256, 1);
  // The jump should exceed the natural (p-1)/p growth by a wide margin.
  EXPECT_GT(at_256, 1.5 * at_128);
}

TEST(GlooCostTest, SaturatesNearHalfMegabyte) {
  // Fig 2(b): total time for a fixed volume stops improving once the
  // per-op tensor exceeds ~500K parameters.
  GlooCostModel model{Topology()};
  const size_t total = 240u << 20;
  auto total_time = [&](size_t per_op) {
    return static_cast<double>((total + per_op - 1) / per_op) *
           model.AllReduceSeconds(per_op, 2, 1);
  };
  const double at_4k = total_time(4 << 10);
  const double at_2m = total_time(2 << 20);    // ~500K params
  const double at_32m = total_time(32 << 20);  // ~8M params
  EXPECT_GT(at_4k, 5.0 * at_2m);               // strong gain up to saturation
  EXPECT_NEAR(at_32m / at_2m, 1.0, 0.5);       // flat beyond it
}

TEST(GlooCostTest, DegradesWithWorldSize) {
  GlooCostModel model{Topology()};
  const size_t bytes = 100u << 20;
  EXPECT_GT(model.AllReduceSeconds(bytes, 256, 1),
            2.0 * model.AllReduceSeconds(bytes, 16, 1));
}

TEST(CostModelTest, BroadcastCheaperThanAllReduce) {
  NcclCostModel model{Topology()};
  const size_t bytes = 32u << 20;
  EXPECT_LT(model.BroadcastSeconds(bytes, 32),
            model.AllReduceSeconds(bytes, 32, 1));
}

TEST(CostModelTest, BarrierIsCheap) {
  NcclCostModel model{Topology()};
  EXPECT_LT(model.BarrierSeconds(32), 1e-3);
  EXPECT_GT(model.BarrierSeconds(32), 0.0);
}

TEST(CostModelTest, FactoryDispatch) {
  Topology topo;
  EXPECT_EQ(MakeCostModel(Backend::kNccl, topo)->backend(), Backend::kNccl);
  EXPECT_EQ(MakeCostModel(Backend::kGloo, topo)->backend(), Backend::kGloo);
}

// ---- Compute cost model -----------------------------------------------------------

TEST(ComputeCostTest, GpuProfileMatchesFig2c) {
  // 60.2M-parameter ResNet152 backward ~ 250 ms on the GPU profile.
  ComputeCostModel model{ComputeCostModel::GpuProfile()};
  const double t = model.BackwardSeconds(60192808, 465);
  EXPECT_GT(t, 0.20);
  EXPECT_LT(t, 0.30);
}

TEST(ComputeCostTest, CpuProfileMatchesFig2d) {
  ComputeCostModel model{ComputeCostModel::CpuProfile()};
  const double t = model.BackwardSeconds(60192808, 465);
  EXPECT_GT(t, 5.0);
  EXPECT_LT(t, 7.0);
}

TEST(ComputeCostTest, ForwardIsFractionOfBackward) {
  ComputeCostModel model{ComputeCostModel::GpuProfile()};
  EXPECT_NEAR(model.ForwardSeconds(1000000, 10) /
                  model.BackwardSeconds(1000000, 10),
              model.options().forward_fraction, 1e-9);
}

TEST(ComputeCostTest, ReadyTimesAreMonotonic) {
  ComputeCostModel model{ComputeCostModel::GpuProfile()};
  std::vector<int64_t> numels = {100, 5000, 20, 300000, 1};
  auto times = model.GradReadyTimes(numels, nullptr);
  ASSERT_EQ(times.size(), numels.size());
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
  EXPECT_NEAR(times.back(), model.BackwardSeconds(305121, 5), 1e-9);
}

TEST(ComputeCostTest, JitterWidensButStaysClose) {
  ComputeCostModel model{ComputeCostModel::GpuProfile()};
  std::vector<int64_t> numels(50, 100000);
  Rng rng(3);
  auto jittered = model.GradReadyTimes(numels, &rng);
  auto clean = model.GradReadyTimes(numels, nullptr);
  EXPECT_NE(jittered.back(), clean.back());
  EXPECT_NEAR(jittered.back() / clean.back(), 1.0, 0.15);
}

// ---- Straggler model ----------------------------------------------------------------

TEST(StragglerTest, SampleNearOneForSmallSigma) {
  StragglerModel model{StragglerModel::Options{.sigma = 0.02}};
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double f = model.Sample(&rng);
    EXPECT_GT(f, 0.8);
    EXPECT_LT(f, 1.25);
  }
}

TEST(StragglerTest, MaxOverWorldGrowsWithWorld) {
  StragglerModel model{StragglerModel::Options{.sigma = 0.05}};
  Rng rng(5);
  double sum2 = 0.0, sum64 = 0.0;
  for (int i = 0; i < 200; ++i) sum2 += model.SampleMaxOverWorld(&rng, 2);
  for (int i = 0; i < 200; ++i) sum64 += model.SampleMaxOverWorld(&rng, 64);
  EXPECT_GT(sum64 / 200.0, sum2 / 200.0);
}

TEST(StragglerTest, ZeroSigmaIsDeterministicOne) {
  StragglerModel model{StragglerModel::Options{.sigma = 0.0}};
  Rng rng(6);
  EXPECT_DOUBLE_EQ(model.Sample(&rng), 1.0);
}

}  // namespace
}  // namespace ddpkit::sim
