#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::optim {
namespace {

Tensor ParamWithGrad(double value, double grad) {
  Tensor p = Tensor::Full({2}, value);
  p.set_requires_grad(true);
  p.set_grad(Tensor::Full({2}, grad));
  return p;
}

TEST(SgdTest, PlainStepHandComputed) {
  Tensor p = ParamWithGrad(1.0, 0.5);
  Sgd sgd({p}, Sgd::Options{.lr = 0.1});
  sgd.Step();
  EXPECT_NEAR(p.FlatAt(0), 1.0 - 0.1 * 0.5, 1e-6);
}

TEST(SgdTest, MomentumAccumulates) {
  Tensor p = ParamWithGrad(0.0, 1.0);
  Sgd sgd({p}, Sgd::Options{.lr = 0.1, .momentum = 0.9});
  sgd.Step();  // buf = 1.0, p = -0.1
  EXPECT_NEAR(p.FlatAt(0), -0.1, 1e-6);
  p.set_grad(Tensor::Full({2}, 1.0));
  sgd.Step();  // buf = 0.9 + 1 = 1.9, p = -0.1 - 0.19 = -0.29
  EXPECT_NEAR(p.FlatAt(0), -0.29, 1e-6);
}

TEST(SgdTest, WeightDecayAddsToGradient) {
  Tensor p = ParamWithGrad(2.0, 0.0);
  Sgd sgd({p}, Sgd::Options{.lr = 0.1, .weight_decay = 0.5});
  sgd.Step();  // effective grad = 0 + 0.5*2 = 1 -> p = 2 - 0.1
  EXPECT_NEAR(p.FlatAt(0), 1.9, 1e-6);
}

TEST(SgdTest, SkipsParamsWithUndefinedGrad) {
  Tensor p = Tensor::Full({2}, 1.0);
  p.set_requires_grad(true);
  Sgd sgd({p}, Sgd::Options{.lr = 0.1});
  sgd.Step();  // no grad -> unchanged
  EXPECT_DOUBLE_EQ(p.FlatAt(0), 1.0);
}

TEST(SgdTest, UsedMaskFreezesMomentumOfSkippedParams) {
  // The §3.2.3 regression scenario: with gradient-absence information the
  // optimizer must leave momentum untouched for unused parameters.
  Tensor used = ParamWithGrad(0.0, 1.0);
  Tensor unused = ParamWithGrad(0.0, 1.0);
  Sgd sgd({used, unused}, Sgd::Options{.lr = 0.1, .momentum = 0.9});
  sgd.Step({1, 0});
  EXPECT_NEAR(used.FlatAt(0), -0.1, 1e-6);
  EXPECT_DOUBLE_EQ(unused.FlatAt(0), 0.0);  // untouched
  // Next step with both used: unused momentum starts fresh (buf = grad),
  // not compounded from the skipped step.
  used.set_grad(Tensor::Full({2}, 1.0));
  unused.set_grad(Tensor::Full({2}, 1.0));
  sgd.Step({1, 1});
  EXPECT_NEAR(unused.FlatAt(0), -0.1, 1e-6);
}

TEST(SgdTest, ZeroGradClearsGradients) {
  Tensor p = ParamWithGrad(1.0, 5.0);
  Sgd sgd({p}, Sgd::Options{});
  sgd.ZeroGrad();
  EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 0.0);
}

TEST(AdamTest, FirstStepMovesByLr) {
  // With bias correction, Adam's first update is ~lr * sign(grad).
  Tensor p = ParamWithGrad(1.0, 0.3);
  Adam adam({p}, Adam::Options{.lr = 0.01});
  adam.Step();
  EXPECT_NEAR(p.FlatAt(0), 1.0 - 0.01, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (p - 3)^2 with autograd-produced gradients.
  Rng rng(1);
  Tensor p = Tensor::Zeros({1});
  p.set_requires_grad(true);
  Adam adam({p}, Adam::Options{.lr = 0.1});
  Tensor target = Tensor::Full({1}, 3.0);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    Tensor loss = ops::MSELoss(p, target);
    autograd::Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(p.FlatAt(0), 3.0, 0.05);
}

TEST(AdamTest, UsedMaskFreezesMoments) {
  Tensor a = ParamWithGrad(0.0, 1.0);
  Tensor b = ParamWithGrad(0.0, 1.0);
  Adam adam({a, b}, Adam::Options{.lr = 0.01});
  adam.Step({1, 0});
  EXPECT_NE(a.FlatAt(0), 0.0);
  EXPECT_DOUBLE_EQ(b.FlatAt(0), 0.0);
}

TEST(SgdTest, IdenticalSequencesStayIdentical) {
  // Two replicas fed identical gradients stay bit-identical — the DDP
  // correctness contract (§3).
  Tensor p1 = Tensor::Full({4}, 1.0);
  Tensor p2 = Tensor::Full({4}, 1.0);
  p1.set_requires_grad(true);
  p2.set_requires_grad(true);
  Sgd opt1({p1}, Sgd::Options{.lr = 0.05, .momentum = 0.9});
  Sgd opt2({p2}, Sgd::Options{.lr = 0.05, .momentum = 0.9});
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    Tensor g = Tensor::Randn({4}, &rng);
    p1.set_grad(g.Clone());
    p2.set_grad(g.Clone());
    opt1.Step();
    opt2.Step();
    for (int64_t j = 0; j < 4; ++j) {
      ASSERT_EQ(p1.FlatAt(j), p2.FlatAt(j)) << "step " << i;
    }
  }
}

}  // namespace
}  // namespace ddpkit::optim
