#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

std::vector<float> FlattenGrads(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      out.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }
  return out;
}

TEST(NoSyncTest, SkipsCommunicationInsideGuard) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(1);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    const uint64_t before = ddp.reducer().stats().allreduces_launched;
    {
      auto guard = ddp.no_sync();
      Tensor x = Tensor::Full({2, 4}, 1.0);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    }
    EXPECT_EQ(ddp.reducer().stats().allreduces_launched, before);
    EXPECT_FALSE(ddp.reducer().backward_finalized());
  });
}

TEST(NoSyncTest, GradientsAccumulateLocally) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(2);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{3, 1}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    Tensor x = Tensor::Full({1, 3}, 1.0);

    auto one_backward = [&] {
      autograd::Backward(ops::SumAll(ddp.Forward(x)));
    };
    {
      auto guard = ddp.no_sync();
      one_backward();
    }
    std::vector<float> after_one = FlattenGrads(*model);
    {
      auto guard = ddp.no_sync();
      one_backward();
    }
    std::vector<float> after_two = FlattenGrads(*model);
    for (size_t i = 0; i < after_one.size(); ++i) {
      EXPECT_NEAR(after_two[i], 2.0f * after_one[i], 1e-5);
    }
  });
}

TEST(NoSyncTest, FirstSyncedBackwardReducesAccumulatedGrads) {
  // Paper §3.2.4: the accumulated micro-batch gradients must equal the
  // gradient of one big batch processed in one shot.
  constexpr int kWorld = 2;
  const int64_t micro = 2;

  // Global data: 2 micro-batches per rank, 2 ranks = 8 examples total.
  Rng data_rng(3);
  Tensor all_x = Tensor::Randn({8, 5}, &data_rng);
  Tensor all_y = Tensor::Randn({8, 2}, &data_rng);

  // Reference: local model over the full 8-example batch.
  Rng model_rng(7);
  nn::Mlp local({5, 2}, &model_rng);
  autograd::Backward(nn::MSELoss()(local.Forward(all_x), all_y));
  std::vector<float> local_grads = FlattenGrads(local);

  std::vector<std::vector<float>> ddp_grads(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(7);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{5, 2}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    nn::MSELoss mse;
    // Rank r owns examples [4r, 4r+4): micro-batch 1 = first half,
    // micro-batch 2 = second half.
    Tensor x1 = all_x.Narrow(0, ctx.rank * 4, micro).Clone();
    Tensor y1 = all_y.Narrow(0, ctx.rank * 4, micro).Clone();
    Tensor x2 = all_x.Narrow(0, ctx.rank * 4 + micro, micro).Clone();
    Tensor y2 = all_y.Narrow(0, ctx.rank * 4 + micro, micro).Clone();
    {
      auto guard = ddp.no_sync();
      autograd::Backward(mse(ddp.Forward(x1), y1));
    }
    // Synced backward: reduces the sum of both micro-batch gradients.
    autograd::Backward(mse(ddp.Forward(x2), y2));
    EXPECT_TRUE(ddp.reducer().backward_finalized());
    ddp_grads[static_cast<size_t>(ctx.rank)] = FlattenGrads(*model);
  });

  // Accumulated-and-averaged micro-batch gradients = 2x the big-batch mean
  // gradient (two accumulated means per rank vs one mean over all), so
  // compare after halving.
  for (int r = 0; r < kWorld; ++r) {
    ASSERT_EQ(ddp_grads[static_cast<size_t>(r)].size(), local_grads.size());
    for (size_t i = 0; i < local_grads.size(); ++i) {
      EXPECT_NEAR(ddp_grads[static_cast<size_t>(r)][i] / 2.0f,
                  local_grads[i], 5e-5)
          << "rank " << r << " element " << i;
    }
  }
}

TEST(NoSyncTest, UsageBitmapAccumulatesAcrossNoSyncIterations) {
  // A branch used only inside the no_sync window must still be flagged as
  // used when the next synced backward reduces (§3.2.4).
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(4);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    DdpOptions options;
    options.find_unused_parameters = true;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    Tensor x = Tensor::Full({2, 4}, 1.0);
    {
      auto guard = ddp.no_sync();
      model->set_use_branch_a(true);  // branch A used (unsynced)
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    }
    model->set_use_branch_a(false);  // branch B used (synced)
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));

    const auto& mask = ddp.globally_used_mask();
    const auto named = model->named_parameters();
    for (size_t i = 0; i < named.size(); ++i) {
      // Both branches participated since the last sync.
      EXPECT_EQ(mask[i], 1) << named[i].first;
    }
  });
}

TEST(NoSyncTest, TrainingWithAccumulationStaysConsistent) {
  constexpr int kWorld = 2;
  std::vector<std::vector<float>> params(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(5);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{6, 3}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.02});
    for (int step = 0; step < 3; ++step) {
      opt.ZeroGrad();
      Rng data_rng(step * 10 + ctx.rank);
      {
        auto guard = ddp.no_sync();
        for (int micro = 0; micro < 2; ++micro) {
          Tensor x = Tensor::Randn({2, 6}, &data_rng);
          autograd::Backward(ops::MeanAll(ddp.Forward(x)));
        }
      }
      Tensor x = Tensor::Randn({2, 6}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      opt.Step();
    }
    std::vector<float> flat;
    for (const Tensor& p : model->parameters()) {
      for (int64_t i = 0; i < p.numel(); ++i) {
        flat.push_back(static_cast<float>(p.FlatAt(i)));
      }
    }
    params[static_cast<size_t>(ctx.rank)] = std::move(flat);
  });
  EXPECT_EQ(params[0], params[1]);  // replicas never diverge
}

}  // namespace
}  // namespace ddpkit::core
