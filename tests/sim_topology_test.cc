#include <gtest/gtest.h>

#include "sim/topology.h"
#include "sim/virtual_clock.h"

namespace ddpkit::sim {
namespace {

TEST(VirtualClockTest, AdvanceAndAdvanceTo) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  clock.Advance(1.5);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.Advance(-1.0);  // negative durations ignored
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.AdvanceTo(1.0);  // never backwards
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.AdvanceTo(2.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 2.0);
}

TEST(TopologyTest, SelfLink) {
  Topology topo;
  EXPECT_EQ(topo.Link(3, 3), LinkType::kSelf);
}

TEST(TopologyTest, CubeMeshIsSymmetric) {
  Topology topo;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(topo.Link(i, j), topo.Link(j, i)) << i << "," << j;
    }
  }
}

TEST(TopologyTest, KnownCubeMeshEntries) {
  // Spot-checks against the DGX-1V hybrid cube-mesh (the paper's Fig 5).
  Topology topo;
  EXPECT_EQ(topo.Link(0, 3), LinkType::kNv2);
  EXPECT_EQ(topo.Link(0, 4), LinkType::kNv2);
  EXPECT_EQ(topo.Link(0, 1), LinkType::kNv1);
  EXPECT_EQ(topo.Link(0, 5), LinkType::kNode);
  EXPECT_EQ(topo.Link(4, 7), LinkType::kNv2);
}

TEST(TopologyTest, CrossHostIsNet) {
  Topology topo;
  EXPECT_EQ(topo.Link(0, 8), LinkType::kNet);
  EXPECT_EQ(topo.Link(7, 9), LinkType::kNet);
  EXPECT_EQ(topo.Link(8, 9), topo.Link(0, 1));  // same pattern per host
}

TEST(TopologyTest, BandwidthOrdering) {
  Topology topo;
  EXPECT_GT(topo.Bandwidth(LinkType::kNv2), topo.Bandwidth(LinkType::kNv1));
  EXPECT_GT(topo.Bandwidth(LinkType::kNv1), topo.Bandwidth(LinkType::kNet));
  EXPECT_GT(topo.Latency(LinkType::kNet), topo.Latency(LinkType::kNv1));
}

TEST(TopologyTest, RingBandwidthSingleHostVsMultiHost) {
  Topology topo;
  const double intra = topo.RingBandwidth(8);
  const double inter = topo.RingBandwidth(16);
  EXPECT_GT(intra, inter);  // crossing the NIC throttles the ring
  EXPECT_DOUBLE_EQ(inter, topo.Bandwidth(LinkType::kNet));
}

TEST(TopologyTest, SingleHostPredicate) {
  Topology topo;
  EXPECT_TRUE(topo.SingleHost(8));
  EXPECT_FALSE(topo.SingleHost(9));
}

TEST(TopologyTest, WorldOfOneIsFree) {
  Topology topo;
  EXPECT_GT(topo.RingBandwidth(1), 1e11);
  EXPECT_DOUBLE_EQ(topo.RingHopLatency(1), 0.0);
}

TEST(TopologyTest, MatrixStringMentionsAllLinkClasses) {
  Topology topo;
  const std::string matrix = topo.MatrixString();
  EXPECT_NE(matrix.find("NV2"), std::string::npos);
  EXPECT_NE(matrix.find("NV1"), std::string::npos);
  EXPECT_NE(matrix.find("NODE"), std::string::npos);
  EXPECT_NE(matrix.find("GPU7"), std::string::npos);
}

}  // namespace
}  // namespace ddpkit::sim
