// Regression tests for the cross-rank bucket-rebuild protocol: rebuilds
// must converge every rank onto rank 0's traced ready order (broadcast
// through the Store), survive faults by draining cleanly, and treat every
// Store payload as untrusted bytes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/fault_plan.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "core/reducer.h"
#include "nn/zoo.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;
using comm::SimWorldOptions;

std::vector<float> FlattenGrads(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    Tensor g = p.grad();
    if (!g.defined()) {
      // A branch the iteration never took: semantically a zero gradient.
      out.insert(out.end(), static_cast<size_t>(p.numel()), 0.0f);
      continue;
    }
    for (int64_t i = 0; i < g.numel(); ++i) {
      out.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }
  return out;
}

double MaxDiff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double mx = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    mx = std::max(mx, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return mx;
}

/// The headline desync scenario (§6.2.1): four ranks observe DIFFERENT
/// gradient-ready orders (divergent control flow puts a different branch's
/// parameters first on rank 0 than everywhere else), then all rebuild.
/// Every rank must converge onto rank 0's traced order — rebuilding from
/// rank-local traces would give rank 0 a different bucket layout than
/// ranks 1-3, and every subsequent in-order AllReduce would silently mix
/// unrelated parameters.
TEST(RebuildSyncTest, DivergentReadyOrdersConvergeToRankZeroLayout) {
  constexpr int kWorld = 4;
  const int64_t dim = 8;
  const int64_t per_rank = 2;

  Rng data_rng(71);
  Tensor all_x = Tensor::Randn({per_rank * kWorld, dim}, &data_rng);

  // Single-process reference for the post-rebuild iteration: same seed,
  // same branch, full batch.
  Rng ref_rng(70);
  nn::BranchyNet reference(dim, &ref_rng);
  reference.set_use_branch_a(true);
  reference.ZeroGrad();
  autograd::Backward(ops::MeanAll(reference.Forward(all_x)));
  const std::vector<float> reference_grads = FlattenGrads(reference);

  std::vector<std::vector<size_t>> traced_orders(kWorld);
  std::vector<std::vector<std::vector<size_t>>> layouts(kWorld);
  // Not vector<bool>: rank threads write their own slot concurrently, and
  // the bit-packed specialization would make neighbouring slots share a
  // word (a data race TSan rightly flags).
  std::vector<uint8_t> changed(kWorld, 0);
  std::vector<Status> statuses(kWorld);
  std::vector<std::vector<float>> grads(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    const size_t r = static_cast<size_t>(ctx.rank);
    Rng rng(70);
    auto model = std::make_shared<nn::BranchyNet>(dim, &rng);
    DdpOptions options;
    options.find_unused_parameters = true;
    options.bucket_cap_bytes = dim * dim * 4 + dim * 4;  // ~1 layer/bucket
    DistributedDataParallel ddp(model, ctx.process_group, options);

    // Trace iteration: rank 0 takes branch A, everyone else branch B, so
    // the unused-parameter marking (and hence the ready order) diverges
    // deterministically across ranks.
    model->set_use_branch_a(ctx.rank == 0);
    model->ZeroGrad();
    autograd::Backward(ops::MeanAll(ddp.Forward(Tensor::Full({2, dim}, 0.5))));
    traced_orders[r] = ddp.reducer().last_ready_order();

    changed[r] = ddp.reducer().RebuildBucketsFromTrace() ? 1 : 0;
    layouts[r] = ddp.reducer().assignment().buckets;
    statuses[r] = ddp.sync_status();

    // Post-rebuild iteration: identical control flow, rank-sharded batch.
    model->set_use_branch_a(true);
    model->ZeroGrad();
    Tensor x = all_x.Narrow(0, ctx.rank * per_rank, per_rank).Clone();
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    grads[r] = FlattenGrads(*model);
  });

  // The traces genuinely diverged (this is the scenario that used to
  // desynchronize layouts)...
  EXPECT_NE(traced_orders[0], traced_orders[1]);
  ASSERT_FALSE(layouts[0].empty());
  for (int r = 0; r < kWorld; ++r) {
    // ...yet every rank adopted rank 0's broadcast order: identical layout,
    // identical rebuild outcome, and the post-rebuild validation handshake
    // passed everywhere.
    EXPECT_EQ(layouts[static_cast<size_t>(r)], layouts[0]) << "rank " << r;
    EXPECT_EQ(changed[static_cast<size_t>(r)], changed[0]) << "rank " << r;
    EXPECT_TRUE(statuses[static_cast<size_t>(r)].ok())
        << "rank " << r << ": " << statuses[static_cast<size_t>(r)].ToString();
    // Gradients after the rebuild: bit-exact across replicas and matching
    // single-process training on the full batch.
    EXPECT_EQ(grads[static_cast<size_t>(r)], grads[0]) << "rank " << r;
    EXPECT_LT(MaxDiff(grads[static_cast<size_t>(r)], reference_grads), 2e-5)
        << "rank " << r;
  }
  // The rebuild actually moved parameters (rank 0's trace puts the unused
  // branch B first, unlike the registration-order default).
  EXPECT_TRUE(changed[0]);
}

TEST(RebuildSyncTest, LoneRebuilderSurfacesTypedTimeoutNotCorruption) {
  // Only rank 1 calls RebuildBucketsFromTrace: rank 0 never broadcasts an
  // order for that epoch, so rank 1 must get a bounded, typed error — the
  // alternative (rebuilding from its local trace) is exactly the silent
  // desync this protocol exists to prevent.
  std::vector<Status> statuses(2);
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(21);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    ReducerOptions options;
    options.validation_timeout_seconds = 0.3;
    Reducer reducer(model->parameters(), ctx.process_group, options);
    ASSERT_TRUE(reducer.sync_status().ok())
        << reducer.sync_status().ToString();
    if (ctx.rank == 1) {
      EXPECT_FALSE(reducer.RebuildBucketsFromTrace());
      statuses[1] = reducer.sync_status();
      // Sync is disabled; later rebuilds are refused outright.
      EXPECT_FALSE(reducer.RebuildBucketsFromTrace());
    }
  });
  EXPECT_EQ(statuses[1].code(), StatusCode::kTimedOut)
      << statuses[1].ToString();
  EXPECT_NE(statuses[1].message().find(
                "did every rank call RebuildBucketsFromTrace"),
            std::string::npos)
      << statuses[1].message();
}

TEST(RebuildSyncTest, MalformedBroadcastOrderIsTypedNotFatal) {
  // Rank 0 poisons the epoch-0 rebuild key instead of calling the rebuild:
  // "2:0:0" parses numerically but is not a permutation. Rank 1 must fold
  // it into a FailedPrecondition instead of crashing or adopting it.
  std::vector<Status> statuses(2);
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(22);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    Reducer reducer(model->parameters(), ctx.process_group, ReducerOptions());
    ASSERT_TRUE(reducer.sync_status().ok());
    if (ctx.rank == 0) {
      ctx.store->Set("reducer/rebuild/0/v0/order", "2:0:0");
    } else {
      EXPECT_FALSE(reducer.RebuildBucketsFromTrace());
      statuses[1] = reducer.sync_status();
    }
  });
  EXPECT_EQ(statuses[1].code(), StatusCode::kFailedPrecondition)
      << statuses[1].ToString();
  EXPECT_NE(statuses[1].message().find("malformed ready order"),
            std::string::npos)
      << statuses[1].message();
  EXPECT_NE(statuses[1].message().find("2:0:0"), std::string::npos)
      << statuses[1].message();
}

TEST(RebuildSyncTest, MalformedLayoutSignatureIsTypedNotFatal) {
  // Only rank 0 constructs a reducer; "rank 1" is an adversarial peer that
  // publishes garbage where a layout signature belongs. Validation must
  // name the offender in a typed error — the defensive ParseSignatureNumels
  // path — rather than throwing out of std::stoll.
  std::vector<Status> statuses(2);
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    if (ctx.rank == 1) {
      ctx.store->Set("reducer/layout/0/v0/rank1", "2:64:banana");
      return;
    }
    Rng rng(23);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    Reducer reducer(model->parameters(), ctx.process_group, ReducerOptions());
    statuses[0] = reducer.sync_status();
  });
  EXPECT_EQ(statuses[0].code(), StatusCode::kFailedPrecondition)
      << statuses[0].ToString();
  EXPECT_NE(statuses[0].message().find("malformed signature"),
            std::string::npos)
      << statuses[0].message();
  EXPECT_NE(statuses[0].message().find("rank 1"), std::string::npos)
      << statuses[0].message();
}

TEST(RebuildSyncTest, AbortDrainsInFlightWorkAndClearsUsage) {
  // A dropped peer fails the gradient collectives mid-backward. The abort
  // path must (a) drain the in-flight bucket handles without throwing, (b)
  // clear the locally-used bitmap so the failed iteration's usage cannot
  // leak into a later accounting, and (c) leave the replica able to run
  // further (local-only) backwards.
  auto plan = std::make_shared<comm::FaultPlan>();
  // Mlp({8,8,8}) has 4 parameters => DDP ctor broadcasts occupy seqs 0-3;
  // gradient buckets start at seq 4.
  plan->DropRank(1, /*from_seq=*/4);

  SimWorldOptions world_options;
  world_options.fault_plan = plan;
  world_options.collective_timeout_seconds = 5.0;
  SimWorld::Run(2, world_options, [&](SimWorld::RankContext& ctx) {
    Rng rng(24);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{8, 8, 8}, &rng);
    DdpOptions options;
    options.find_unused_parameters = true;
    options.bucket_cap_bytes = 8 * 8 * 4 + 8 * 4;  // >1 bucket in flight
    options.collective_timeout_seconds = 5.0;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    ASSERT_GT(ddp.reducer().num_buckets(), 1u);

    Tensor x = Tensor::Full({2, 8}, 0.5);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));

    EXPECT_FALSE(ddp.sync_status().ok()) << "rank " << ctx.rank;
    EXPECT_FALSE(ddp.reducer().backward_finalized());
    EXPECT_EQ(ddp.reducer().stats().sync_failures, 1u);
    // The usage bitmap was cleared by the abort, not left dangling.
    for (uint8_t used : ddp.reducer().locally_used()) {
      EXPECT_EQ(used, 0) << "rank " << ctx.rank;
    }

    // The replica survives: local-only backward, no new collectives, and
    // the drained handles did not wedge the reducer or its destructor.
    const uint64_t launched = ddp.reducer().stats().allreduces_launched;
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    EXPECT_EQ(ddp.reducer().stats().allreduces_launched, launched);
    EXPECT_EQ(ddp.reducer().stats().sync_failures, 1u);
  });
}

}  // namespace
}  // namespace ddpkit::core
