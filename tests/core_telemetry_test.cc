#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "nn/zoo.h"
#include "sim/compute_cost_model.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

TEST(TelemetryRecordTest, ToJsonCarriesEveryField) {
  DDPTelemetry t;
  t.iteration = 7;
  t.rank = 2;
  t.synced = false;
  t.forward_seconds = 0.25;
  t.backward_compute_seconds = 0.5;
  t.allreduce_wait_seconds = 0.125;
  t.overlap_seconds = 0.375;
  t.comm_seconds = 0.4375;
  t.buckets.push_back(BucketTelemetry{3, 1024, 1.0, 2.0, 0.5});
  t.rebuilds = 1;
  t.sync_failures = 2;

  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"iteration\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rank\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"synced\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"forward_seconds\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"overlap_seconds\":0.375"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bucket\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bytes\":1024"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rebuilds\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sync_failures\":2"), std::string::npos) << json;
}

TEST(TelemetryLogTest, AppendSnapshotClear) {
  TelemetryLog log;
  EXPECT_EQ(log.size(), 0u);
  DDPTelemetry a;
  a.iteration = 0;
  DDPTelemetry b;
  b.iteration = 1;
  log.Append(a);
  log.Append(b);
  EXPECT_EQ(log.size(), 2u);
  auto frames = log.snapshot();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1].iteration, 1u);
  const std::string json = log.ToJson();
  EXPECT_NE(json.find("\"iterations\":["), std::string::npos) << json;
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

/// One shared 2-rank run with telemetry, metrics and tracing attached on
/// rank 0; the assertions below slice its outputs.
struct InstrumentedRun {
  std::shared_ptr<TelemetryLog> telemetry =
      std::make_shared<TelemetryLog>();
  std::shared_ptr<MetricsRegistry> metrics =
      std::make_shared<MetricsRegistry>();
  std::shared_ptr<TraceRecorder> trace = std::make_shared<TraceRecorder>();
  size_t num_buckets = 0;
  static constexpr int kIterations = 3;

  InstrumentedRun() {
    SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
      Rng rng(9);
      auto model = std::make_shared<nn::Mlp>(
          std::vector<int64_t>{16, 32, 32, 16}, &rng);
      DdpOptions options;
      options.bucket_cap_bytes = 2048;  // several buckets per iteration
      options.compute_model = std::make_shared<sim::ComputeCostModel>(
          sim::ComputeCostModel::GpuProfile());
      if (ctx.rank == 0) {
        options.telemetry = telemetry;
        options.metrics = metrics;
        options.trace = trace;
      }
      DistributedDataParallel ddp(model, ctx.process_group, options);
      if (ctx.rank == 0) num_buckets = ddp.reducer().num_buckets();
      Tensor x = Tensor::Full({4, 16}, 0.5);
      for (int it = 0; it < kIterations; ++it) {
        model->ZeroGrad();
        autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      }
    });
  }
};

TEST(DdpTelemetryTest, FramesAreInternallyConsistent) {
  InstrumentedRun run;
  const auto frames = run.telemetry->snapshot();
  ASSERT_EQ(frames.size(), static_cast<size_t>(run.kIterations));
  ASSERT_GT(run.num_buckets, 1u);
  for (size_t i = 0; i < frames.size(); ++i) {
    const DDPTelemetry& f = frames[i];
    EXPECT_EQ(f.iteration, i);
    EXPECT_EQ(f.rank, 0);
    EXPECT_TRUE(f.synced);
    EXPECT_GT(f.forward_seconds, 0.0);
    EXPECT_GT(f.backward_compute_seconds, 0.0);
    EXPECT_GT(f.comm_seconds, 0.0);
    // The tentpole invariant: hidden communication cannot exceed the
    // backward-compute span it hides under, and the union of bucket windows
    // bounds both its clipped (overlap) and exposed portions.
    EXPECT_LE(f.overlap_seconds, f.backward_compute_seconds + 1e-12);
    EXPECT_LE(f.overlap_seconds, f.comm_seconds + 1e-12);
    EXPECT_GE(f.allreduce_wait_seconds, 0.0);
    EXPECT_GE(f.copy_in_seconds, 0.0);
    EXPECT_GE(f.copy_out_seconds, 0.0);
    ASSERT_EQ(f.buckets.size(), run.num_buckets);
    for (const BucketTelemetry& b : f.buckets) {
      EXPECT_GT(b.bytes, 0u);
      EXPECT_GE(b.completion_seconds, b.launch_seconds);
      EXPECT_GE(b.wait_seconds, 0.0);
    }
    // Per-parameter compute recorded for every hook (12 params in the Mlp).
    EXPECT_EQ(f.param_compute_seconds.size(), 6u);
    EXPECT_EQ(f.sync_failures, 0u);
  }
}

TEST(DdpTelemetryTest, MetricsHistogramsMatchIterationCount) {
  InstrumentedRun run;
  EXPECT_EQ(run.metrics->counter("reducer.finalized_backwards").value(),
            static_cast<uint64_t>(run.kIterations));
  EXPECT_EQ(run.metrics->histogram("ddp.backward_compute_seconds").count(),
            static_cast<size_t>(run.kIterations));
  EXPECT_EQ(run.metrics->histogram("ddp.forward_seconds").count(),
            static_cast<size_t>(run.kIterations));
  EXPECT_EQ(run.metrics->histogram("reducer.bucket_latency_seconds").count(),
            static_cast<size_t>(run.kIterations) * run.num_buckets);
  EXPECT_GT(run.metrics->counter("reducer.bytes_reduced").value(), 0u);
}

TEST(DdpTelemetryTest, FlowArrowsLinkReadyLaunchCompletion) {
  InstrumentedRun run;
  const auto flows = run.trace->flow_points();
  // One s/t/f triple per bucket per iteration.
  const size_t expected = run.num_buckets * run.kIterations;
  std::map<uint64_t, std::vector<TraceRecorder::FlowPoint>> by_id;
  for (const auto& fp : flows) by_id[fp.flow_id].push_back(fp);
  EXPECT_EQ(by_id.size(), expected);
  for (const auto& [id, points] : by_id) {
    ASSERT_EQ(points.size(), 3u) << "flow " << id;
    // Recorded in phase order: grads-ready, launch, completion.
    EXPECT_EQ(points[0].phase, TraceRecorder::FlowPhase::kStart);
    EXPECT_EQ(points[1].phase, TraceRecorder::FlowPhase::kStep);
    EXPECT_EQ(points[2].phase, TraceRecorder::FlowPhase::kEnd);
    // Causally ordered: ready <= launch <= completion.
    EXPECT_LE(points[0].time_seconds, points[1].time_seconds);
    EXPECT_LE(points[1].time_seconds, points[2].time_seconds);
    EXPECT_NE(points[0].name.find("grads ready"), std::string::npos);
    EXPECT_NE(points[1].name.find("launch"), std::string::npos);
    EXPECT_NE(points[2].name.find("complete"), std::string::npos);
  }

  // Frame markers: one instant per iteration. Wire-byte accounting adds
  // one "comm" instant per bucket launch alongside them.
  const auto instants = run.trace->instants();
  size_t frame_instants = 0;
  size_t wire_instants = 0;
  for (const auto& inst : instants) {
    if (inst.category == "frame") {
      ++frame_instants;
    } else {
      ASSERT_EQ(inst.category, "comm");
      EXPECT_NE(inst.name.find(" wire "), std::string::npos);
      ++wire_instants;
    }
  }
  EXPECT_EQ(frame_instants, static_cast<size_t>(run.kIterations));
  EXPECT_EQ(wire_instants, expected);

  // The Chrome export renders every flow phase with a shared id.
  const std::string json = run.trace->ToChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(DdpTelemetryTest, FlowIdsAreUniqueAcrossRanksAndIterations) {
  // Both ranks record into ONE shared recorder: ids must still be unique
  // per (rank, iteration, bucket).
  auto trace = std::make_shared<TraceRecorder>();
  size_t num_buckets = 0;
  constexpr int kIterations = 2;
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(10);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{8, 16, 8}, &rng);
    DdpOptions options;
    options.bucket_cap_bytes = 1024;
    options.trace = trace;  // shared across ranks
    DistributedDataParallel ddp(model, ctx.process_group, options);
    if (ctx.rank == 0) num_buckets = ddp.reducer().num_buckets();
    Tensor x = Tensor::Full({2, 8}, 1.0);
    for (int it = 0; it < kIterations; ++it) {
      model->ZeroGrad();
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    }
  });
  std::map<uint64_t, size_t> counts;
  for (const auto& fp : trace->flow_points()) ++counts[fp.flow_id];
  EXPECT_EQ(counts.size(), 2u * kIterations * num_buckets);
  for (const auto& [id, n] : counts) {
    EXPECT_EQ(n, 3u) << "flow id " << id << " reused across flows";
  }
}

}  // namespace
}  // namespace ddpkit::core
