#include <gtest/gtest.h>

#include <vector>

#include "autograd/engine.h"
#include "autograd/grad_accumulator.h"
#include "autograd/graph_utils.h"
#include "autograd/node.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace ddpkit {
namespace {

using autograd::Backward;
using autograd::NoGradGuard;

Tensor Leaf(std::vector<int64_t> shape, double value) {
  Tensor t = Tensor::Full(std::move(shape), value);
  t.set_requires_grad(true);
  return t;
}

TEST(AutogradTest, ScalarChainRule) {
  Tensor x = Leaf({1}, 3.0);
  Tensor y = ops::Scale(ops::Mul(x, x), 2.0);  // y = 2x^2, dy/dx = 4x = 12
  Backward(y);
  ASSERT_TRUE(x.grad().defined());
  EXPECT_NEAR(x.grad().Item(), 12.0, 1e-5);
}

TEST(AutogradTest, AddRoutesGradToBothInputs) {
  Tensor a = Leaf({2}, 1.0);
  Tensor b = Leaf({2}, 2.0);
  Tensor loss = ops::SumAll(ops::Add(a, b));
  Backward(loss);
  EXPECT_DOUBLE_EQ(a.grad().FlatAt(0), 1.0);
  EXPECT_DOUBLE_EQ(b.grad().FlatAt(1), 1.0);
}

TEST(AutogradTest, FanInSumsContributions) {
  // y = x + x: dy/dx = 2.
  Tensor x = Leaf({3}, 5.0);
  Tensor loss = ops::SumAll(ops::Add(x, x));
  Backward(loss);
  EXPECT_DOUBLE_EQ(x.grad().FlatAt(0), 2.0);
}

TEST(AutogradTest, DiamondGraph) {
  // y = (x*x) + (2x): dy/dx = 2x + 2 = 8 at x=3.
  Tensor x = Leaf({1}, 3.0);
  Tensor left = ops::Mul(x, x);
  Tensor right = ops::Scale(x, 2.0);
  Backward(ops::Add(left, right));
  EXPECT_NEAR(x.grad().Item(), 8.0, 1e-5);
}

TEST(AutogradTest, BackwardAccumulatesAcrossCalls) {
  Tensor x = Leaf({1}, 2.0);
  Tensor y = ops::Mul(x, x);
  Backward(y);
  EXPECT_NEAR(x.grad().Item(), 4.0, 1e-5);
  Backward(y);  // retain-graph semantics: grads accumulate
  EXPECT_NEAR(x.grad().Item(), 8.0, 1e-5);
}

TEST(AutogradTest, NoGradModeRecordsNothing) {
  Tensor x = Leaf({1}, 2.0);
  Tensor y;
  {
    NoGradGuard guard;
    y = ops::Mul(x, x);
  }
  EXPECT_FALSE(y.requires_grad());
  EXPECT_EQ(autograd::MaybeMeta(y), nullptr);
}

TEST(AutogradTest, GradOutputScalesGradient) {
  Tensor x = Leaf({2}, 1.0);
  Tensor y = ops::Scale(x, 3.0);
  Backward(y, Tensor::Full({2}, 10.0));
  EXPECT_DOUBLE_EQ(x.grad().FlatAt(0), 30.0);
}

TEST(AutogradTest, NonLeafHasNoGradAccumulated) {
  Tensor x = Leaf({1}, 2.0);
  Tensor mid = ops::Scale(x, 2.0);
  Backward(ops::Mul(mid, mid));
  EXPECT_FALSE(mid.grad().defined());  // interior tensors keep no .grad
  EXPECT_TRUE(x.grad().defined());
}

TEST(AutogradTest, SequenceNumbersIncrease) {
  Tensor x = Leaf({1}, 1.0);
  Tensor a = ops::Scale(x, 2.0);
  Tensor b = ops::Scale(a, 2.0);
  auto* meta_a = autograd::MaybeMeta(a);
  auto* meta_b = autograd::MaybeMeta(b);
  ASSERT_NE(meta_a, nullptr);
  ASSERT_NE(meta_b, nullptr);
  EXPECT_LT(meta_a->grad_fn->sequence_nr(), meta_b->grad_fn->sequence_nr());
}

// ---- GradAccumulator post-hooks (the DDP interception mechanism) ------------

TEST(AutogradHookTest, PostHookFiresOncePerBackward) {
  Tensor x = Leaf({1}, 2.0);
  int fired = 0;
  autograd::GetGradAccumulator(x)->AddPostHook(
      [&fired](const Tensor&) { ++fired; });
  Backward(ops::Mul(x, x));
  EXPECT_EQ(fired, 1);
  Backward(ops::Mul(x, x));
  EXPECT_EQ(fired, 2);
}

TEST(AutogradHookTest, HookSeesAccumulatedGradient) {
  Tensor x = Leaf({1}, 3.0);
  double seen = 0.0;
  autograd::GetGradAccumulator(x)->AddPostHook(
      [&seen](const Tensor& p) { seen = p.grad().Item(); });
  Backward(ops::Mul(x, x));  // d(x^2)/dx = 6
  EXPECT_NEAR(seen, 6.0, 1e-5);
}

TEST(AutogradHookTest, AccumulatorIsStableAcrossIterations) {
  Tensor x = Leaf({1}, 1.0);
  auto acc1 = autograd::GetGradAccumulator(x);
  auto acc2 = autograd::GetGradAccumulator(x);
  EXPECT_EQ(acc1.get(), acc2.get());
  Backward(ops::Scale(x, 2.0));
  EXPECT_EQ(autograd::GetGradAccumulator(x).get(), acc1.get());
}

TEST(AutogradHookTest, HooksFireInReverseForwardOrderForAChain) {
  // In a chain a -> b, the parameter used LAST in the forward gets its
  // gradient FIRST in the backward — the assumption behind reverse-order
  // bucketing (§3.2.3).
  Tensor a = Leaf({1}, 1.0);
  Tensor b = Leaf({1}, 1.0);
  std::vector<char> order;
  autograd::GetGradAccumulator(a)->AddPostHook(
      [&order](const Tensor&) { order.push_back('a'); });
  autograd::GetGradAccumulator(b)->AddPostHook(
      [&order](const Tensor&) { order.push_back('b'); });
  Tensor mid = ops::Mul(ops::Scale(a, 2.0), a);  // uses a (early)
  Tensor out = ops::Mul(mid, b);                 // uses b (late)
  Backward(out);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'b');
  EXPECT_EQ(order[1], 'a');
}

// ---- Graph traversal (unused-parameter discovery) ------------------------------

TEST(GraphUtilsTest, FindsExactlyTheParticipatingParams) {
  Tensor used = Leaf({2}, 1.0);
  Tensor unused = Leaf({2}, 1.0);
  Tensor out = ops::SumAll(ops::Scale(used, 2.0));
  auto reachable = autograd::FindReachableParams({out});
  EXPECT_EQ(reachable.count(used.id()), 1u);
  EXPECT_EQ(reachable.count(unused.id()), 0u);
}

TEST(GraphUtilsTest, MultipleOutputsUnionTheirParams) {
  Tensor a = Leaf({1}, 1.0);
  Tensor b = Leaf({1}, 1.0);
  Tensor out_a = ops::Scale(a, 2.0);
  Tensor out_b = ops::Scale(b, 2.0);
  auto reachable = autograd::FindReachableParams({out_a, out_b});
  EXPECT_EQ(reachable.size(), 2u);
}

TEST(GraphUtilsTest, EmptyForNonGradOutputs) {
  Tensor plain = Tensor::Ones({2});
  auto reachable = autograd::FindReachableParams({plain});
  EXPECT_TRUE(reachable.empty());
}

TEST(GraphUtilsTest, DynamicGraphChangesBetweenIterations) {
  // The Fig 3(b) scenario: the participating set differs per forward.
  Tensor a = Leaf({1}, 1.0);
  Tensor b = Leaf({1}, 1.0);
  Tensor out1 = ops::Scale(a, 2.0);
  auto r1 = autograd::FindReachableParams({out1});
  Tensor out2 = ops::Scale(b, 2.0);
  auto r2 = autograd::FindReachableParams({out2});
  EXPECT_TRUE(r1.count(a.id()) && !r1.count(b.id()));
  EXPECT_TRUE(r2.count(b.id()) && !r2.count(a.id()));
}

}  // namespace
}  // namespace ddpkit
