// Tests for the extended op surface: div/exp/log/sqrt, max pooling, and
// dropout (kernel, autograd and module levels).

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/zoo.h"
#include "tensor/tensor_ops.h"

namespace ddpkit {
namespace {

using autograd::Backward;
using autograd::NoGradGuard;

Tensor Param(Tensor t) {
  t.set_requires_grad(true);
  return t;
}

double NumericalGrad(Tensor param, int64_t i,
                     const std::function<double()>& f, double eps = 1e-2) {
  NoGradGuard guard;
  const double orig = param.FlatAt(i);
  param.FlatSet(i, orig + eps);
  const double plus = f();
  param.FlatSet(i, orig - eps);
  const double minus = f();
  param.FlatSet(i, orig);
  return (plus - minus) / (2.0 * eps);
}

// ---- Kernels --------------------------------------------------------------------

TEST(ExtraKernelsTest, DivExpLogSqrt) {
  Tensor a = Tensor::FromVector({8.0f, 2.0f}, {2});
  Tensor b = Tensor::FromVector({2.0f, 4.0f}, {2});
  EXPECT_DOUBLE_EQ(kernels::Div(a, b).FlatAt(0), 4.0);
  EXPECT_DOUBLE_EQ(kernels::Div(a, b).FlatAt(1), 0.5);
  EXPECT_NEAR(kernels::Exp(Tensor::FromVector({1.0f}, {1})).Item(), M_E,
              1e-5);
  EXPECT_NEAR(kernels::Log(Tensor::FromVector({float(M_E)}, {1})).Item(),
              1.0, 1e-5);
  EXPECT_DOUBLE_EQ(kernels::Sqrt(Tensor::FromVector({9.0f}, {1})).Item(),
                   3.0);
}

TEST(ExtraKernelsTest, MaxPoolSelectsMaxAndRecordsArgmax) {
  Tensor input = Tensor::FromVector({1, 5, 3, 2}, {1, 1, 2, 2});
  Tensor argmax;
  Tensor out = kernels::MaxPool2x2(input, &argmax);
  EXPECT_EQ(out.numel(), 1);
  EXPECT_DOUBLE_EQ(out.Item(), 5.0);
  EXPECT_EQ(argmax.data<int64_t>()[0], 1);  // flat offset of the 5

  Tensor grad = kernels::MaxPool2x2Backward(Tensor::Ones({1, 1, 1, 1}),
                                            argmax, {1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(grad.FlatAt(0), 0.0);
  EXPECT_DOUBLE_EQ(grad.FlatAt(1), 1.0);
  EXPECT_DOUBLE_EQ(grad.FlatAt(2), 0.0);
}

// ---- Autograd -------------------------------------------------------------------

TEST(ExtraOpsGradTest, Div) {
  Rng rng(1);
  Tensor a = Param(Tensor::Rand({4}, &rng, 1.0, 3.0));
  Tensor b = Param(Tensor::Rand({4}, &rng, 1.0, 3.0));
  Tensor loss = ops::MeanAll(ops::Div(a, b));
  Backward(loss);
  auto f = [&] { return ops::MeanAll(ops::Div(a, b)).Item(); };
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a.grad().FlatAt(i), NumericalGrad(a, i, f), 2e-2);
    EXPECT_NEAR(b.grad().FlatAt(i), NumericalGrad(b, i, f), 2e-2);
  }
}

TEST(ExtraOpsGradTest, ExpLogSqrt) {
  Rng rng(2);
  for (auto op : {0, 1, 2}) {
    Tensor x = Param(Tensor::Rand({4}, &rng, 0.5, 2.0));
    auto apply = [&](const Tensor& t) {
      switch (op) {
        case 0: return ops::Exp(t);
        case 1: return ops::Log(t);
        default: return ops::Sqrt(t);
      }
    };
    Backward(ops::MeanAll(apply(x)));
    auto f = [&] { return ops::MeanAll(apply(x)).Item(); };
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(x.grad().FlatAt(i), NumericalGrad(x, i, f, 1e-3), 2e-2)
          << "op " << op << " elem " << i;
    }
  }
}

TEST(ExtraOpsGradTest, MaxPoolRoutesGradientToArgmax) {
  Rng rng(3);
  Tensor x = Param(Tensor::Randn({1, 2, 4, 4}, &rng));
  Tensor loss = ops::MeanAll(ops::MaxPool2x2(x));
  Backward(loss);
  // Exactly one nonzero gradient per 2x2 window, each = 1/outputs.
  int nonzero = 0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (x.grad().FlatAt(i) != 0.0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 2 * 2 * 2);  // C*OH*OW windows
}

TEST(ExtraOpsGradTest, DropoutMaskConsistentForwardBackward) {
  Rng rng(4);
  Rng mask_rng(7);
  Tensor x = Param(Tensor::Ones({100}));
  Tensor y = ops::Dropout(x, 0.4, &mask_rng);
  Backward(ops::SumAll(y));
  // Where the output was zeroed, the gradient is zero; where kept, the
  // gradient equals the 1/(1-p) scale.
  int kept = 0;
  for (int64_t i = 0; i < 100; ++i) {
    if (y.FlatAt(i) != 0.0) {
      ++kept;
      EXPECT_NEAR(y.FlatAt(i), 1.0 / 0.6, 1e-5);
      EXPECT_NEAR(x.grad().FlatAt(i), 1.0 / 0.6, 1e-5);
    } else {
      EXPECT_DOUBLE_EQ(x.grad().FlatAt(i), 0.0);
    }
  }
  EXPECT_GT(kept, 35);
  EXPECT_LT(kept, 85);
}

TEST(ExtraOpsGradTest, DropoutExpectationPreserved) {
  Rng mask_rng(8);
  Tensor x = Tensor::Ones({20000});
  Tensor y = ops::Dropout(x, 0.25, &mask_rng);
  double mean = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) mean += y.FlatAt(i);
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 1.0, 0.02);  // inverted dropout keeps E[y] = x
}

// ---- Dropout module ----------------------------------------------------------------

TEST(DropoutModuleTest, IdentityInEvalMode) {
  nn::Dropout dropout(0.5, 9);
  dropout.SetTraining(false);
  Tensor x = Tensor::Full({8}, 2.0);
  Tensor y = dropout.Forward(x);
  EXPECT_TRUE(y.is_same(x));
}

TEST(DropoutModuleTest, SameSeedSameMaskAcrossInstances) {
  nn::Dropout a(0.5, 42);
  nn::Dropout b(0.5, 42);
  Tensor x = Tensor::Ones({64});
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  EXPECT_EQ(kernels::MaxAbsDiff(ya, yb), 0.0);
}

TEST(DropoutModuleTest, ZeroProbabilityIsIdentity) {
  nn::Dropout dropout(0.0, 1);
  Tensor x = Tensor::Full({4}, 3.0);
  EXPECT_TRUE(dropout.Forward(x).is_same(x));
}


// ---- Slice / Concat (multi-head attention plumbing) -----------------------------

TEST(SliceConcatTest, SliceExtractsColumns) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor s = ops::SliceLastDim(a, 1, 2);
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_DOUBLE_EQ(s.At({0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(s.At({1, 1}), 6.0);
}

TEST(SliceConcatTest, ConcatInvertsSlice) {
  Rng rng(20);
  Tensor a = Tensor::Randn({2, 3, 6}, &rng);
  Tensor left = ops::SliceLastDim(a, 0, 2);
  Tensor mid = ops::SliceLastDim(a, 2, 3);
  Tensor right = ops::SliceLastDim(a, 5, 1);
  Tensor joined = ops::ConcatLastDim({left, mid, right});
  EXPECT_EQ(kernels::MaxAbsDiff(joined, a), 0.0);
}

TEST(SliceConcatTest, GradientsRouteToTheRightColumns) {
  Tensor x = Param(Tensor::Zeros({2, 4}));
  Tensor s = ops::SliceLastDim(x, 1, 2);
  Backward(ops::SumAll(s));
  for (int64_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(x.grad().At({r, 0}), 0.0);
    EXPECT_DOUBLE_EQ(x.grad().At({r, 1}), 1.0);
    EXPECT_DOUBLE_EQ(x.grad().At({r, 2}), 1.0);
    EXPECT_DOUBLE_EQ(x.grad().At({r, 3}), 0.0);
  }
}

TEST(SliceConcatTest, ConcatGradientsSplitBack) {
  Tensor a = Param(Tensor::Zeros({3, 2}));
  Tensor b = Param(Tensor::Zeros({3, 1}));
  Tensor joined = ops::ConcatLastDim({a, b});
  // Weight columns differently so routing errors are visible.
  Tensor weight = Tensor::FromVector({1, 1, 5, 1, 1, 5, 1, 1, 5}, {3, 3});
  Backward(ops::SumAll(ops::Mul(joined, weight)));
  EXPECT_DOUBLE_EQ(a.grad().At({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(a.grad().At({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(b.grad().At({0, 0}), 5.0);
}

TEST(SliceConcatTest, MultiHeadAttentionMatchesSingleHeadWidth) {
  // Multi-head attention produces the right shape and gradients for all
  // parameters of a 2-head transformer layer.
  Rng rng(21);
  nn::TransformerLayer layer(8, 16, &rng, /*num_heads=*/2);
  Tensor x = Param(Tensor::Randn({2, 3, 8}, &rng));
  Tensor out = layer.Forward(x);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{2, 3, 8}));
  Backward(ops::MeanAll(out));
  for (const auto& [name, p] : layer.named_parameters()) {
    EXPECT_TRUE(p.grad().defined()) << name;
  }
  EXPECT_TRUE(x.grad().defined());
}

}  // namespace
}  // namespace ddpkit
