#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "autograd/engine.h"
#include "comm/algorithms.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace ddpkit {
namespace {

/// Restores the default pool size when a test exits, so thread-count
/// changes never leak into other tests.
class PoolSizeGuard {
 public:
  ~PoolSizeGuard() { ThreadPool::SetNumThreads(previous_); }

 private:
  int previous_ = ThreadPool::Global().num_threads();
};

std::vector<uint8_t> TensorBytes(const Tensor& t) {
  std::vector<uint8_t> out(t.nbytes());
  std::memcpy(out.data(), t.data<uint8_t>(), t.nbytes());
  return out;
}

// ---- ParallelFor basics -------------------------------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  PoolSizeGuard guard;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetNumThreads(threads);
    constexpr int64_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(0, kN, /*grain=*/64, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoops) {
  std::atomic<int> calls{0};
  auto body = [&](int64_t, int64_t) { calls.fetch_add(1); };
  ParallelFor(0, 0, 8, body);
  ParallelFor(5, 5, 8, body);
  ParallelFor(10, 3, 8, body);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleElementRange) {
  int64_t seen_b = -1, seen_e = -1;
  ParallelFor(7, 8, 1, [&](int64_t b, int64_t e) {
    seen_b = b;
    seen_e = e;
  });
  EXPECT_EQ(seen_b, 7);
  EXPECT_EQ(seen_e, 8);
}

TEST(ParallelForTest, RangeAtOrBelowGrainRunsAsOneCall) {
  PoolSizeGuard guard;
  ThreadPool::SetNumThreads(8);
  std::atomic<int> calls{0};
  ParallelFor(0, 100, /*grain=*/100, [&](int64_t b, int64_t e) {
    calls.fetch_add(1);
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, SubrangesAreGrainAlignedTiles) {
  PoolSizeGuard guard;
  ThreadPool::SetNumThreads(4);
  constexpr int64_t kBegin = 3, kEnd = 103, kGrain = 16;
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ParallelFor(kBegin, kEnd, kGrain, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  // Chunk boundaries depend only on the range and grain, never on which
  // thread claimed which chunk.
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ((b - kBegin) % kGrain, 0);
    EXPECT_EQ(e, std::min(kEnd, b + kGrain));
  }
  EXPECT_EQ(ranges.size(), 7u);  // ceil(100 / 16)
}

TEST(ParallelForTest, PoolIsReusedAcrossManyDispatches) {
  PoolSizeGuard guard;
  ThreadPool::SetNumThreads(4);
  constexpr int64_t kN = 4096;
  std::vector<int64_t> data(kN, 0);
  for (int round = 0; round < 200; ++round) {
    ParallelFor(0, kN, 64, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) ++data[i];
    });
  }
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(data[i], 200);
}

TEST(ParallelForTest, NestedCallsRunInlineAndComplete) {
  PoolSizeGuard guard;
  ThreadPool::SetNumThreads(4);
  constexpr int64_t kRows = 64, kCols = 256;
  std::vector<std::atomic<int>> hits(kRows * kCols);
  ParallelFor(0, kRows, 1, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      // A nested ParallelFor from inside a pool worker must not deadlock;
      // it runs serially on the same thread.
      ParallelFor(0, kCols, 16, [&](int64_t cb, int64_t ce) {
        for (int64_t c = cb; c < ce; ++c) hits[r * kCols + c].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, ExceptionPropagatesToCallerAndPoolSurvives) {
  PoolSizeGuard guard;
  ThreadPool::SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [&](int64_t b, int64_t) {
                    if (b == 500) throw std::runtime_error("chunk failed");
                  }),
      std::runtime_error);
  // The pool must stay usable after a body threw.
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, SetNumThreadsResizesGlobalPool) {
  PoolSizeGuard guard;
  ThreadPool::SetNumThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::SetNumThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
  ThreadPool::SetNumThreads(0);  // clamped
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

TEST(ParallelReduceTest, MatchesSerialSumAndIdentityOnEmpty) {
  PoolSizeGuard guard;
  ThreadPool::SetNumThreads(4);
  constexpr int64_t kN = 100'000;
  std::vector<double> values(kN);
  for (int64_t i = 0; i < kN; ++i) values[i] = 0.5 * static_cast<double>(i);
  const auto map = [&](int64_t b, int64_t e) {
    double s = 0.0;
    for (int64_t i = b; i < e; ++i) s += values[i];
    return s;
  };
  const auto combine = [](double x, double y) { return x + y; };
  const double parallel = ParallelReduce(0, kN, 1024, 0.0, map, combine);
  double serial = 0.0;
  for (int64_t i = 0; i < kN; ++i) serial += values[i];
  EXPECT_NEAR(parallel, serial, 1e-6 * serial);
  EXPECT_EQ(ParallelReduce(0, 0, 1024, -1.0, map, combine), -1.0);
}

// ---- Determinism across thread counts ------------------------------------------
//
// The runtime's contract: chunk partitioning depends only on problem size
// and grain, so every result below must be byte-identical whether the pool
// has 1, 2, or 8 threads.

/// Runs `fn` under each pool size and asserts all invocations produce the
/// same bytes.
template <typename Fn>
void ExpectBitExactAcrossThreadCounts(const char* what, Fn fn) {
  PoolSizeGuard guard;
  std::vector<std::vector<uint8_t>> results;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetNumThreads(threads);
    results.push_back(fn());
  }
  EXPECT_EQ(results[0], results[1]) << what << ": 1 vs 2 threads";
  EXPECT_EQ(results[0], results[2]) << what << ": 1 vs 8 threads";
}

TEST(ParallelDeterminismTest, TensorOpsBitExact) {
  ExpectBitExactAcrossThreadCounts("matmul", [] {
    Rng rng(101);
    Tensor a = Tensor::Randn({257, 129}, &rng);
    Tensor b = Tensor::Randn({129, 193}, &rng);
    return TensorBytes(kernels::MatMul(a, b));
  });
  ExpectBitExactAcrossThreadCounts("matmul_trans_a", [] {
    Rng rng(102);
    Tensor a = Tensor::Randn({129, 257}, &rng);
    Tensor b = Tensor::Randn({129, 193}, &rng);
    return TensorBytes(kernels::MatMulTransA(a, b));
  });
  ExpectBitExactAcrossThreadCounts("matmul_trans_b", [] {
    Rng rng(103);
    Tensor a = Tensor::Randn({257, 129}, &rng);
    Tensor b = Tensor::Randn({193, 129}, &rng);
    return TensorBytes(kernels::MatMulTransB(a, b));
  });
  ExpectBitExactAcrossThreadCounts("elementwise", [] {
    Rng rng(104);
    Tensor a = Tensor::Randn({100'000}, &rng);
    Tensor b = Tensor::Randn({100'000}, &rng);
    Tensor out = kernels::Mul(kernels::Add(a, b), kernels::Gelu(a));
    kernels::Axpy(0.25, b, &out);
    return TensorBytes(out);
  });
  ExpectBitExactAcrossThreadCounts("sum_all", [] {
    Rng rng(105);
    Tensor a = Tensor::Randn({300'000}, &rng);
    return TensorBytes(kernels::SumAll(a));
  });
  ExpectBitExactAcrossThreadCounts("softmax_rows", [] {
    Rng rng(106);
    Tensor a = Tensor::Randn({300, 400}, &rng);
    Tensor sm = kernels::Softmax(a);
    Tensor lsm = kernels::LogSoftmax(a);
    std::vector<uint8_t> bytes = TensorBytes(sm);
    std::vector<uint8_t> more = TensorBytes(lsm);
    bytes.insert(bytes.end(), more.begin(), more.end());
    return bytes;
  });
  ExpectBitExactAcrossThreadCounts("sum_rows", [] {
    Rng rng(107);
    Tensor a = Tensor::Randn({300, 400}, &rng);
    return TensorBytes(kernels::SumRows(a));
  });
}

TEST(ParallelDeterminismTest, AllReduceBitExact) {
  for (comm::Algorithm algo :
       {comm::Algorithm::kNaive, comm::Algorithm::kRing,
        comm::Algorithm::kTree}) {
    ExpectBitExactAcrossThreadCounts(comm::AlgorithmName(algo), [algo] {
      Rng rng(200);
      std::vector<Tensor> tensors;
      for (int r = 0; r < 4; ++r) {
        tensors.push_back(Tensor::Randn({1 << 18}, &rng));
      }
      comm::RunAllReduce(algo, comm::ReduceOp::kSum, tensors);
      std::vector<uint8_t> bytes;
      for (const Tensor& t : tensors) {
        std::vector<uint8_t> b = TensorBytes(t);
        bytes.insert(bytes.end(), b.begin(), b.end());
      }
      return bytes;
    });
  }
}

TEST(ParallelDeterminismTest, DdpTrainingStepBitExact) {
  // End-to-end: 2-rank DDP forward/backward/optimizer step. Gradients flow
  // through parallel kernels, the bucket copy-in/copy-out, and the ring
  // all-reduce; the resulting parameters must be byte-identical for every
  // pool size.
  ExpectBitExactAcrossThreadCounts("ddp_step", [] {
    const int world = 2;
    const int64_t per_rank = 8;
    Rng data_rng(31);
    Tensor all_x = Tensor::Randn({per_rank * world, 64}, &data_rng);
    Tensor all_y = Tensor::Randn({per_rank * world, 16}, &data_rng);

    std::vector<std::vector<uint8_t>> rank_params(world);
    comm::SimWorld::Run(world, [&](comm::SimWorld::RankContext& ctx) {
      Rng rng(37);
      auto model = std::make_shared<nn::Mlp>(
          std::vector<int64_t>{64, 128, 16}, &rng);
      core::DistributedDataParallel ddp(model, ctx.process_group);
      optim::Sgd opt(model->parameters(),
                     optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
      for (int step = 0; step < 2; ++step) {
        opt.ZeroGrad();
        Tensor x = all_x.Narrow(0, ctx.rank * per_rank, per_rank).Clone();
        Tensor y = all_y.Narrow(0, ctx.rank * per_rank, per_rank).Clone();
        autograd::Backward(nn::MSELoss()(ddp.Forward(x), y));
        opt.Step();
      }
      std::vector<uint8_t> bytes;
      for (const Tensor& p : model->parameters()) {
        std::vector<uint8_t> b = TensorBytes(p);
        bytes.insert(bytes.end(), b.begin(), b.end());
      }
      rank_params[static_cast<size_t>(ctx.rank)] = std::move(bytes);
    });
    // Ranks must agree with each other, too.
    EXPECT_EQ(rank_params[0], rank_params[1]);
    return rank_params[0];
  });
}

}  // namespace
}  // namespace ddpkit
