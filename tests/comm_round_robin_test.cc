#include <gtest/gtest.h>

#include <vector>

#include "comm/sim_world.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::comm {
namespace {

TEST(RoundRobinTest, DataCorrectAcrossDispatchedGroups) {
  constexpr int kWorld = 3;
  SimWorldOptions options;
  options.round_robin_groups = 3;
  SimWorld::Run(kWorld, options, [&](SimWorld::RankContext& ctx) {
    EXPECT_EQ(ctx.process_group->backend_name(), "round_robin[nccl x 3]");
    std::vector<Tensor> tensors;
    std::vector<WorkHandle> works;
    for (int i = 0; i < 7; ++i) {  // spans all child groups, uneven
      tensors.push_back(Tensor::Full({5}, ctx.rank + 1.0));
      works.push_back(ctx.process_group->AllReduce(tensors.back()));
    }
    for (auto& w : works) w->Wait(ctx.clock);
    for (const Tensor& t : tensors) {
      EXPECT_DOUBLE_EQ(t.FlatAt(0), 6.0);  // 1+2+3
    }
  });
}

TEST(RoundRobinTest, ParallelQueuesReduceLatencyForManyOps) {
  // The Fig 12 effect: rr3 beats rr1 when several comm-bound collectives
  // are in flight and one group cannot saturate the link.
  auto measure = [](int groups) {
    double total = 0.0;
    SimWorldOptions options;
    options.round_robin_groups = groups;
    SimWorld::Run(16, options, [&](SimWorld::RankContext& ctx) {
      std::vector<Tensor> tensors;
      std::vector<WorkHandle> works;
      for (int i = 0; i < 6; ++i) {
        tensors.push_back(Tensor::Full({4 << 20}, 1.0));  // 16 MB each
        works.push_back(ctx.process_group->AllReduce(tensors.back()));
      }
      for (auto& w : works) w->Wait(ctx.clock);
      if (ctx.rank == 0) total = ctx.clock->Now();
    });
    return total;
  };
  const double rr1 = measure(1);
  const double rr3 = measure(3);
  EXPECT_LT(rr3, rr1);
}

TEST(RoundRobinTest, BarrierFlushesAllQueues) {
  SimWorldOptions options;
  options.round_robin_groups = 2;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Tensor a = Tensor::Full({128}, 1.0);
    Tensor b = Tensor::Full({128}, 2.0);
    WorkHandle wa = ctx.process_group->AllReduce(a);
    WorkHandle wb = ctx.process_group->AllReduce(b);
    ctx.process_group->Barrier();
    // After the barrier both collectives' data must be complete.
    EXPECT_TRUE(wa->IsCompleted());
    EXPECT_TRUE(wb->IsCompleted());
    wa->Wait(ctx.clock);
    wb->Wait(ctx.clock);
    EXPECT_DOUBLE_EQ(a.FlatAt(0), 2.0);
    EXPECT_DOUBLE_EQ(b.FlatAt(0), 4.0);
  });
}

TEST(RoundRobinTest, SingleChildBehavesLikePlainGroup) {
  SimWorldOptions options;
  options.round_robin_groups = 1;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({4}, 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    EXPECT_DOUBLE_EQ(t.FlatAt(0), 2.0);
  });
}

}  // namespace
}  // namespace ddpkit::comm
