#include <gtest/gtest.h>

#include <vector>

#include "comm/sim_world.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::comm {
namespace {

TEST(RoundRobinTest, DataCorrectAcrossDispatchedGroups) {
  constexpr int kWorld = 3;
  SimWorldOptions options;
  options.round_robin_groups = 3;
  SimWorld::Run(kWorld, options, [&](SimWorld::RankContext& ctx) {
    EXPECT_EQ(ctx.process_group->backend_name(), "round_robin[nccl x 3]");
    std::vector<Tensor> tensors;
    std::vector<WorkHandle> works;
    for (int i = 0; i < 7; ++i) {  // spans all child groups, uneven
      tensors.push_back(Tensor::Full({5}, ctx.rank + 1.0));
      works.push_back(ctx.process_group->AllReduce(tensors.back()));
    }
    for (auto& w : works) w->Wait(ctx.clock);
    for (const Tensor& t : tensors) {
      EXPECT_DOUBLE_EQ(t.FlatAt(0), 6.0);  // 1+2+3
    }
  });
}

TEST(RoundRobinTest, ParallelQueuesReduceLatencyForManyOps) {
  // The Fig 12 effect: rr3 beats rr1 when several comm-bound collectives
  // are in flight and one group cannot saturate the link.
  auto measure = [](int groups) {
    double total = 0.0;
    SimWorldOptions options;
    options.round_robin_groups = groups;
    SimWorld::Run(16, options, [&](SimWorld::RankContext& ctx) {
      std::vector<Tensor> tensors;
      std::vector<WorkHandle> works;
      for (int i = 0; i < 6; ++i) {
        tensors.push_back(Tensor::Full({4 << 20}, 1.0));  // 16 MB each
        works.push_back(ctx.process_group->AllReduce(tensors.back()));
      }
      for (auto& w : works) w->Wait(ctx.clock);
      if (ctx.rank == 0) total = ctx.clock->Now();
    });
    return total;
  };
  const double rr1 = measure(1);
  const double rr3 = measure(3);
  EXPECT_LT(rr3, rr1);
}

TEST(RoundRobinTest, BarrierFlushesAllQueues) {
  SimWorldOptions options;
  options.round_robin_groups = 2;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Tensor a = Tensor::Full({128}, 1.0);
    Tensor b = Tensor::Full({128}, 2.0);
    WorkHandle wa = ctx.process_group->AllReduce(a);
    WorkHandle wb = ctx.process_group->AllReduce(b);
    ctx.process_group->Barrier();
    // After the barrier both collectives' data must be complete.
    EXPECT_TRUE(wa->IsCompleted());
    EXPECT_TRUE(wb->IsCompleted());
    wa->Wait(ctx.clock);
    wb->Wait(ctx.clock);
    EXPECT_DOUBLE_EQ(a.FlatAt(0), 2.0);
    EXPECT_DOUBLE_EQ(b.FlatAt(0), 4.0);
  });
}

TEST(RoundRobinTest, SingleChildBehavesLikePlainGroup) {
  SimWorldOptions options;
  options.round_robin_groups = 1;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({4}, 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    EXPECT_DOUBLE_EQ(t.FlatAt(0), 2.0);
  });
}

TEST(RoundRobinTest, GenerationRetirementAlignsChildrenWithoutFailover) {
  // Regression: a generation retirement (elastic recovery aborting a child
  // group) is NOT a child fault. DrainAndFailover must keep the child in
  // the healthy set (no failover, no zero-healthy CHECK), surface a typed
  // kInvalidGeneration status, and propagate the superseding generation to
  // EVERY child so no later dispatch mixes generations across one
  // iteration's buckets.
  constexpr int kChildren = 3;
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    std::vector<std::shared_ptr<ProcessGroup>> children;
    for (int g = 0; g < kChildren; ++g) {
      ProcessGroupSim::Options options;
      options.concurrent_groups = kChildren;
      children.push_back(ProcessGroupSim::Create(
          ctx.store, "rr_gen_align/c" + std::to_string(g), ctx.rank,
          ctx.world, options, ctx.clock));
    }
    std::shared_ptr<ProcessGroup> retired_child = children[1];
    RoundRobinProcessGroup rr(children);

    // One collective per child; the rotation spreads them 0, 1, 2.
    std::vector<Tensor> tensors;
    for (int i = 0; i < kChildren; ++i) {
      tensors.push_back(Tensor::Full({4}, ctx.rank + 1.0));
      (void)rr.AllReduce(tensors.back(), ReduceOp::kSum);
    }

    // A recovery elsewhere retires child 1 only — the transient
    // mixed-generation state DrainAndFailover must repair. (Idempotent:
    // both ranks call it; the first verdict stands.)
    retired_child->AbortGroup(1, "recovery elsewhere retired this child");

    Status drained = rr.DrainAndFailover(/*timeout_seconds=*/30.0);
    ASSERT_FALSE(drained.ok());
    EXPECT_EQ(drained.code(), StatusCode::kInvalidGeneration)
        << drained.ToString();
    // No failover happened: the retired child fails fast and typed, it is
    // not unhealthy — and the composite did not CHECK-abort.
    EXPECT_EQ(rr.num_healthy_groups(), static_cast<size_t>(kChildren));
    // Alignment: every child now rejects at the same superseding
    // generation, not just the one the recovery touched.
    for (const auto& child : children) {
      EXPECT_EQ(child->superseded_by(), 1u);
    }
    EXPECT_EQ(rr.superseded_by(), 1u);

    // A straggler dispatch on the retired composite fails fast and typed
    // on whichever child rotation picks — never a hang, never a
    // mixed-generation reduction.
    Tensor late = Tensor::Full({4}, 1.0);
    WorkHandle work = rr.AllReduce(late, ReduceOp::kSum);
    Status st = work->Wait(ctx.clock, 5.0);
    EXPECT_EQ(st.code(), StatusCode::kInvalidGeneration) << st.ToString();
    EXPECT_EQ(work->error(), WorkError::kInvalidGeneration);
  });
}

}  // namespace
}  // namespace ddpkit::comm
