#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/graph_utils.h"
#include "autograd/ops.h"
#include "cluster/model_specs.h"
#include "common/rng.h"
#include "nn/losses.h"
#include "nn/zoo.h"

namespace ddpkit::nn {
namespace {

TEST(ZooTest, MlpForwardShape) {
  Rng rng(1);
  Mlp mlp({6, 12, 3}, &rng);
  Tensor out = mlp.Forward(Tensor::Randn({4, 6}, &rng));
  EXPECT_EQ(out.size(0), 4);
  EXPECT_EQ(out.size(1), 3);
}

TEST(ZooTest, SmallConvNetTrainsOnMnistShapes) {
  Rng rng(2);
  SmallConvNet net(&rng, /*width=*/4);
  Tensor images = Tensor::Randn({2, 1, 28, 28}, &rng);
  Tensor out = net.Forward(images);
  EXPECT_EQ(out.size(0), 2);
  EXPECT_EQ(out.size(1), 10);
  Tensor labels = Tensor::FromVectorInt64({3, 7}, {2});
  CrossEntropyLoss ce;
  autograd::Backward(ce(out, labels));
  for (const Tensor& p : net.parameters()) {
    EXPECT_TRUE(p.grad().defined());
  }
}

TEST(ZooTest, ResNetTinyForwardBackward) {
  Rng rng(3);
  ResNetTiny net(&rng, 3, 4, 10, 1);
  Tensor images = Tensor::Randn({2, 3, 8, 8}, &rng);
  Tensor out = net.Forward(images);
  EXPECT_EQ(out.size(1), 10);
  autograd::Backward(ops::MeanAll(out));
  for (const Tensor& p : net.parameters()) {
    EXPECT_TRUE(p.grad().defined());
  }
}

TEST(ZooTest, TransformerTinyForwardBackward) {
  Rng rng(4);
  TransformerTiny::Config config;
  config.vocab_size = 32;
  config.seq_len = 6;
  config.dim = 8;
  config.ff_dim = 16;
  config.num_layers = 2;
  config.num_classes = 3;
  TransformerTiny net(config, &rng);
  Tensor tokens = Tensor::FromVectorInt64(
      {1, 5, 9, 2, 0, 31, 7, 7, 3, 3, 12, 20}, {2, 6});
  Tensor out = net.Forward(tokens);
  EXPECT_EQ(out.size(0), 2);
  EXPECT_EQ(out.size(1), 3);
  autograd::Backward(ops::MeanAll(out));
  for (const auto& [name, p] : net.named_parameters()) {
    EXPECT_TRUE(p.grad().defined()) << name;
  }
}

TEST(ZooTest, BranchyNetLeavesInactiveBranchWithoutGrad) {
  Rng rng(5);
  BranchyNet net(4, &rng);
  net.set_use_branch_a(true);
  Tensor out = net.Forward(Tensor::Randn({2, 4}, &rng));
  autograd::Backward(ops::MeanAll(out));
  for (const Tensor& p : net.branch_a_parameters()) {
    EXPECT_TRUE(p.grad().defined());
  }
  for (const Tensor& p : net.branch_b_parameters()) {
    EXPECT_FALSE(p.grad().defined());
  }
}

TEST(ZooTest, BranchyNetGraphTraversalMatchesBranch) {
  Rng rng(6);
  BranchyNet net(4, &rng);
  net.set_use_branch_a(false);
  Tensor out = net.Forward(Tensor::Randn({1, 4}, &rng));
  auto reachable = autograd::FindReachableParams({out});
  for (const Tensor& p : net.branch_b_parameters()) {
    EXPECT_EQ(reachable.count(p.id()), 1u);
  }
  for (const Tensor& p : net.branch_a_parameters()) {
    EXPECT_EQ(reachable.count(p.id()), 0u);
  }
}

// ---- Paper model shape inventories ---------------------------------------------

TEST(ModelSpecTest, ResNet18ParameterCount) {
  // torchvision resnet18: 11,689,512 parameters.
  EXPECT_EQ(cluster::ResNet18Spec().TotalNumel(), 11689512);
}

TEST(ModelSpecTest, ResNet34ParameterCount) {
  // torchvision resnet34: 21,797,672 parameters.
  EXPECT_EQ(cluster::ResNet34Spec().TotalNumel(), 21797672);
}

TEST(ModelSpecTest, Gpt2SmallParameterCount) {
  // GPT-2 small: ~124.4M parameters with tied embeddings.
  EXPECT_NEAR(static_cast<double>(cluster::Gpt2SmallSpec().TotalNumel()),
              124.4e6, 0.5e6);
}

TEST(ModelSpecTest, ResNet50ParameterCount) {
  auto spec = cluster::ResNet50Spec();
  // torchvision resnet50: 25,557,032 parameters.
  EXPECT_EQ(spec.TotalNumel(), 25557032);
}

TEST(ModelSpecTest, ResNet152ParameterCount) {
  auto spec = cluster::ResNet152Spec();
  // torchvision resnet152: 60,192,808 parameters — the ~60M of Fig 2(c).
  EXPECT_EQ(spec.TotalNumel(), 60192808);
}

TEST(ModelSpecTest, BertBaseParameterCount) {
  auto spec = cluster::BertBaseSpec();
  // BERT-Base encoder ~109.5M parameters; the paper calls it "15X more
  // parameters compared to ResNet50" (§5.2).
  EXPECT_NEAR(static_cast<double>(spec.TotalNumel()), 109.48e6, 0.2e6);
  const double ratio = static_cast<double>(spec.TotalNumel()) /
                       static_cast<double>(cluster::ResNet50Spec().TotalNumel());
  EXPECT_GT(ratio, 4.0);
}

TEST(ModelSpecTest, SpecFromModuleMatchesParameters) {
  Rng rng(7);
  Mlp mlp({4, 8, 2}, &rng);
  auto spec = cluster::SpecFromModule("mlp", mlp);
  EXPECT_EQ(spec.NumParams(), 4u);
  EXPECT_EQ(spec.TotalNumel(), mlp.NumParameters());
  EXPECT_EQ(spec.params[0].numel, 4 * 8);
}

}  // namespace
}  // namespace ddpkit::nn
