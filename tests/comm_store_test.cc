#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "comm/store.h"

namespace ddpkit::comm {
namespace {

TEST(StoreTest, SetAndTryGet) {
  Store store;
  std::string value;
  EXPECT_FALSE(store.TryGet("k", &value));
  store.Set("k", "v");
  EXPECT_TRUE(store.TryGet("k", &value));
  EXPECT_EQ(value, "v");
  EXPECT_EQ(store.NumKeys(), 1u);
}

TEST(StoreTest, SetOverwrites) {
  Store store;
  store.Set("k", "a");
  store.Set("k", "b");
  EXPECT_EQ(store.Get("k"), "b");
}

TEST(StoreTest, GetBlocksUntilSet) {
  Store store;
  std::string got;
  std::thread reader([&] { got = store.Get("late"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  store.Set("late", "arrived");
  reader.join();
  EXPECT_EQ(got, "arrived");
}

TEST(StoreTest, AddIsAtomicAcrossThreads) {
  Store store;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) store.Add("counter", 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.Add("counter", 0), kThreads * kIncrements);
}

TEST(StoreTest, AddNegativeDelta) {
  Store store;
  store.Add("n", 10);
  EXPECT_EQ(store.Add("n", -3), 7);
}

TEST(StoreTest, DeleteKeyReportsPresence) {
  Store store;
  store.Set("k", "v");
  EXPECT_TRUE(store.DeleteKey("k"));
  std::string value;
  EXPECT_FALSE(store.TryGet("k", &value));
  EXPECT_FALSE(store.DeleteKey("k"));  // already gone
  EXPECT_FALSE(store.DeleteKey("never-set"));
  EXPECT_EQ(store.NumKeys(), 0u);
}

TEST(StoreTest, DeletePrefixRemovesOnlyMatchingKeys) {
  Store store;
  store.Set("epoch/v0/rank0", "a");
  store.Set("epoch/v0/rank1", "b");
  store.Set("epoch/v1/rank0", "c");
  store.Set("epoch", "bare");         // equal to a prefix of the others
  store.Set("epoch/v00/rank0", "d");  // shares "epoch/v0" as a string prefix

  EXPECT_EQ(store.DeletePrefix("epoch/v0/"), 2u);
  EXPECT_EQ(store.NumKeys(), 3u);
  std::string value;
  EXPECT_FALSE(store.TryGet("epoch/v0/rank0", &value));
  EXPECT_TRUE(store.TryGet("epoch/v1/rank0", &value));
  EXPECT_TRUE(store.TryGet("epoch", &value));
  EXPECT_TRUE(store.TryGet("epoch/v00/rank0", &value));

  EXPECT_EQ(store.DeletePrefix("no-such-prefix/"), 0u);
  EXPECT_EQ(store.DeletePrefix(""), 3u);  // empty prefix matches everything
  EXPECT_EQ(store.NumKeys(), 0u);
}

TEST(StoreTest, WaitForMultipleKeys) {
  Store store;
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    store.Wait({"a", "b", "c"});
    done = true;
  });
  store.Set("a", "1");
  store.Set("b", "2");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(done.load());
  store.Set("c", "3");
  waiter.join();
  EXPECT_TRUE(done.load());
}

}  // namespace
}  // namespace ddpkit::comm
