#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "comm/store.h"

namespace ddpkit::comm {
namespace {

TEST(StoreTest, SetAndTryGet) {
  Store store;
  std::string value;
  EXPECT_FALSE(store.TryGet("k", &value));
  store.Set("k", "v");
  EXPECT_TRUE(store.TryGet("k", &value));
  EXPECT_EQ(value, "v");
  EXPECT_EQ(store.NumKeys(), 1u);
}

TEST(StoreTest, SetOverwrites) {
  Store store;
  store.Set("k", "a");
  store.Set("k", "b");
  EXPECT_EQ(store.Get("k"), "b");
}

TEST(StoreTest, GetBlocksUntilSet) {
  Store store;
  std::string got;
  std::thread reader([&] { got = store.Get("late"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  store.Set("late", "arrived");
  reader.join();
  EXPECT_EQ(got, "arrived");
}

TEST(StoreTest, AddIsAtomicAcrossThreads) {
  Store store;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) store.Add("counter", 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.Add("counter", 0), kThreads * kIncrements);
}

TEST(StoreTest, AddNegativeDelta) {
  Store store;
  store.Add("n", 10);
  EXPECT_EQ(store.Add("n", -3), 7);
}

TEST(StoreTest, WaitForMultipleKeys) {
  Store store;
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    store.Wait({"a", "b", "c"});
    done = true;
  });
  store.Set("a", "1");
  store.Set("b", "2");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(done.load());
  store.Set("c", "3");
  waiter.join();
  EXPECT_TRUE(done.load());
}

}  // namespace
}  // namespace ddpkit::comm
