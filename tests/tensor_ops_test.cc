#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::kernels {
namespace {

TEST(KernelsTest, ElementwiseAddSubMul) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {3});
  Tensor b = Tensor::FromVector({4, -5, 6}, {3});
  Tensor sum = Add(a, b);
  Tensor diff = Sub(a, b);
  Tensor prod = Mul(a, b);
  EXPECT_DOUBLE_EQ(sum.FlatAt(1), -3.0);
  EXPECT_DOUBLE_EQ(diff.FlatAt(1), 7.0);
  EXPECT_DOUBLE_EQ(prod.FlatAt(2), 18.0);
}

TEST(KernelsTest, ScaleAndAxpy) {
  Tensor a = Tensor::FromVector({1, 2}, {2});
  Tensor s = Scale(a, 3.0);
  EXPECT_DOUBLE_EQ(s.FlatAt(1), 6.0);
  Tensor y = Tensor::FromVector({10, 20}, {2});
  Axpy(2.0, a, &y);
  EXPECT_DOUBLE_EQ(y.FlatAt(0), 12.0);
  EXPECT_DOUBLE_EQ(y.FlatAt(1), 24.0);
  ScaleInPlace(&y, 0.5);
  EXPECT_DOUBLE_EQ(y.FlatAt(0), 6.0);
}

TEST(KernelsTest, ReluAndBackward) {
  Tensor x = Tensor::FromVector({-1, 0, 2}, {3});
  Tensor y = Relu(x);
  EXPECT_DOUBLE_EQ(y.FlatAt(0), 0.0);
  EXPECT_DOUBLE_EQ(y.FlatAt(2), 2.0);
  Tensor g = ReluBackward(Tensor::Ones({3}), x);
  EXPECT_DOUBLE_EQ(g.FlatAt(0), 0.0);
  EXPECT_DOUBLE_EQ(g.FlatAt(1), 0.0);  // x == 0: gradient 0
  EXPECT_DOUBLE_EQ(g.FlatAt(2), 1.0);
}

TEST(KernelsTest, MatMulAgainstHandComputed) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, {2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At({0, 0}), 19.0);
  EXPECT_DOUBLE_EQ(c.At({0, 1}), 22.0);
  EXPECT_DOUBLE_EQ(c.At({1, 0}), 43.0);
  EXPECT_DOUBLE_EQ(c.At({1, 1}), 50.0);
}

TEST(KernelsTest, MatMulTransposedVariantsAgree) {
  Rng rng(21);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  Tensor b = Tensor::Randn({4, 5}, &rng);
  Tensor reference = MatMul(a, b);
  Tensor via_trans_a = MatMulTransA(Transpose2D(a), b);
  Tensor via_trans_b = MatMulTransB(a, Transpose2D(b));
  EXPECT_LT(MaxAbsDiff(reference, via_trans_a), 1e-5);
  EXPECT_LT(MaxAbsDiff(reference, via_trans_b), 1e-5);
}

TEST(KernelsTest, Transpose2D) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.size(0), 3);
  EXPECT_EQ(t.size(1), 2);
  EXPECT_DOUBLE_EQ(t.At({2, 1}), 6.0);
  EXPECT_DOUBLE_EQ(t.At({0, 1}), 4.0);
}

TEST(KernelsTest, RowBroadcastAndSumRows) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor bias = Tensor::FromVector({10, 20}, {2});
  Tensor out = AddRowBroadcast(a, bias);
  EXPECT_DOUBLE_EQ(out.At({0, 0}), 11.0);
  EXPECT_DOUBLE_EQ(out.At({1, 1}), 24.0);
  Tensor sums = SumRows(a);
  EXPECT_DOUBLE_EQ(sums.FlatAt(0), 4.0);
  EXPECT_DOUBLE_EQ(sums.FlatAt(1), 6.0);
}

TEST(KernelsTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor input = Tensor::FromVector({1, 2, 3, 4}, {1, 1, 2, 2});
  Tensor weight = Tensor::Ones({1, 1, 1, 1});
  Tensor out = Conv2d(input, weight, Conv2dArgs{1, 0});
  EXPECT_LT(MaxAbsDiff(out, input), 1e-7);
}

TEST(KernelsTest, Conv2dHandComputed3x3) {
  // All-ones 3x3 kernel with padding 1: each output = sum of 3x3
  // neighborhood.
  Tensor input = Tensor::FromVector({1, 2, 3, 4, 5, 6, 7, 8, 9},
                                    {1, 1, 3, 3});
  Tensor weight = Tensor::Ones({1, 1, 3, 3});
  Tensor out = Conv2d(input, weight, Conv2dArgs{1, 1});
  EXPECT_DOUBLE_EQ(out.At({0, 0, 1, 1}), 45.0);  // full sum at center
  EXPECT_DOUBLE_EQ(out.At({0, 0, 0, 0}), 1 + 2 + 4 + 5);
}

TEST(KernelsTest, Conv2dStrideShrinksOutput) {
  Rng rng(4);
  Tensor input = Tensor::Randn({2, 3, 8, 8}, &rng);
  Tensor weight = Tensor::Randn({4, 3, 3, 3}, &rng);
  Tensor out = Conv2d(input, weight, Conv2dArgs{2, 1});
  EXPECT_EQ(out.size(0), 2);
  EXPECT_EQ(out.size(1), 4);
  EXPECT_EQ(out.size(2), 4);
  EXPECT_EQ(out.size(3), 4);
}

TEST(KernelsTest, AvgPoolAndGlobalPool) {
  Tensor input = Tensor::FromVector({1, 2, 3, 4}, {1, 1, 2, 2});
  Tensor pooled = AvgPool2x2(input);
  EXPECT_EQ(pooled.numel(), 1);
  EXPECT_DOUBLE_EQ(pooled.FlatAt(0), 2.5);
  Tensor gap = GlobalAvgPool(input);
  EXPECT_DOUBLE_EQ(gap.At({0, 0}), 2.5);
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  Rng rng(6);
  Tensor logits = Tensor::Randn({5, 7}, &rng);
  Tensor probs = Softmax(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      const double p = probs.At({i, j});
      EXPECT_GE(p, 0.0);
      row_sum += p;
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST(KernelsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(8);
  Tensor logits = Tensor::Randn({4, 6}, &rng);
  Tensor lp = LogSoftmax(logits);
  Tensor p = Softmax(logits);
  for (int64_t i = 0; i < lp.numel(); ++i) {
    EXPECT_NEAR(lp.FlatAt(i), std::log(p.FlatAt(i)), 1e-4);
  }
}

TEST(KernelsTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromVector({1000.0f, 1001.0f}, {1, 2});
  Tensor p = Softmax(logits);
  EXPECT_FALSE(std::isnan(p.FlatAt(0)));
  EXPECT_NEAR(p.FlatAt(0) + p.FlatAt(1), 1.0, 1e-6);
}

TEST(KernelsTest, ArgMaxRows) {
  Tensor a = Tensor::FromVector({1, 5, 2, 9, 0, 3}, {2, 3});
  Tensor idx = ArgMaxRows(a);
  EXPECT_EQ(idx.data<int64_t>()[0], 1);
  EXPECT_EQ(idx.data<int64_t>()[1], 0);
}

TEST(KernelsTest, EmbeddingLookupAndBackward) {
  Tensor table = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {3, 2});
  Tensor idx = Tensor::FromVectorInt64({2, 0, 2}, {3});
  Tensor out = EmbeddingLookup(idx, table);
  EXPECT_DOUBLE_EQ(out.At({0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(out.At({1, 1}), 2.0);

  Tensor grad_out = Tensor::Ones({3, 2});
  Tensor grad_table = EmbeddingBackward(grad_out, idx, {3, 2});
  EXPECT_DOUBLE_EQ(grad_table.At({2, 0}), 2.0);  // index 2 hit twice
  EXPECT_DOUBLE_EQ(grad_table.At({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(grad_table.At({1, 0}), 0.0);
}

TEST(KernelsTest, SumAllMeanAll) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {4});
  EXPECT_DOUBLE_EQ(SumAll(a).Item(), 10.0);
  EXPECT_DOUBLE_EQ(MeanAll(a).Item(), 2.5);
}

TEST(KernelsTest, AllCloseAndMaxAbsDiff) {
  Tensor a = Tensor::FromVector({1, 2}, {2});
  Tensor b = Tensor::FromVector({1, 2.0001f}, {2});
  EXPECT_TRUE(AllClose(a, b, 1e-3, 1e-3));
  EXPECT_FALSE(AllClose(a, b, 1e-7, 1e-7));
  EXPECT_NEAR(MaxAbsDiff(a, b), 0.0001, 1e-5);
}

TEST(KernelsTest, GeluMatchesReferencePoints) {
  Tensor x = Tensor::FromVector({0.0f, 1.0f, -1.0f}, {3});
  Tensor y = Gelu(x);
  EXPECT_NEAR(y.FlatAt(0), 0.0, 1e-6);
  EXPECT_NEAR(y.FlatAt(1), 0.8412, 5e-3);
  EXPECT_NEAR(y.FlatAt(2), -0.1588, 5e-3);
}

}  // namespace
}  // namespace ddpkit::kernels
