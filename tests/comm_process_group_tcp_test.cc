// ProcessGroupTcp over loopback, in-process: every rank is a thread with
// its own group instance, rendezvousing through one shared in-memory Store
// (keys only — payload moves over real sockets). The headline property is
// the PR's cross-check gate in miniature: each wire schedule must be
// BIT-IDENTICAL to the simulated zoo (RunAllReduceRaw) on the same inputs,
// not merely numerically close. Plus the typed failure taxonomy: timeout,
// shape mismatch, abort/generation, and post-failure poisoning.
//
// All sockets bind port 0 and publish through the store, so the suite is
// port-collision-proof by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/algorithms.h"
#include "comm/fault_plan.h"
#include "comm/net_fault.h"
#include "comm/process_group_tcp.h"
#include "comm/store.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/virtual_clock.h"
#include "tensor/tensor.h"

namespace ddpkit::comm {
namespace {

class Latch {
 public:
  explicit Latch(int count) : count_(count) {}
  void CountDown() {
    MutexLock lock(&mu_);
    if (--count_ == 0) cv_.NotifyAll();
  }
  void Wait() {
    MutexLock lock(&mu_);
    while (count_ > 0) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ GUARDED_BY(mu_);
};

using Group = std::shared_ptr<ProcessGroupTcp>;

/// Spawns `world` rank threads, each with its own VirtualClock and TCP
/// group on a shared in-memory store, and runs `body(rank, group)`. A latch
/// holds every group alive until all bodies finish, so no rank's destructor
/// tears sockets out from under a straggler mid-collective.
void RunTcpWorld(int world, const ProcessGroupTcp::Options& options,
                 const std::function<void(int, const Group&)>& body) {
  Store store;
  Latch done(world);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < world; ++rank) {
    threads.emplace_back([&, rank] {
      sim::VirtualClock clock;
      Result<Group> group =
          ProcessGroupTcp::Create(&store, "test", rank, world, options, &clock);
      if (!group.ok()) {
        ADD_FAILURE() << "rank " << rank
                      << " bootstrap: " << group.status().ToString();
        done.CountDown();
        return;
      }
      body(rank, group.value());
      done.CountDown();
      done.Wait();  // keep the mesh alive until every rank is through
    });
  }
  for (auto& t : threads) t.join();
}

Tensor FromVec(const std::vector<float>& values) {
  return Tensor::FromVector(values, {static_cast<int64_t>(values.size())});
}

Tensor FromVecInt64(const std::vector<int64_t>& values) {
  return Tensor::FromVectorInt64(values,
                                 {static_cast<int64_t>(values.size())});
}

std::vector<std::vector<float>> MakeInputs(int world, int64_t n,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> bufs(static_cast<size_t>(world));
  for (auto& b : bufs) {
    b.resize(static_cast<size_t>(n));
    for (auto& x : b) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
  }
  return bufs;
}

// The wire schedules (kHierarchical is sim-only; kAuto swept separately).
const Algorithm kWireZoo[] = {Algorithm::kNaive, Algorithm::kRing,
                              Algorithm::kRingChunked,
                              Algorithm::kHalvingDoubling, Algorithm::kTree};

// The gate: for every schedule and several world sizes (including non
// powers of two and worlds bigger than the element remainder), the TCP
// all-reduce must produce exactly the bytes the simulated zoo produces.
TEST(ProcessGroupTcpTest, AllReduceBitExactVsSimZoo) {
  const int worlds[] = {2, 3, 5, 8};
  const int64_t n = 193;  // prime: uneven chunking in every schedule
  for (Algorithm algorithm : kWireZoo) {
    for (int world : worlds) {
      SCOPED_TRACE(std::string(AlgorithmName(algorithm)) + " world " +
                   std::to_string(world));
      const auto inputs = MakeInputs(
          world, n, 0xbeef + static_cast<uint64_t>(world));

      // Reference: the simulated data plane on a copy of the same inputs.
      auto reference = inputs;
      std::vector<float*> pointers;
      for (auto& b : reference) pointers.push_back(b.data());
      RunAllReduceRaw<float>(algorithm, ReduceOp::kSum, pointers, n);

      ProcessGroupTcp::Options options;
      options.algorithm = algorithm;
      std::vector<std::vector<float>> wire(static_cast<size_t>(world));
      RunTcpWorld(world, options, [&](int rank, const Group& group) {
        Tensor tensor = FromVec(inputs[static_cast<size_t>(rank)]);
        WorkHandle work = group->AllReduce(tensor, ReduceOp::kSum);
        ASSERT_TRUE(work->status().ok())
            << "rank " << rank << ": " << work->status().ToString();
        wire[static_cast<size_t>(rank)].assign(
            tensor.data<float>(), tensor.data<float>() + tensor.numel());
      });

      for (int rank = 0; rank < world; ++rank) {
        EXPECT_EQ(0, std::memcmp(reference[static_cast<size_t>(rank)].data(),
                                 wire[static_cast<size_t>(rank)].data(),
                                 static_cast<size_t>(n) * sizeof(float)))
            << "rank " << rank << " differs from the sim reference";
      }
    }
  }
}

// kAuto resolves per collective (message size x world through the sim
// selector); whatever it picks must still match the sim's kAuto result.
TEST(ProcessGroupTcpTest, AutoAlgorithmResolvesAndMatchesSim) {
  const int world = 4;
  const int64_t n = 4096;
  const auto inputs = MakeInputs(world, n, 0xa070);
  auto reference = inputs;
  std::vector<float*> pointers;
  for (auto& b : reference) pointers.push_back(b.data());
  RunAllReduceRaw<float>(Algorithm::kAuto, ReduceOp::kSum, pointers, n);

  ProcessGroupTcp::Options options;
  options.algorithm = Algorithm::kAuto;
  std::vector<std::vector<float>> wire(static_cast<size_t>(world));
  RunTcpWorld(world, options, [&](int rank, const Group& group) {
    Tensor tensor = FromVec(inputs[static_cast<size_t>(rank)]);
    WorkHandle work = group->AllReduce(tensor, ReduceOp::kSum);
    ASSERT_TRUE(work->status().ok()) << work->status().ToString();
    wire[static_cast<size_t>(rank)].assign(
        tensor.data<float>(), tensor.data<float>() + tensor.numel());
  });
  for (int rank = 0; rank < world; ++rank) {
    EXPECT_EQ(0, std::memcmp(reference[static_cast<size_t>(rank)].data(),
                             wire[static_cast<size_t>(rank)].data(),
                             static_cast<size_t>(n) * sizeof(float)));
  }
}

TEST(ProcessGroupTcpTest, MaxAndIntegerDtypesMatchSim) {
  const int world = 3;
  ProcessGroupTcp::Options options;
  options.algorithm = Algorithm::kRing;
  RunTcpWorld(world, options, [&](int rank, const Group& group) {
    // float32 max
    {
      std::vector<float> mine(64);
      for (size_t i = 0; i < mine.size(); ++i) {
        mine[i] = static_cast<float>((rank * 31 + static_cast<int>(i) * 7) %
                                     97) - 48.0f;
      }
      Tensor tensor = FromVec(mine);
      WorkHandle work = group->AllReduce(tensor, ReduceOp::kMax);
      ASSERT_TRUE(work->status().ok()) << work->status().ToString();
      for (int64_t i = 0; i < tensor.numel(); ++i) {
        float expected = -1e30f;
        for (int r = 0; r < world; ++r) {
          const float x = static_cast<float>(
              (r * 31 + static_cast<int>(i) * 7) % 97) - 48.0f;
          expected = std::max(expected, x);
        }
        EXPECT_EQ(expected, tensor.data<float>()[i]) << "element " << i;
      }
    }
    // int64 sum (associative: exact regardless of order)
    {
      std::vector<int64_t> mine(33);
      for (size_t i = 0; i < mine.size(); ++i) {
        mine[i] = (rank + 1) * 1000 + static_cast<int64_t>(i);
      }
      Tensor tensor = FromVecInt64(mine);
      WorkHandle work = group->AllReduce(tensor, ReduceOp::kSum);
      ASSERT_TRUE(work->status().ok()) << work->status().ToString();
      for (int64_t i = 0; i < tensor.numel(); ++i) {
        int64_t expected = 0;
        for (int r = 0; r < world; ++r) expected += (r + 1) * 1000 + i;
        EXPECT_EQ(expected, tensor.data<int64_t>()[i]);
      }
    }
    // uint8 bitwise-or (the used-parameter bitmap path)
    {
      Tensor tensor = Tensor::Zeros({8}, DType::kUInt8);
      tensor.data<uint8_t>()[rank] = static_cast<uint8_t>(1 << rank);
      WorkHandle work = group->AllReduce(tensor, ReduceOp::kBor);
      ASSERT_TRUE(work->status().ok()) << work->status().ToString();
      for (int r = 0; r < world; ++r) {
        EXPECT_EQ(static_cast<uint8_t>(1 << r), tensor.data<uint8_t>()[r]);
      }
    }
  });
}

TEST(ProcessGroupTcpTest, OtherCollectivesMatchReference) {
  const int world = 4;
  const int64_t n = 24;
  const auto inputs = MakeInputs(world, n, 0xc0);
  ProcessGroupTcp::Options options;
  options.algorithm = Algorithm::kRing;
  RunTcpWorld(world, options, [&](int rank, const Group& group) {
    // Broadcast: everyone ends with root's buffer.
    {
      Tensor tensor = FromVec(inputs[static_cast<size_t>(rank)]);
      WorkHandle work = group->Broadcast(tensor, /*root=*/2);
      ASSERT_TRUE(work->status().ok()) << work->status().ToString();
      EXPECT_EQ(0, std::memcmp(inputs[2].data(), tensor.data<float>(),
                               static_cast<size_t>(n) * sizeof(float)));
    }
    // AllGather: rank-order concatenation everywhere.
    {
      Tensor input = FromVec(inputs[static_cast<size_t>(rank)]);
      Tensor output = Tensor::Zeros({world * n});
      WorkHandle work = group->AllGather(input, output);
      ASSERT_TRUE(work->status().ok()) << work->status().ToString();
      for (int r = 0; r < world; ++r) {
        EXPECT_EQ(0, std::memcmp(inputs[static_cast<size_t>(r)].data(),
                                 output.data<float>() + r * n,
                                 static_cast<size_t>(n) * sizeof(float)))
            << "gathered slot " << r;
      }
    }
    // Reduce to root 1: ascending-order sum lands on the root only.
    {
      Tensor tensor = FromVec(inputs[static_cast<size_t>(rank)]);
      WorkHandle work = group->Reduce(tensor, /*root=*/1, ReduceOp::kSum);
      ASSERT_TRUE(work->status().ok()) << work->status().ToString();
      if (rank == 1) {
        for (int64_t i = 0; i < n; ++i) {
          // Same ascending combine order as the sim reference.
          float expected = inputs[0][static_cast<size_t>(i)];
          for (int r = 1; r < world; ++r) {
            expected += inputs[static_cast<size_t>(r)][static_cast<size_t>(i)];
          }
          EXPECT_EQ(expected, tensor.data<float>()[i]) << "element " << i;
        }
      }
    }
    // ReduceScatter: rank r owns the fully-reduced chunk r. Reference is
    // the sim ring phase 1 on the same inputs.
    {
      std::vector<Tensor> ref_inputs, ref_outputs;
      for (int r = 0; r < world; ++r) {
        ref_inputs.push_back(
            FromVec(inputs[static_cast<size_t>(r)]));
        ref_outputs.push_back(Tensor::Zeros({n / world}));
      }
      RunReduceScatter(ReduceOp::kSum, ref_inputs, ref_outputs);

      Tensor input = FromVec(inputs[static_cast<size_t>(rank)]);
      Tensor output = Tensor::Zeros({n / world});
      WorkHandle work = group->ReduceScatter(input, output, ReduceOp::kSum);
      ASSERT_TRUE(work->status().ok()) << work->status().ToString();
      EXPECT_EQ(0,
                std::memcmp(ref_outputs[static_cast<size_t>(rank)]
                                .data<float>(),
                            output.data<float>(),
                            static_cast<size_t>(n / world) * sizeof(float)));
    }
    // Gather to root 3.
    {
      Tensor input = FromVec(inputs[static_cast<size_t>(rank)]);
      Tensor output = Tensor::Zeros({world * n});
      WorkHandle work = group->Gather(input, output, /*root=*/3);
      ASSERT_TRUE(work->status().ok()) << work->status().ToString();
      if (rank == 3) {
        for (int r = 0; r < world; ++r) {
          EXPECT_EQ(0, std::memcmp(inputs[static_cast<size_t>(r)].data(),
                                   output.data<float>() + r * n,
                                   static_cast<size_t>(n) * sizeof(float)));
        }
      }
    }
    group->Barrier();  // and the token star runs clean on a healthy mesh
  });
}

// A peer that never issues the collective: the issuing rank times out with
// the typed verdict (not a hang, not an abort), and the group is poisoned —
// the next collective fails fast as kRankFailure.
TEST(ProcessGroupTcpTest, MissingPeerTimesOutTypedThenPoisons) {
  Store store;
  ProcessGroupTcp::Options options;
  options.collective_timeout_seconds = 0.5;
  Latch done(2);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 2; ++rank) {
    threads.emplace_back([&, rank] {
      sim::VirtualClock clock;
      Result<Group> group =
          ProcessGroupTcp::Create(&store, "timeout", rank, 2, options, &clock);
      ASSERT_TRUE(group.ok()) << group.status().ToString();
      if (rank == 0) {
        Tensor tensor = Tensor::Ones({16});
        WorkHandle work = group.value()->AllReduce(tensor, ReduceOp::kSum);
        EXPECT_EQ(WorkError::kTimeout, work->error())
            << work->error_message();
        EXPECT_EQ(StatusCode::kTimedOut, work->status().code());

        WorkHandle after = group.value()->AllReduce(tensor, ReduceOp::kSum);
        EXPECT_EQ(WorkError::kRankFailure, after->error())
            << "poisoned group must fail fast, got: "
            << after->error_message();
      }
      // Rank 1 issues nothing; both wait so destructors don't race the
      // timing-out collective.
      done.CountDown();
      done.Wait();
    });
  }
  for (auto& t : threads) t.join();
}

// Ranks disagreeing on the collective's shape: the neighbour header
// exchange catches it on both sides as kShapeMismatch before any payload
// moves.
TEST(ProcessGroupTcpTest, ShapeMismatchIsTypedOnBothSides) {
  Store store;
  ProcessGroupTcp::Options options;
  options.collective_timeout_seconds = 5.0;
  Latch done(2);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 2; ++rank) {
    threads.emplace_back([&, rank] {
      sim::VirtualClock clock;
      Result<Group> group =
          ProcessGroupTcp::Create(&store, "shape", rank, 2, options, &clock);
      ASSERT_TRUE(group.ok()) << group.status().ToString();
      Tensor tensor = Tensor::Ones({rank == 0 ? 8 : 9});
      WorkHandle work = group.value()->AllReduce(tensor, ReduceOp::kSum);
      EXPECT_EQ(WorkError::kShapeMismatch, work->error())
          << "rank " << rank << ": " << work->error_message();
      done.CountDown();
      done.Wait();
    });
  }
  for (auto& t : threads) t.join();
}

// AbortGroup from another thread (the elastic-recovery regroup path): the
// in-flight collective wakes via the abort pipe and fails as
// kInvalidGeneration, superseded_by() records the successor, and later
// collectives fail the same way — no poisoning into kRankFailure, because
// the caller is expected to regroup, not to declare the peer dead.
TEST(ProcessGroupTcpTest, AbortUnblocksInflightCollectiveTyped) {
  Store store;
  ProcessGroupTcp::Options options;
  options.collective_timeout_seconds = 30.0;  // abort must win, not timeout
  Latch ready(2);
  Latch done(2);
  Group groups[2];
  std::thread ranks[2];
  for (int rank = 0; rank < 2; ++rank) {
    ranks[rank] = std::thread([&, rank] {
      sim::VirtualClock clock;
      Result<Group> group =
          ProcessGroupTcp::Create(&store, "abort", rank, 2, options, &clock);
      ASSERT_TRUE(group.ok()) << group.status().ToString();
      groups[rank] = group.value();
      ready.CountDown();
      if (rank == 0) {
        Tensor tensor = Tensor::Ones({16});
        WorkHandle work = groups[0]->AllReduce(tensor, ReduceOp::kSum);
        EXPECT_EQ(WorkError::kInvalidGeneration, work->error())
            << work->error_message();
        EXPECT_EQ(1u, groups[0]->superseded_by());

        WorkHandle after = groups[0]->AllReduce(tensor, ReduceOp::kSum);
        EXPECT_EQ(WorkError::kInvalidGeneration, after->error());
      }
      done.CountDown();
      done.Wait();
    });
  }
  ready.Wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  groups[0]->AbortGroup(1, "superseded by test generation 1");
  for (auto& t : ranks) t.join();
}

// --- connection supervisor: reconnect, replay, heartbeat -------------------

/// RunTcpWorld with one shared WireFaultPlan and a per-rank injector (one
/// per process in production; one per rank thread here), supervisor options
/// included. `tweak` edits the options every rank shares.
void RunChaosWorld(
    int world, const WireFaultPlan& plan, ProcessGroupTcp::Options options,
    const std::function<void(int, const Group&, WireFaultInjector&)>& body) {
  Store store;
  Latch done(world);
  std::vector<std::unique_ptr<WireFaultInjector>> injectors;
  for (int rank = 0; rank < world; ++rank) {
    injectors.push_back(std::make_unique<WireFaultInjector>(&plan, rank));
  }
  std::vector<std::thread> threads;
  for (int rank = 0; rank < world; ++rank) {
    threads.emplace_back([&, rank] {
      sim::VirtualClock clock;
      ProcessGroupTcp::Options mine = options;
      mine.fault_injector = injectors[static_cast<size_t>(rank)].get();
      Result<Group> group =
          ProcessGroupTcp::Create(&store, "chaos", rank, world, mine, &clock);
      if (!group.ok()) {
        ADD_FAILURE() << "rank " << rank
                      << " bootstrap: " << group.status().ToString();
        done.CountDown();
        return;
      }
      body(rank, group.value(), *injectors[static_cast<size_t>(rank)]);
      done.CountDown();
      done.Wait();
    });
  }
  for (auto& t : threads) t.join();
}

ProcessGroupTcp::Options SupervisedOptions() {
  ProcessGroupTcp::Options options;
  options.algorithm = Algorithm::kRing;
  options.collective_timeout_seconds = 20.0;
  options.max_reconnect_attempts = 5;
  options.reconnect_timeout_seconds = 2.0;
  options.reconnect_backoff_seconds = 0.01;
  return options;
}

// An injected connection reset mid-collective: both ranks classify the
// failure transient, rebuild the mesh at the same generation, replay the
// same sequence number from the payload snapshot — and the results of every
// round are bit-identical to the fault-free sim reference.
TEST(ProcessGroupTcpSupervisorTest, ResetMidCollectiveReconnectsAndReplays) {
  const int world = 2;
  const int64_t n = 96;
  WireFaultPlan plan;
  plan.ResetConnection(0, 1, /*at_op=*/1);  // bootstrap (op 0 stamp) clean

  std::vector<std::vector<std::vector<float>>> rounds;
  for (uint64_t r = 0; r < 3; ++r) {
    rounds.push_back(MakeInputs(world, n, 0x5e7 + r));
  }
  std::vector<std::vector<std::vector<float>>> reference = rounds;
  for (auto& round : reference) {
    std::vector<float*> pointers;
    for (auto& b : round) pointers.push_back(b.data());
    RunAllReduceRaw<float>(Algorithm::kRing, ReduceOp::kSum, pointers, n);
  }

  std::vector<uint64_t> reconnects(static_cast<size_t>(world), 0);
  std::vector<std::vector<std::vector<float>>> wire(
      rounds.size(),
      std::vector<std::vector<float>>(static_cast<size_t>(world)));
  RunChaosWorld(
      world, plan, SupervisedOptions(),
      [&](int rank, const Group& group, WireFaultInjector&) {
        for (size_t r = 0; r < rounds.size(); ++r) {
          Tensor tensor = FromVec(rounds[r][static_cast<size_t>(rank)]);
          WorkHandle work = group->AllReduce(tensor, ReduceOp::kSum);
          ASSERT_TRUE(work->status().ok())
              << "rank " << rank << " round " << r << ": "
              << work->status().ToString();
          wire[r][static_cast<size_t>(rank)].assign(
              tensor.data<float>(), tensor.data<float>() + tensor.numel());
        }
        reconnects[static_cast<size_t>(rank)] = group->reconnects();
      });

  for (size_t r = 0; r < rounds.size(); ++r) {
    for (int rank = 0; rank < world; ++rank) {
      EXPECT_EQ(0, std::memcmp(reference[r][static_cast<size_t>(rank)].data(),
                               wire[r][static_cast<size_t>(rank)].data(),
                               static_cast<size_t>(n) * sizeof(float)))
          << "round " << r << " rank " << rank;
    }
  }
  // The rank whose send was reset re-meshed at least once; its peer saw the
  // EOF and joined the re-mesh (so it may or may not count its own).
  EXPECT_GE(reconnects[0] + reconnects[1], 1u);
}

// A two-way partition that heals after a bounded number of blackholed
// operations: the supervisor's reconnect attempts burn the heal budget
// deterministically, the mesh comes back, the interrupted collective
// replays, and the results stay bit-exact.
TEST(ProcessGroupTcpSupervisorTest, PartitionHealsViaReconnectBitExact) {
  const int world = 2;
  const int64_t n = 64;
  WireFaultPlan plan;
  plan.PartitionTwoWay(0, 1, /*from_op=*/1, /*heal_after_hits=*/2);
  plan.blackhole_cap_seconds = 0.02;

  std::vector<std::vector<std::vector<float>>> rounds;
  for (uint64_t r = 0; r < 2; ++r) {
    rounds.push_back(MakeInputs(world, n, 0x8ea1 + r));
  }
  std::vector<std::vector<std::vector<float>>> reference = rounds;
  for (auto& round : reference) {
    std::vector<float*> pointers;
    for (auto& b : round) pointers.push_back(b.data());
    RunAllReduceRaw<float>(Algorithm::kRing, ReduceOp::kSum, pointers, n);
  }

  std::vector<uint64_t> reconnects(static_cast<size_t>(world), 0);
  std::vector<std::vector<std::vector<float>>> wire(
      rounds.size(),
      std::vector<std::vector<float>>(static_cast<size_t>(world)));
  RunChaosWorld(
      world, plan, SupervisedOptions(),
      [&](int rank, const Group& group, WireFaultInjector&) {
        for (size_t r = 0; r < rounds.size(); ++r) {
          Tensor tensor = FromVec(rounds[r][static_cast<size_t>(rank)]);
          WorkHandle work = group->AllReduce(tensor, ReduceOp::kSum);
          ASSERT_TRUE(work->status().ok())
              << "rank " << rank << " round " << r << ": "
              << work->status().ToString();
          wire[r][static_cast<size_t>(rank)].assign(
              tensor.data<float>(), tensor.data<float>() + tensor.numel());
        }
        reconnects[static_cast<size_t>(rank)] = group->reconnects();
      });

  for (size_t r = 0; r < rounds.size(); ++r) {
    for (int rank = 0; rank < world; ++rank) {
      EXPECT_EQ(0, std::memcmp(reference[r][static_cast<size_t>(rank)].data(),
                               wire[r][static_cast<size_t>(rank)].data(),
                               static_cast<size_t>(n) * sizeof(float)))
          << "round " << r << " rank " << rank;
    }
  }
  EXPECT_GE(reconnects[0] + reconnects[1], 1u);
}

// A partition that never heals: the reconnect budget exhausts, the failure
// surfaces typed (timeout or rank-failure, never a hang), and the group is
// poisoned — exactly the signal DDP::Recover regroups on.
TEST(ProcessGroupTcpSupervisorTest, PersistentPartitionExhaustsThenPoisons) {
  const int world = 2;
  WireFaultPlan plan;
  plan.PartitionTwoWay(0, 1, /*from_op=*/1);  // heal_after_hits 0: forever
  plan.blackhole_cap_seconds = 0.01;

  ProcessGroupTcp::Options options = SupervisedOptions();
  options.collective_timeout_seconds = 2.0;
  options.max_reconnect_attempts = 2;
  options.reconnect_timeout_seconds = 0.2;

  RunChaosWorld(
      world, plan, options,
      [&](int rank, const Group& group, WireFaultInjector&) {
        Tensor warm = Tensor::Ones({8});
        WorkHandle ok = group->AllReduce(warm, ReduceOp::kSum);
        ASSERT_TRUE(ok->status().ok())
            << "rank " << rank << ": " << ok->status().ToString();

        Tensor tensor = Tensor::Ones({8});
        WorkHandle work = group->AllReduce(tensor, ReduceOp::kSum);
        EXPECT_FALSE(work->status().ok()) << "rank " << rank;
        EXPECT_TRUE(work->error() == WorkError::kTimeout ||
                    work->error() == WorkError::kRankFailure)
            << "rank " << rank << ": " << work->error_message();

        WorkHandle after = group->AllReduce(tensor, ReduceOp::kSum);
        EXPECT_EQ(WorkError::kRankFailure, after->error())
            << "poisoned group must fail fast on rank " << rank << ", got: "
            << after->error_message();
        EXPECT_GE(group->reconnects(), 0u);  // attempts were made, all vain
      });
}

// One-way partition under heartbeat probing: the starved side (and only
// the starved side) records misses — the detector's view is asymmetric,
// exactly like an asymmetric route failure.
TEST(ProcessGroupTcpSupervisorTest, HeartbeatMissesAreAsymmetric) {
  const int world = 2;
  WireFaultPlan plan;
  plan.PartitionOneWay(0, 1, /*from_op=*/1);  // rank 0's pings vanish
  plan.blackhole_cap_seconds = 0.01;

  ProcessGroupTcp::Options options;  // unsupervised: detector only
  options.heartbeat_interval_seconds = 0.04;
  options.heartbeat_miss_intervals = 3;

  std::vector<uint64_t> misses(static_cast<size_t>(world), 0);
  RunChaosWorld(
      world, plan, options,
      [&](int rank, const Group& group, WireFaultInjector& injector) {
        // Activate the partition after bootstrap (the stamp a collective
        // at seq 1 would apply).
        injector.set_op_index(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(600));
        misses[static_cast<size_t>(rank)] = group->heartbeat_misses();
      });
  EXPECT_EQ(misses[0], 0u) << "rank 0 still hears rank 1's pings";
  EXPECT_GE(misses[1], 1u) << "rank 1 must notice rank 0 went silent";
}

}  // namespace
}  // namespace ddpkit::comm
