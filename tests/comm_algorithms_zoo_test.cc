#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "comm/algorithms.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/vec.h"
#include "sim/collective_algo.h"
#include "sim/topology.h"

namespace ddpkit::comm {
namespace {

/// Restores the default pool size when a test exits.
class PoolSizeGuard {
 public:
  ~PoolSizeGuard() { ThreadPool::SetNumThreads(previous_); }

 private:
  int previous_ = ThreadPool::Global().num_threads();
};

template <typename T>
std::vector<std::vector<T>> MakeBuffers(int world, int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<T>> bufs(static_cast<size_t>(world));
  for (auto& b : bufs) {
    b.resize(static_cast<size_t>(n));
    for (auto& x : b) x = static_cast<T>(rng.Uniform(-2.0, 2.0));
  }
  return bufs;
}

template <typename T>
std::vector<T*> Pointers(std::vector<std::vector<T>>* bufs) {
  std::vector<T*> ps;
  for (auto& b : *bufs) ps.push_back(b.data());
  return ps;
}

/// Runs `algorithm` on a fresh copy of `inputs` and returns all ranks'
/// output buffers.
template <typename T>
std::vector<std::vector<T>> RunZoo(Algorithm algorithm, ReduceOp op,
                                const std::vector<std::vector<T>>& inputs,
                                int64_t n, int ranks_per_node = 0) {
  std::vector<std::vector<T>> bufs = inputs;
  std::vector<T*> ps = Pointers(&bufs);
  RunAllReduceRaw<T>(algorithm, op, ps, n, ranks_per_node);
  return bufs;
}

template <typename T>
void ExpectAllRanksBitIdentical(const std::vector<std::vector<T>>& out) {
  for (size_t r = 1; r < out.size(); ++r) {
    ASSERT_EQ(out[0].size(), out[r].size());
    EXPECT_EQ(0, std::memcmp(out[0].data(), out[r].data(),
                             out[0].size() * sizeof(T)))
        << "rank " << r << " differs from rank 0";
  }
}

// The zoo variants under property test. kAuto is included so the selector's
// resolution path is swept too; kNaive is the reference.
const Algorithm kZoo[] = {Algorithm::kRing, Algorithm::kRingChunked,
                          Algorithm::kHalvingDoubling,
                          Algorithm::kHierarchical, Algorithm::kAuto};

class ZooAlgorithmTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, int, int64_t>> {};

// Float sum: every variant must agree with kNaive within accumulation-order
// rounding, and all ranks must hold bit-identical buffers.
TEST_P(ZooAlgorithmTest, FloatSumMatchesNaive) {
  auto [algorithm, world, n] = GetParam();
  const auto inputs = MakeBuffers<float>(
      world, n, 0xf00 + static_cast<uint64_t>(world * 10000 + n));
  const auto naive = RunZoo(Algorithm::kNaive, ReduceOp::kSum, inputs, n);
  const auto got = RunZoo(algorithm, ReduceOp::kSum, inputs, n);
  ExpectAllRanksBitIdentical(got);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(naive[0][static_cast<size_t>(i)],
                got[0][static_cast<size_t>(i)], 1e-4 * world)
        << "element " << i;
  }
}

TEST_P(ZooAlgorithmTest, DoubleSumMatchesNaive) {
  auto [algorithm, world, n] = GetParam();
  const auto inputs = MakeBuffers<double>(
      world, n, 0xd00 + static_cast<uint64_t>(world * 10000 + n));
  const auto naive = RunZoo(Algorithm::kNaive, ReduceOp::kSum, inputs, n);
  const auto got = RunZoo(algorithm, ReduceOp::kSum, inputs, n);
  ExpectAllRanksBitIdentical(got);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(naive[0][static_cast<size_t>(i)],
                got[0][static_cast<size_t>(i)], 1e-12 * world)
        << "element " << i;
  }
}

// Max is order-insensitive over ordinary values, so every variant must be
// bit-exact against kNaive, not merely close.
TEST_P(ZooAlgorithmTest, FloatMaxBitExactVsNaive) {
  auto [algorithm, world, n] = GetParam();
  const auto inputs = MakeBuffers<float>(
      world, n, 0xa0 + static_cast<uint64_t>(world * 10000 + n));
  const auto naive = RunZoo(Algorithm::kNaive, ReduceOp::kMax, inputs, n);
  const auto got = RunZoo(algorithm, ReduceOp::kMax, inputs, n);
  ExpectAllRanksBitIdentical(got);
  EXPECT_EQ(0, std::memcmp(naive[0].data(), got[0].data(),
                           static_cast<size_t>(n) * sizeof(float)));
}

// Integer sums are associative, so all variants must agree exactly.
TEST_P(ZooAlgorithmTest, Int64SumExact) {
  auto [algorithm, world, n] = GetParam();
  std::vector<std::vector<int64_t>> inputs(static_cast<size_t>(world));
  Rng rng(0x17 + static_cast<uint64_t>(world * 10000 + n));
  for (auto& b : inputs) {
    b.resize(static_cast<size_t>(n));
    for (auto& x : b) {
      x = static_cast<int64_t>(rng.UniformInt(2000)) - 1000;
    }
  }
  const auto naive = RunZoo(Algorithm::kNaive, ReduceOp::kSum, inputs, n);
  const auto got = RunZoo(algorithm, ReduceOp::kSum, inputs, n);
  ExpectAllRanksBitIdentical(got);
  EXPECT_EQ(naive[0], got[0]);
}

// The combine-order contract: each variant's result is a pure function of
// (inputs, algorithm) — never of the intra-op pool size. Swept at 1, 2 and
// 8 threads and compared bitwise.
TEST_P(ZooAlgorithmTest, BitExactAcrossThreadCounts) {
  auto [algorithm, world, n] = GetParam();
  PoolSizeGuard guard;
  const auto inputs = MakeBuffers<float>(
      world, n, 0xbe + static_cast<uint64_t>(world * 10000 + n));
  ThreadPool::SetNumThreads(1);
  const auto ref = RunZoo(algorithm, ReduceOp::kSum, inputs, n);
  for (const int threads : {2, 8}) {
    ThreadPool::SetNumThreads(threads);
    const auto got = RunZoo(algorithm, ReduceOp::kSum, inputs, n);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectAllRanksBitIdentical(got);
    for (size_t r = 0; r < got.size(); ++r) {
      EXPECT_EQ(0, std::memcmp(ref[r].data(), got[r].data(),
                               static_cast<size_t>(n) * sizeof(float)))
          << "rank " << r << " differs from 1-thread run";
    }
  }
}

std::string ZooParamName(
    const ::testing::TestParamInfo<std::tuple<Algorithm, int, int64_t>>&
        info) {
  return std::string(AlgorithmName(std::get<0>(info.param))) + "_w" +
         std::to_string(std::get<1>(info.param)) + "_n" +
         std::to_string(std::get<2>(info.param));
}

// Odd worlds (3, 5, 7) stress non-power-of-two halving-doubling folding and
// non-divisible ring chunking; n = 0 exercises the zero-length contract and
// n = 4097 a many-chunk split that never divides evenly.
INSTANTIATE_TEST_SUITE_P(
    Sweep, ZooAlgorithmTest,
    ::testing::Combine(
        ::testing::ValuesIn(kZoo),
        ::testing::Values(2, 3, 4, 5, 7, 8),
        ::testing::Values(int64_t{0}, int64_t{1}, int64_t{5}, int64_t{63},
                          int64_t{1000}, int64_t{4097})),
    ZooParamName);

// Hierarchical must hold for every node-shape, including ranks_per_node
// values that do not divide the world and the two degenerate shapes
// (everyone on one node / one rank per node).
TEST(HierarchicalShapeTest, AllNodeShapesMatchNaive) {
  const int world = 8;
  const int64_t n = 1000;
  const auto inputs = MakeBuffers<float>(world, n, 0x8e11);
  const auto naive = RunZoo(Algorithm::kNaive, ReduceOp::kSum, inputs, n);
  for (const int rpn : {1, 2, 3, 5, 8, 16}) {
    const auto got =
        RunZoo(Algorithm::kHierarchical, ReduceOp::kSum, inputs, n, rpn);
    SCOPED_TRACE("ranks_per_node=" + std::to_string(rpn));
    ExpectAllRanksBitIdentical(got);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(naive[0][static_cast<size_t>(i)],
                  got[0][static_cast<size_t>(i)], 1e-4 * world);
    }
  }
}

// On a single host the hierarchical algorithm degenerates to exactly the
// naive combine order, so the match is bitwise, not approximate.
TEST(HierarchicalShapeTest, SingleNodeIsBitExactNaive) {
  const int world = 7;
  const int64_t n = 4097;
  const auto inputs = MakeBuffers<float>(world, n, 0x51);
  const auto naive = RunZoo(Algorithm::kNaive, ReduceOp::kSum, inputs, n);
  const auto got =
      RunZoo(Algorithm::kHierarchical, ReduceOp::kSum, inputs, n, world);
  EXPECT_EQ(0, std::memcmp(naive[0].data(), got[0].data(),
                           static_cast<size_t>(n) * sizeof(float)));
}

// Chunked ring with one chunk per rank is the classic ring: bitwise equal.
TEST(RingChunkedTest, SingleChunkPerRankIsClassicRing) {
  // RunAllReduce(kRing) routes through RingAllReduce with chunks_per_rank=1;
  // this pins that the refactor kept the historical ring order.
  const int world = 5;
  const int64_t n = 4097;
  const auto inputs = MakeBuffers<float>(world, n, 0x4411);
  const auto ring = RunZoo(Algorithm::kRing, ReduceOp::kSum, inputs, n);
  ExpectAllRanksBitIdentical(ring);
  // And the chunked variant differs only by rounding, never by more.
  const auto chunked = RunZoo(Algorithm::kRingChunked, ReduceOp::kSum, inputs, n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ring[0][static_cast<size_t>(i)],
                chunked[0][static_cast<size_t>(i)], 1e-4 * world);
  }
}

// The SIMD dispatch level must never change collective results: sweep the
// zoo at every level the host supports and require bitwise equality.
TEST(ZooSimdTest, ResultsBitExactAcrossSimdLevels) {
  const int world = 5;
  const int64_t n = 4097;
  const auto inputs = MakeBuffers<float>(world, n, 0x51d);
  const vec::Level prev = vec::ActiveLevel();
  for (const Algorithm algo : kZoo) {
    vec::SetLevelForTesting(vec::Level::kScalar);
    const auto ref = RunZoo(algo, ReduceOp::kSum, inputs, n);
    for (const vec::Level level :
         {vec::Level::kAvx2, vec::Level::kAvx512}) {
      if (vec::DetectedLevel() < level) continue;
      vec::SetLevelForTesting(level);
      const auto got = RunZoo(algo, ReduceOp::kSum, inputs, n);
      SCOPED_TRACE(std::string(AlgorithmName(algo)) + " level=" +
                   vec::LevelName(level));
      for (size_t r = 0; r < got.size(); ++r) {
        EXPECT_EQ(0, std::memcmp(ref[r].data(), got[r].data(),
                                 static_cast<size_t>(n) * sizeof(float)));
      }
    }
  }
  vec::SetLevelForTesting(prev);
}

// The auto-selector's dispatch table, pinned: tiny worlds -> naive, small
// messages -> halving-doubling, multi-host -> hierarchical, else chunked
// ring.
TEST(AutoSelectorTest, DispatchTable) {
  using sim::CollectiveAlgorithm;
  sim::Topology single;  // 8 GPUs on one host by default
  EXPECT_EQ(CollectiveAlgorithm::kNaive,
            sim::SelectAllReduceAlgorithm(1 << 20, 2, single));
  EXPECT_EQ(CollectiveAlgorithm::kHalvingDoubling,
            sim::SelectAllReduceAlgorithm(sim::kSmallAllReduceBytes - 1, 8,
                                          single));
  EXPECT_EQ(CollectiveAlgorithm::kRingChunked,
            sim::SelectAllReduceAlgorithm(sim::kSmallAllReduceBytes, 8,
                                          single));
  EXPECT_EQ(CollectiveAlgorithm::kHierarchical,
            sim::SelectAllReduceAlgorithm(25 << 20, 16, single));
  // Resolution is idempotent for concrete algorithms.
  EXPECT_EQ(CollectiveAlgorithm::kRing,
            sim::ResolveAllReduceAlgorithm(CollectiveAlgorithm::kRing,
                                           25 << 20, 16, single));
}

}  // namespace
}  // namespace ddpkit::comm
