#include <gtest/gtest.h>

#include <cmath>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::nn {
namespace {

TEST(LinearTest, OutputShapeAndValue) {
  Rng rng(1);
  Linear layer(3, 2, &rng);
  // Overwrite weights to known values: y = xW^T + b.
  layer.weight().CopyFrom(Tensor::FromVector({1, 0, 0, 0, 1, 0}, {2, 3}));
  layer.bias().CopyFrom(Tensor::FromVector({10, 20}, {2}));
  Tensor x = Tensor::FromVector({1, 2, 3}, {1, 3});
  Tensor out = layer.Forward(x);
  EXPECT_DOUBLE_EQ(out.At({0, 0}), 11.0);
  EXPECT_DOUBLE_EQ(out.At({0, 1}), 22.0);
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(2);
  Linear layer(3, 2, &rng, /*bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  EXPECT_FALSE(layer.bias().defined());
  Tensor out = layer.Forward(Tensor::Zeros({1, 3}));
  EXPECT_DOUBLE_EQ(out.At({0, 0}), 0.0);
}

TEST(Conv2dTest, ShapeWithStridePadding) {
  Rng rng(3);
  Conv2d conv(3, 8, 3, &rng, /*stride=*/2, /*padding=*/1);
  Tensor out = conv.Forward(Tensor::Randn({2, 3, 8, 8}, &rng));
  EXPECT_EQ(out.size(0), 2);
  EXPECT_EQ(out.size(1), 8);
  EXPECT_EQ(out.size(2), 4);
  EXPECT_EQ(out.size(3), 4);
}

TEST(BatchNormTest, NormalizesToZeroMeanUnitVar) {
  Rng rng(4);
  BatchNorm2d bn(3);
  Tensor x = Tensor::Randn({8, 3, 4, 4}, &rng);
  kernels::ScaleInPlace(&x, 5.0);  // large variance input
  Tensor out = bn.Forward(x);
  // Per-channel output should be ~N(0,1) since gamma=1, beta=0.
  const int64_t m = 8 * 4 * 4;
  for (int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int64_t n = 0; n < 8; ++n) {
      for (int64_t h = 0; h < 4; ++h) {
        for (int64_t w = 0; w < 4; ++w) {
          const double v = out.At({n, c, h, w});
          sum += v;
          sq += v * v;
        }
      }
    }
    EXPECT_NEAR(sum / m, 0.0, 1e-4);
    EXPECT_NEAR(sq / m, 1.0, 1e-3);
  }
}

TEST(BatchNormTest, RunningStatsUpdateInTraining) {
  Rng rng(5);
  BatchNorm2d bn(2);
  Tensor before_mean = bn.running_mean().Clone();
  Tensor x = Tensor::Full({4, 2, 2, 2}, 3.0);
  bn.Forward(x);
  // running_mean moves towards 3.0 by momentum 0.1.
  EXPECT_NEAR(bn.running_mean().FlatAt(0), 0.3, 1e-5);
  EXPECT_NEAR(before_mean.FlatAt(0), 0.0, 1e-7);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  Rng rng(6);
  BatchNorm2d bn(1);
  // Prime running stats.
  for (int i = 0; i < 50; ++i) {
    bn.Forward(Tensor::Full({4, 1, 2, 2}, 2.0));
  }
  bn.SetTraining(false);
  Tensor out = bn.Forward(Tensor::Full({1, 1, 2, 2}, 2.0));
  // Input approximately equals the running mean -> output near beta = 0.
  // (With constant input the running variance decays toward eps, inflating
  // the normalized residual; a loose bound suffices.)
  EXPECT_NEAR(out.FlatAt(0), 0.0, 0.3);
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(7);
  LayerNorm ln(8);
  Tensor x = Tensor::Randn({4, 8}, &rng);
  Tensor out = ln.Forward(x);
  for (int64_t i = 0; i < 4; ++i) {
    double sum = 0.0, sq = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      sum += out.At({i, j});
      sq += out.At({i, j}) * out.At({i, j});
    }
    EXPECT_NEAR(sum / 8, 0.0, 1e-4);
    EXPECT_NEAR(sq / 8, 1.0, 1e-2);
  }
}

TEST(EmbeddingTest, LookupGradientsFlowToTable) {
  Rng rng(8);
  Embedding emb(10, 4, &rng);
  Tensor idx = Tensor::FromVectorInt64({3, 7}, {2});
  Tensor out = emb.Forward(idx);
  EXPECT_EQ(out.size(0), 2);
  EXPECT_EQ(out.size(1), 4);
  autograd::Backward(ops::MeanAll(out));
  Tensor grad = emb.parameters()[0].grad();
  ASSERT_TRUE(grad.defined());
  // Only rows 3 and 7 receive gradient.
  EXPECT_NE(grad.At({3, 0}), 0.0);
  EXPECT_NE(grad.At({7, 0}), 0.0);
  EXPECT_EQ(grad.At({0, 0}), 0.0);
}

TEST(LossTest, MSELossZeroWhenEqual) {
  MSELoss mse;
  Tensor a = Tensor::Full({4}, 2.0);
  EXPECT_DOUBLE_EQ(mse(a, a.Clone()).Item(), 0.0);
}

TEST(LossTest, MSELossHandComputed) {
  MSELoss mse;
  Tensor pred = Tensor::FromVector({1, 2}, {2});
  Tensor target = Tensor::FromVector({3, 2}, {2});
  EXPECT_DOUBLE_EQ(mse(pred, target).Item(), 2.0);  // (4 + 0) / 2
}

TEST(LossTest, CrossEntropyUniformLogits) {
  CrossEntropyLoss ce;
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor targets = Tensor::FromVectorInt64({1, 3}, {2});
  EXPECT_NEAR(ce(logits, targets).Item(), std::log(4.0), 1e-5);
}

TEST(LossTest, CrossEntropyConfidentCorrectIsSmall) {
  CrossEntropyLoss ce;
  Tensor logits = Tensor::FromVector({10, 0, 0, 0}, {1, 4});
  Tensor targets = Tensor::FromVectorInt64({0}, {1});
  EXPECT_LT(ce(logits, targets).Item(), 1e-3);
}

}  // namespace
}  // namespace ddpkit::nn
