// Parameterized property sweep over the cluster simulator's configuration
// space. Invariants asserted for every (model, backend, world):
//   - the latency breakdown's components sum to the total;
//   - total latency is never below the pure-compute (world=1) floor;
//   - exposed communication is non-negative and zero at world=1;
//   - overlap never hurts;
//   - results are deterministic.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cluster/cluster_sim.h"

namespace ddpkit::cluster {
namespace {

using SweepParam = std::tuple<int, sim::Backend, int>;  // model, backend, world

ModelSpec SpecFor(int model) {
  switch (model) {
    case 0:
      return ResNet18Spec();
    case 1:
      return ResNet50Spec();
    default:
      return BertBaseSpec();
  }
}

class ClusterSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ClusterSweepTest, BreakdownInvariantsHold) {
  const auto [model, backend, world] = GetParam();
  ClusterConfig config;
  config.world = world;
  config.backend = backend;
  config.straggler.sigma = 0.0;
  config.compute.op_jitter_sigma = 0.0;

  ClusterSim sim(SpecFor(model), config);
  auto result = sim.Run(4);
  const auto& b = result.mean_breakdown;

  // Components account for the whole iteration.
  EXPECT_NEAR(b.forward + b.backward_compute + b.backward_comm_exposed +
                  b.optimizer,
              b.total, 1e-9 * b.total + 1e-12);

  EXPECT_GE(b.backward_comm_exposed, 0.0);
  EXPECT_GE(b.comm_busy, b.backward_comm_exposed - 1e-12);
  if (world == 1) {
    EXPECT_DOUBLE_EQ(b.comm_busy, 0.0);
  } else {
    EXPECT_GT(b.comm_busy, 0.0);
  }

  // Never faster than the compute-only floor.
  ClusterConfig local = config;
  local.world = 1;
  auto floor = ClusterSim(SpecFor(model), local).Run(4);
  EXPECT_GE(b.total, floor.mean_breakdown.total - 1e-9);

  // Overlap never hurts.
  ClusterConfig no_overlap = config;
  no_overlap.overlap = false;
  auto serial = ClusterSim(SpecFor(model), no_overlap).Run(4);
  EXPECT_LE(b.total, serial.mean_breakdown.total + 1e-9);

  // Deterministic.
  auto again = ClusterSim(SpecFor(model), config).Run(4);
  EXPECT_EQ(result.iteration_latencies, again.iteration_latencies);
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& [model, backend, world] = info.param;
  const char* names[] = {"r18", "r50", "bert"};
  return std::string(names[model]) + "_" +
         sim::BackendName(backend) + "_w" + std::to_string(world);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, ClusterSweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(sim::Backend::kNccl,
                                         sim::Backend::kGloo,
                                         sim::Backend::kMpi),
                       ::testing::Values(1, 2, 8, 16, 64, 256)),
    SweepName);

TEST(ClusterMonotonicityTest, LatencyGrowsAcrossHostBoundary) {
  // Within one host latency grows slowly; crossing to multi-host (NIC
  // ring) is a visible step for every backend and model.
  for (sim::Backend backend : {sim::Backend::kNccl, sim::Backend::kGloo,
                               sim::Backend::kMpi}) {
    ClusterConfig config;
    config.backend = backend;
    config.straggler.sigma = 0.0;
    config.compute.op_jitter_sigma = 0.0;
    config.world = 8;
    auto intra = ClusterSim(ResNet50Spec(), config).Run(3);
    config.world = 16;
    auto inter = ClusterSim(ResNet50Spec(), config).Run(3);
    EXPECT_GT(inter.mean_breakdown.total, intra.mean_breakdown.total)
        << sim::BackendName(backend);
  }
}

}  // namespace
}  // namespace ddpkit::cluster
