// Behavior tests for the annotated lock wrappers (common/mutex.h): the
// whole tree's locking now goes through ddpkit::Mutex / ddpkit::MutexLock /
// ddpkit::CondVar so Clang's thread-safety analysis can see it, and these
// tests pin the wrappers' runtime semantics — mutual exclusion, RAII
// release, condition-variable wakeups, and deadline waits.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace ddpkit {
namespace {

TEST(MutexTest, MutualExclusionAcrossThreads) {
  Mutex mu;
  int64_t counter = 0;  // int64_t so a lost update cannot wrap away
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(MutexTest, TryLockReflectsHeldState) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Contention must be observed from another thread: relocking a held
  // std::mutex from its owner is undefined behaviour, not "returns false".
  bool contended_result = true;
  std::thread observer([&] { contended_result = mu.TryLock(); });
  observer.join();
  EXPECT_FALSE(contended_result);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(&mu);
  }
  bool acquired = false;
  std::thread observer([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  observer.join();
  EXPECT_TRUE(acquired);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    observed = 1;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, NotifyOneWakesExactlyOneAtATime) {
  Mutex mu;
  CondVar cv;
  int tokens = 0;
  int consumed = 0;
  constexpr int kConsumers = 4;
  constexpr int kTokens = 100;
  std::vector<std::thread> consumers;
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&] {
      for (;;) {
        MutexLock lock(&mu);
        while (tokens == 0 && consumed < kTokens) cv.Wait(mu);
        if (consumed >= kTokens) return;
        --tokens;
        ++consumed;
        if (consumed >= kTokens) cv.NotifyAll();  // release the others
      }
    });
  }
  for (int i = 0; i < kTokens; ++i) {
    {
      MutexLock lock(&mu);
      ++tokens;
    }
    cv.NotifyOne();
  }
  // Belt and braces: make sure no consumer is left waiting at shutdown.
  cv.NotifyAll();
  for (auto& th : consumers) th.join();
  EXPECT_EQ(consumed, kTokens);
  EXPECT_EQ(tokens, 0);
}

TEST(CondVarTest, WaitForTimesOutWithoutSignal) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const bool signaled = cv.WaitFor(mu, std::chrono::milliseconds(20));
  EXPECT_FALSE(signaled);
}

TEST(CondVarTest, WaitForReturnsTrueWhenSignaled) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool signaled = false;
  std::thread notifier;
  {
    // Hold the lock before spawning the notifier: it cannot set `ready`
    // until WaitFor releases the mutex, so the wait genuinely happens and
    // its verdict is deterministic. The 30s deadline exists only to bound
    // a lost-wakeup bug; the notifier beats it by seconds.
    MutexLock lock(&mu);
    notifier = std::thread([&] {
      MutexLock inner(&mu);
      ready = true;
      cv.NotifyAll();
    });
    while (!ready) {
      signaled = cv.WaitFor(mu, std::chrono::seconds(30));
      if (!signaled) break;
    }
  }
  notifier.join();
  EXPECT_TRUE(ready);
  EXPECT_TRUE(signaled);
}

TEST(CondVarTest, WaitUntilHonorsAbsoluteDeadline) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  const bool signaled = cv.WaitUntil(mu, deadline);
  EXPECT_FALSE(signaled);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

}  // namespace
}  // namespace ddpkit
