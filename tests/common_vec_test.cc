#include "common/vec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace ddpkit {
namespace {

/// Restores whatever dispatch level was active when the test started, so a
/// forced level never leaks into other tests.
class VecLevelGuard {
 public:
  ~VecLevelGuard() { vec::SetLevelForTesting(previous_); }

 private:
  vec::Level previous_ = vec::ActiveLevel();
};

/// All levels the host can actually execute (requests above DetectedLevel
/// clamp down, so higher enumerators are skipped on weaker machines).
std::vector<vec::Level> AvailableLevels() {
  std::vector<vec::Level> levels = {vec::Level::kScalar};
  if (vec::DetectedLevel() >= vec::Level::kAvx2) {
    levels.push_back(vec::Level::kAvx2);
  }
  if (vec::DetectedLevel() >= vec::Level::kAvx512) {
    levels.push_back(vec::Level::kAvx512);
  }
  return levels;
}

std::vector<float> RandomFloats(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) {
    x = static_cast<float>(rng.Uniform(-4.0, 4.0));
  }
  return v;
}

std::vector<double> RandomDoubles(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.Uniform(-4.0, 4.0);
  return v;
}

template <typename T>
void ExpectBitEqual(const std::vector<T>& a, const std::vector<T>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)));
}

// Lengths chosen to exercise: empty, sub-lane, one full AVX2 lane, one full
// AVX-512 lane, lane + tail, and a large buffer with every tail residue.
const int64_t kLengths[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 1000, 4097};

TEST(VecDispatchTest, SetLevelClampsToDetected) {
  VecLevelGuard guard;
  const vec::Level detected = vec::DetectedLevel();
  // Asking for more than the hardware supports installs the detected max.
  const vec::Level installed = vec::SetLevelForTesting(vec::Level::kAvx512);
  EXPECT_EQ(detected >= vec::Level::kAvx512 ? vec::Level::kAvx512 : detected,
            installed);
  EXPECT_EQ(installed, vec::ActiveLevel());
  EXPECT_LE(vec::ActiveLevel(), detected);
  // Scalar is always available.
  EXPECT_EQ(vec::Level::kScalar, vec::SetLevelForTesting(vec::Level::kScalar));
  EXPECT_EQ(vec::Level::kScalar, vec::ActiveLevel());
}

TEST(VecDispatchTest, LevelNamesAreStable) {
  EXPECT_STREQ("scalar", vec::LevelName(vec::Level::kScalar));
  EXPECT_STREQ("avx2", vec::LevelName(vec::Level::kAvx2));
  EXPECT_STREQ("avx512", vec::LevelName(vec::Level::kAvx512));
}

// Every batch helper must produce bit-identical output at every dispatch
// level — this is the contract that lets runtime dispatch coexist with
// deterministic training.
TEST(VecBitExactTest, AllFloatKernelsMatchScalarAtEveryLevel) {
  VecLevelGuard guard;
  for (const int64_t n : kLengths) {
    const std::vector<float> a = RandomFloats(n, 0x5eed0 + n);
    const std::vector<float> b = RandomFloats(n, 0x5eed1 + n);
    struct Case {
      const char* name;
      void (*run)(const std::vector<float>&, const std::vector<float>&,
                  std::vector<float>*);
    };
    const Case cases[] = {
        {"Add",
         [](const std::vector<float>& x, const std::vector<float>& y,
            std::vector<float>* d) {
           vec::Add(x.data(), y.data(), d->data(), x.size());
         }},
        {"Sub",
         [](const std::vector<float>& x, const std::vector<float>& y,
            std::vector<float>* d) {
           vec::Sub(x.data(), y.data(), d->data(), x.size());
         }},
        {"Mul",
         [](const std::vector<float>& x, const std::vector<float>& y,
            std::vector<float>* d) {
           vec::Mul(x.data(), y.data(), d->data(), x.size());
         }},
        {"Div",
         [](const std::vector<float>& x, const std::vector<float>& y,
            std::vector<float>* d) {
           vec::Div(x.data(), y.data(), d->data(), x.size());
         }},
        {"Scale",
         [](const std::vector<float>& x, const std::vector<float>&,
            std::vector<float>* d) {
           vec::Scale(x.data(), 1.7f, d->data(), x.size());
         }},
        {"AddScalar",
         [](const std::vector<float>& x, const std::vector<float>&,
            std::vector<float>* d) {
           vec::AddScalar(x.data(), -0.3f, d->data(), x.size());
         }},
        {"Neg",
         [](const std::vector<float>& x, const std::vector<float>&,
            std::vector<float>* d) {
           vec::Neg(x.data(), d->data(), x.size());
         }},
        {"Relu",
         [](const std::vector<float>& x, const std::vector<float>&,
            std::vector<float>* d) {
           vec::Relu(x.data(), d->data(), x.size());
         }},
        {"ReluBackward",
         [](const std::vector<float>& g, const std::vector<float>& x,
            std::vector<float>* d) {
           vec::ReluBackward(g.data(), x.data(), d->data(), g.size());
         }},
        {"Axpy",
         [](const std::vector<float>& x, const std::vector<float>& y,
            std::vector<float>* d) {
           *d = y;
           vec::Axpy(0.37f, x.data(), d->data(), x.size());
         }},
        {"ScaleInPlace",
         [](const std::vector<float>& x, const std::vector<float>&,
            std::vector<float>* d) {
           *d = x;
           vec::ScaleInPlace(d->data(), 2.5f, x.size());
         }},
        {"AccumulateAdd",
         [](const std::vector<float>& x, const std::vector<float>& y,
            std::vector<float>* d) {
           *d = y;
           vec::AccumulateAdd(d->data(), x.data(), x.size());
         }},
        {"AccumulateMax",
         [](const std::vector<float>& x, const std::vector<float>& y,
            std::vector<float>* d) {
           *d = y;
           vec::AccumulateMax(d->data(), x.data(), x.size());
         }},
        {"Copy",
         [](const std::vector<float>& x, const std::vector<float>&,
            std::vector<float>* d) {
           vec::Copy(d->data(), x.data(), x.size());
         }},
    };
    for (const Case& c : cases) {
      vec::SetLevelForTesting(vec::Level::kScalar);
      std::vector<float> ref(static_cast<size_t>(n), 99.0f);
      c.run(a, b, &ref);
      for (const vec::Level level : AvailableLevels()) {
        vec::SetLevelForTesting(level);
        std::vector<float> got(static_cast<size_t>(n), 99.0f);
        c.run(a, b, &got);
        SCOPED_TRACE(std::string(c.name) + " n=" + std::to_string(n) +
                     " level=" + vec::LevelName(level));
        ExpectBitEqual(ref, got);
      }
    }
  }
}

TEST(VecBitExactTest, DoubleAccumulatorsMatchScalarAtEveryLevel) {
  VecLevelGuard guard;
  for (const int64_t n : kLengths) {
    const std::vector<double> src = RandomDoubles(n, 0xd0 + n);
    const std::vector<double> dst0 = RandomDoubles(n, 0xd1 + n);
    for (const bool use_max : {false, true}) {
      vec::SetLevelForTesting(vec::Level::kScalar);
      std::vector<double> ref = dst0;
      if (use_max) {
        vec::AccumulateMax(ref.data(), src.data(), n);
      } else {
        vec::AccumulateAdd(ref.data(), src.data(), n);
      }
      for (const vec::Level level : AvailableLevels()) {
        vec::SetLevelForTesting(level);
        std::vector<double> got = dst0;
        if (use_max) {
          vec::AccumulateMax(got.data(), src.data(), n);
        } else {
          vec::AccumulateAdd(got.data(), src.data(), n);
        }
        SCOPED_TRACE(std::string(use_max ? "max" : "add") +
                     " n=" + std::to_string(n) +
                     " level=" + vec::LevelName(level));
        ExpectBitEqual(ref, got);
      }
    }
  }
}

// The max kernels must reproduce the scalar `dst > src ? dst : src` edge
// semantics exactly: NaN on either side yields src, and max(-0, +0)
// resolves the tie to src too. This pins the maxps operand order.
TEST(VecSemanticsTest, AccumulateMaxNanAndSignedZero) {
  VecLevelGuard guard;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // 16 lanes so AVX2/AVX-512 take their vector path, not just the tail.
  std::vector<float> dst0(16), src(16);
  for (int i = 0; i < 16; ++i) {
    dst0[static_cast<size_t>(i)] = static_cast<float>(i);
    src[static_cast<size_t>(i)] = static_cast<float>(15 - i);
  }
  dst0[0] = nan;    src[0] = 2.0f;   // NaN dst  -> src
  dst0[1] = 2.0f;   src[1] = nan;    // NaN src  -> src (NaN propagates)
  dst0[2] = -0.0f;  src[2] = 0.0f;   // tie      -> src (+0)
  dst0[3] = 0.0f;   src[3] = -0.0f;  // tie      -> src (-0)
  for (const vec::Level level : AvailableLevels()) {
    vec::SetLevelForTesting(level);
    std::vector<float> got = dst0;
    vec::AccumulateMax(got.data(), src.data(), 16);
    SCOPED_TRACE(vec::LevelName(level));
    for (int i = 0; i < 16; ++i) {
      const float d = dst0[static_cast<size_t>(i)];
      const float s = src[static_cast<size_t>(i)];
      const float want = d > s ? d : s;
      EXPECT_EQ(0, std::memcmp(&want, &got[static_cast<size_t>(i)],
                               sizeof(float)))
          << "lane " << i;
    }
  }
}

TEST(VecSemanticsTest, ReluMapsNegativeZeroAndNanToPositiveZero) {
  VecLevelGuard guard;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> in(16, 1.0f);
  in[0] = -0.0f;
  in[1] = nan;
  in[2] = -3.5f;
  for (const vec::Level level : AvailableLevels()) {
    vec::SetLevelForTesting(level);
    std::vector<float> out(16, 99.0f);
    vec::Relu(in.data(), out.data(), 16);
    SCOPED_TRACE(vec::LevelName(level));
    const float pz = 0.0f;
    EXPECT_EQ(0, std::memcmp(&pz, &out[0], sizeof(float)));  // -0 -> +0
    EXPECT_EQ(0, std::memcmp(&pz, &out[1], sizeof(float)));  // NaN -> 0
    EXPECT_EQ(0, std::memcmp(&pz, &out[2], sizeof(float)));
    EXPECT_EQ(1.0f, out[3]);
  }
}

// Axpy must never round like an FMA: pick operands where fma(a, x, y)
// and a*x + y differ in the last bit, and require the mul-then-add result.
TEST(VecSemanticsTest, AxpyIsMulThenAddNotFused) {
  VecLevelGuard guard;
  // alpha^2 = 1 + 2^-11 + 2^-24 rounds to 1 + 2^-11 as float; adding -1
  // afterwards gives exactly 2^-11, while fma(alpha, alpha, -1) keeps the
  // 2^-24 term. The two paths provably differ in the last bit.
  const float alpha = 1.0f + std::ldexp(1.0f, -12);  // 1 + 2^-12
  std::vector<float> x(16, alpha);                   // x == alpha
  for (const vec::Level level : AvailableLevels()) {
    vec::SetLevelForTesting(level);
    std::vector<float> y(16, -1.0f);
    vec::Axpy(alpha, x.data(), y.data(), 16);
    const float prod = alpha * alpha;  // rounded product
    const float want = -1.0f + prod;
    const float fused = std::fma(alpha, alpha, -1.0f);
    SCOPED_TRACE(vec::LevelName(level));
    // The probe is only meaningful if fused and unfused actually differ.
    ASSERT_NE(want, fused);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(want, y[static_cast<size_t>(i)]) << "lane " << i;
    }
  }
}

TEST(VecSemanticsTest, GenericVecLanewiseOps) {
  using V = vec::Vec<float, 8>;
  float a[8], b[8];
  for (int i = 0; i < 8; ++i) {
    a[i] = static_cast<float>(i + 1);
    b[i] = static_cast<float>(8 - i);
  }
  const V va = V::Load(a), vb = V::Load(b);
  float out[8];
  (va + vb).Store(out);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a[i] + b[i], out[i]);
  (va * vb).Store(out);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a[i] * b[i], out[i]);
  V::Max(va, vb).Store(out);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(std::max(a[i], b[i]), out[i]);
  V::Broadcast(3.0f).Store(out);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(3.0f, out[i]);
  EXPECT_EQ(8, V::size());
}

}  // namespace
}  // namespace ddpkit
