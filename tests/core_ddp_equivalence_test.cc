#include <gtest/gtest.h>

#include <cmath>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;
using comm::SimWorldOptions;

/// Flattens all parameter values of a module into one vector.
std::vector<float> FlattenParams(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      out.push_back(static_cast<float>(p.FlatAt(i)));
    }
  }
  return out;
}

std::vector<float> FlattenGrads(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      out.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }
  return out;
}

double MaxDiff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double mx = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return mx;
}

/// The headline correctness property (paper §3): DDP over `world` ranks,
/// each consuming 1/world of the global batch, produces the same gradients
/// as local training on the whole batch.
class DdpEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(DdpEquivalenceTest, GradientsMatchLocalTraining) {
  const int world = GetParam();
  const int64_t per_rank = 4;
  const int64_t global_batch = per_rank * world;

  // Global batch, same on every observer.
  Rng data_rng(7);
  Tensor all_x = Tensor::Randn({global_batch, 6}, &data_rng);
  Tensor all_y = Tensor::Randn({global_batch, 2}, &data_rng);

  // Local reference: full batch through one model.
  Rng model_rng(11);
  nn::Mlp local({6, 12, 2}, &model_rng);
  autograd::Backward(nn::MSELoss()(local.Forward(all_x), all_y));
  std::vector<float> local_grads = FlattenGrads(local);

  std::vector<std::vector<float>> ddp_grads(static_cast<size_t>(world));
  SimWorld::Run(world, [&](SimWorld::RankContext& ctx) {
    Rng rng(11);  // identical initialization
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{6, 12, 2},
                                           &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    // Contiguous shard of the global batch.
    Tensor x = all_x.Narrow(0, ctx.rank * per_rank, per_rank).Clone();
    Tensor y = all_y.Narrow(0, ctx.rank * per_rank, per_rank).Clone();
    autograd::Backward(nn::MSELoss()(ddp.Forward(x), y));
    ddp_grads[static_cast<size_t>(ctx.rank)] = FlattenGrads(*model);
  });

  for (int r = 0; r < world; ++r) {
    EXPECT_LT(MaxDiff(ddp_grads[static_cast<size_t>(r)], local_grads), 2e-5)
        << "rank " << r;
  }
}

TEST_P(DdpEquivalenceTest, MultiStepTrainingMatchesLocalWithMomentum) {
  const int world = GetParam();
  const int64_t per_rank = 2;
  const int64_t global_batch = per_rank * world;
  constexpr int kSteps = 5;

  Rng data_rng(17);
  std::vector<Tensor> xs, ys;
  for (int s = 0; s < kSteps; ++s) {
    xs.push_back(Tensor::Randn({global_batch, 5}, &data_rng));
    ys.push_back(Tensor::Randn({global_batch, 3}, &data_rng));
  }

  // Local reference training run.
  Rng model_rng(23);
  nn::Mlp local({5, 8, 3}, &model_rng);
  optim::Sgd local_opt(local.parameters(),
                       optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
  for (int s = 0; s < kSteps; ++s) {
    local_opt.ZeroGrad();
    autograd::Backward(nn::MSELoss()(local.Forward(xs[s]), ys[s]));
    local_opt.Step();
  }
  std::vector<float> local_params = FlattenParams(local);

  std::vector<std::vector<float>> ddp_params(static_cast<size_t>(world));
  SimWorld::Run(world, [&](SimWorld::RankContext& ctx) {
    Rng rng(23);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{5, 8, 3},
                                           &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(),
                   optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
    for (int s = 0; s < kSteps; ++s) {
      opt.ZeroGrad();
      Tensor x = xs[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
      Tensor y = ys[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
      autograd::Backward(nn::MSELoss()(ddp.Forward(x), y));
      opt.Step();
    }
    ddp_params[static_cast<size_t>(ctx.rank)] = FlattenParams(*model);
  });

  for (int r = 0; r < world; ++r) {
    EXPECT_LT(MaxDiff(ddp_params[static_cast<size_t>(r)], local_params),
              5e-4)
        << "rank " << r;
    // All replicas identical to each other (bit-exact collective).
    EXPECT_EQ(ddp_params[static_cast<size_t>(r)], ddp_params[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, DdpEquivalenceTest,
                         ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "world" + std::to_string(info.param);
                         });

TEST(DdpTest, ConstructorBroadcastsInitialState) {
  constexpr int kWorld = 3;
  std::vector<std::vector<float>> params(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    // Deliberately DIFFERENT initialization per rank.
    Rng rng(100 + ctx.rank);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    params[static_cast<size_t>(ctx.rank)] = FlattenParams(*model);
  });
  // Everyone must now hold rank 0's weights.
  EXPECT_EQ(params[1], params[0]);
  EXPECT_EQ(params[2], params[0]);
}

TEST(DdpTest, BuffersBroadcastFromRankZero) {
  constexpr int kWorld = 2;
  std::vector<double> running_means(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(5);
    auto model = std::make_shared<nn::SmallConvNet>(&rng, 4);
    DistributedDataParallel ddp(model, ctx.process_group);
    // Run one synced iteration with rank-dependent data so local BN
    // statistics diverge...
    Rng data_rng(200 + ctx.rank);
    Tensor x = Tensor::Randn({2, 1, 28, 28}, &data_rng);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    // ...then a second forward: DDP must re-broadcast rank 0's buffers.
    Tensor x2 = Tensor::Randn({2, 1, 28, 28}, &data_rng);
    ddp.Forward(x2);
    running_means[static_cast<size_t>(ctx.rank)] =
        model->buffers()[0].FlatAt(0);
  });
  // Both ranks entered the second forward with rank 0's statistics, and
  // the statistics update depends on rank-local data, so we compare the
  // post-first-iteration broadcast instead: values must match because both
  // started from rank 0's state. (The second forward updates them again
  // with local data; to observe the broadcast we check it happened by
  // asserting non-trivial equality of the *first* broadcast — covered by
  // the ResNet consistency test below. Here we only require finiteness.)
  EXPECT_TRUE(std::isfinite(running_means[0]));
  EXPECT_TRUE(std::isfinite(running_means[1]));
}

TEST(DdpTest, ReplicasStayConsistentWithBatchNorm) {
  // With broadcast_buffers on, models with BatchNorm keep identical
  // *parameters* across ranks even though local batch stats differ.
  constexpr int kWorld = 2;
  std::vector<std::vector<float>> params(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(31);
    auto model = std::make_shared<nn::ResNetTiny>(&rng, 3, 4, 10, 1);
    DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.01});
    nn::CrossEntropyLoss ce;
    for (int step = 0; step < 3; ++step) {
      opt.ZeroGrad();
      Rng data_rng(1000 * (step + 1) + ctx.rank);
      Tensor x = Tensor::Randn({2, 3, 8, 8}, &data_rng);
      Tensor y = Tensor::FromVectorInt64({step % 10, (step + 5) % 10}, {2});
      autograd::Backward(ce(ddp.Forward(x), y));
      opt.Step();
    }
    params[static_cast<size_t>(ctx.rank)] = FlattenParams(*model);
  });
  EXPECT_EQ(params[0], params[1]);
}

TEST(DdpTest, TransformerEquivalence) {
  constexpr int kWorld = 2;
  nn::TransformerTiny::Config config;
  config.vocab_size = 16;
  config.seq_len = 4;
  config.dim = 8;
  config.ff_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;  // exercise multi-head attention under DDP
  config.num_classes = 3;

  Tensor all_tokens = Tensor::FromVectorInt64(
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0}, {4, 4});
  Tensor all_labels = Tensor::FromVectorInt64({0, 1, 2, 1}, {4});

  Rng model_rng(41);
  nn::TransformerTiny local(config, &model_rng);
  autograd::Backward(
      nn::CrossEntropyLoss()(local.Forward(all_tokens), all_labels));
  std::vector<float> local_grads = FlattenGrads(local);

  std::vector<std::vector<float>> ddp_grads(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(41);
    auto model = std::make_shared<nn::TransformerTiny>(config, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    Tensor x = all_tokens.Narrow(0, ctx.rank * 2, 2).Clone();
    Tensor y = all_labels.Narrow(0, ctx.rank * 2, 2).Clone();
    autograd::Backward(nn::CrossEntropyLoss()(ddp.Forward(x), y));
    ddp_grads[static_cast<size_t>(ctx.rank)] = FlattenGrads(*model);
  });
  EXPECT_LT(MaxDiff(ddp_grads[0], local_grads), 5e-5);
  EXPECT_EQ(ddp_grads[0], ddp_grads[1]);
}

TEST(DdpTest, BucketCapDoesNotChangeResults) {
  // Identical gradients whether buckets are per-gradient, small, or one
  // giant bucket (§5.2's knob changes speed, never math).
  constexpr int kWorld = 2;
  std::vector<std::vector<float>> by_cap;
  for (size_t cap : {size_t{0}, size_t{512}, size_t{1} << 30}) {
    std::vector<float> grads;
    SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
      Rng rng(53);
      auto model =
          std::make_shared<nn::Mlp>(std::vector<int64_t>{8, 8, 4}, &rng);
      DdpOptions options;
      options.bucket_cap_bytes = cap;
      DistributedDataParallel ddp(model, ctx.process_group, options);
      Rng data_rng(60 + ctx.rank);
      Tensor x = Tensor::Randn({3, 8}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      if (ctx.rank == 0) grads = FlattenGrads(*model);
    });
    by_cap.push_back(std::move(grads));
  }
  EXPECT_EQ(by_cap[0], by_cap[1]);
  EXPECT_EQ(by_cap[0], by_cap[2]);
}

TEST(DdpTest, InferenceForwardDoesNotArmReducer) {
  // Evaluation forwards under NoGradGuard must not expect a backward pass
  // (PyTorch's is_grad_enabled() gate): training resumes cleanly after.
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(61);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 2}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    {
      autograd::NoGradGuard guard;
      for (int i = 0; i < 3; ++i) {
        Tensor out = ddp.Forward(Tensor::Full({2, 4}, 1.0));
        EXPECT_FALSE(out.requires_grad());
      }
    }
    // A normal training iteration still works afterwards.
    model->ZeroGrad();
    autograd::Backward(ops::MeanAll(ddp.Forward(Tensor::Full({2, 4}, 1.0))));
    EXPECT_TRUE(ddp.reducer().backward_finalized());
  });
}

TEST(DdpTest, ParametersExposedThroughWrapper) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 2}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    EXPECT_EQ(ddp.parameters().size(), model->parameters().size());
    EXPECT_TRUE(ddp.parameters()[0].is_same(model->parameters()[0]));
  });
}

}  // namespace
}  // namespace ddpkit::core
