#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "nn/zoo.h"
#include "sim/comm_cost_model.h"

namespace ddpkit {
namespace {

using comm::SimWorld;
using comm::SimWorldOptions;

TEST(MpiCostModelTest, SitsBetweenNcclAndGloo) {
  sim::Topology topo;
  sim::NcclCostModel nccl{topo};
  sim::MpiCostModel mpi{topo};
  sim::GlooCostModel gloo{topo};
  for (size_t bytes : {size_t{64} << 10, size_t{25} << 20}) {
    for (int world : {4, 32}) {
      const double t_nccl = nccl.AllReduceSeconds(bytes, world, 1);
      const double t_mpi = mpi.AllReduceSeconds(bytes, world, 1);
      const double t_gloo = gloo.AllReduceSeconds(bytes, world, 1);
      EXPECT_LT(t_nccl, t_mpi) << bytes << " " << world;
      EXPECT_LT(t_mpi, t_gloo) << bytes << " " << world;
    }
  }
}

TEST(MpiCostModelTest, WorldOfOneIsFree) {
  sim::MpiCostModel model{sim::Topology()};
  EXPECT_DOUBLE_EQ(model.AllReduceSeconds(1 << 20, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(model.BroadcastSeconds(1 << 20, 1), 0.0);
  EXPECT_DOUBLE_EQ(model.BarrierSeconds(1), 0.0);
}

TEST(MpiCostModelTest, FactoryDispatch) {
  EXPECT_EQ(sim::MakeCostModel(sim::Backend::kMpi, sim::Topology())->backend(),
            sim::Backend::kMpi);
  EXPECT_STREQ(sim::BackendName(sim::Backend::kMpi), "mpi");
}

TEST(MpiBackendTest, AllReduceDataCorrect) {
  SimWorldOptions options;
  options.backend = sim::Backend::kMpi;
  std::vector<double> results(3);
  SimWorld::Run(3, options, [&](SimWorld::RankContext& ctx) {
    EXPECT_EQ(ctx.process_group->backend_name(), "mpi");
    Tensor t = Tensor::Full({8}, ctx.rank + 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    results[static_cast<size_t>(ctx.rank)] = t.FlatAt(0);
    EXPECT_GT(ctx.clock->Now(), 0.0);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 6.0);
}

TEST(MpiBackendTest, DdpTrainsOnMpi) {
  SimWorldOptions options;
  options.backend = sim::Backend::kMpi;
  std::vector<std::vector<float>> params(2);
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Rng rng(5);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 2}, &rng);
    core::DistributedDataParallel ddp(model, ctx.process_group);
    for (int step = 0; step < 2; ++step) {
      model->ZeroGrad();
      Rng data_rng(step * 3 + ctx.rank);
      Tensor x = Tensor::Randn({2, 4}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    }
    std::vector<float> flat;
    for (const Tensor& p : model->parameters()) {
      Tensor g = p.grad();
      for (int64_t i = 0; i < g.numel(); ++i) {
        flat.push_back(static_cast<float>(g.FlatAt(i)));
      }
    }
    params[static_cast<size_t>(ctx.rank)] = std::move(flat);
  });
  EXPECT_EQ(params[0], params[1]);
}

}  // namespace
}  // namespace ddpkit
