// The multi-process leg's host test: shells out to ddp_launch, which
// spawns one real OS process per rank (ddp_worker) training the shared
// scenario over ProcessGroupTcp, then compares every rank's parameter
// digest bit-for-bit against an in-process SimWorld run of the SAME
// scenario. This is the PR's cross-check gate: the wire backend must be
// indistinguishable from the simulated one at the bits level.
//
// The chaos case kill -9s one rank mid-training: the launcher must report
// the planned death as non-fatal (--allow-kill), the survivors must
// Recover() to N-1 with typed errors (no hang, no raw abort), and their
// final parameters must match the sim harness's elastic run of the same
// crash bit-for-bit.
//
// Binary locations come from the build system (DDPKIT_LAUNCH_BIN /
// DDPKIT_WORKER_BIN compile definitions), sockets all bind port 0, and
// per-rank logs land in a temp --log-dir that CI uploads on failure.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "comm/fault_plan.h"
#include "comm/sim_world.h"
#include "tests/multiproc_scenario.h"

namespace ddpkit {
namespace {

constexpr int kSteps = 4;

struct RankLine {
  std::string digest;
  int world = 0;
  uint64_t generation = 0;
  int recoveries = 0;
};

struct WireOutcome {
  int launch_exit = -1;
  std::string launch_output;
  std::map<int, RankLine> ranks;  // only ranks that produced a result line
};

std::string TempRoot(const std::string& tag) {
  // CI points DDPKIT_MP_TMPDIR inside the workspace so per-rank logs can be
  // uploaded as artifacts when a run fails.
  const char* base = std::getenv("DDPKIT_MP_TMPDIR");
  const std::string root = (base != nullptr ? std::string(base)
                                            : std::string(::testing::TempDir())) +
                           "/ddpkit_mp_" + tag + "_" +
                           std::to_string(::getpid());
  ::mkdir(root.c_str(), 0755);
  return root;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Launches `world` ddp_worker processes through ddp_launch and collects
/// each surviving rank's result line. `chaos` is a --chaos wire-fault spec
/// (empty = fault-free wire); `min_world` is forwarded to the workers so
/// shrink scenarios can bottom out below the default of 2.
WireOutcome RunWire(const std::string& tag, int world, int kill_rank,
                    int kill_step, const std::string& comm_hook = "",
                    const std::string& chaos = "", int min_world = 2) {
  const std::string root = TempRoot(tag);
  const std::string digest_prefix = root + "/digest";
  std::stringstream cmd;
  cmd << DDPKIT_LAUNCH_BIN << " --nproc=" << world << " --timeout-sec=120"
      << " --log-dir=" << root;
  if (kill_rank >= 0) cmd << " --allow-kill=" << kill_rank;
  if (!chaos.empty()) cmd << " --chaos=" << chaos;
  cmd << " -- " << DDPKIT_WORKER_BIN << " --steps=" << kSteps
      << " --digest-out=" << digest_prefix << " --min-world=" << min_world;
  if (kill_rank >= 0) {
    cmd << " --kill-rank=" << kill_rank << " --kill-step=" << kill_step;
  }
  if (!comm_hook.empty()) cmd << " --comm-hook=" << comm_hook;
  cmd << " > " << root << "/launch.out 2>&1";

  WireOutcome outcome;
  const int status = std::system(cmd.str().c_str());
  outcome.launch_exit =
      WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  outcome.launch_output = ReadFileOrEmpty(root + "/launch.out");

  for (int rank = 0; rank < world; ++rank) {
    const std::string line =
        ReadFileOrEmpty(digest_prefix + "." + std::to_string(rank));
    if (line.empty()) continue;
    RankLine parsed;
    char digest[64] = {0};
    unsigned long long generation = 0;
    if (std::sscanf(line.c_str(),
                    "ok digest=%63[0-9a-f] world=%d generation=%llu "
                    "recoveries=%d",
                    digest, &parsed.world, &generation,
                    &parsed.recoveries) == 4) {
      parsed.digest = digest;
      parsed.generation = generation;
      outcome.ranks[rank] = parsed;
    }
  }
  return outcome;
}

/// The in-process reference: the same scenario under SimWorld (thread
/// ranks, simulated process group). With a kill, a FaultPlan fails the
/// collective at the kill step and the doomed rank leaves its body.
std::vector<testing::ScenarioResult> RunSim(int world, int kill_rank,
                                            int kill_step,
                                            const std::string& comm_hook = "",
                                            int min_world = 2) {
  comm::SimWorldOptions options;
  options.algorithm = comm::Algorithm::kRing;  // ddp_worker's wire default
  options.collective_timeout_seconds = 5.0;
  testing::ScenarioOptions scenario;
  scenario.total_steps = kSteps;
  scenario.comm_hook = comm_hook;
  scenario.kill_rank = kill_rank;
  scenario.kill_step = kill_step;
  scenario.min_world = min_world;
  scenario.crash_before_sync = false;  // the FaultPlan is the murder weapon
  scenario.collective_timeout_seconds = 5.0;
  if (kill_rank >= 0) {
    auto plan = std::make_shared<comm::FaultPlan>();
    // Mlp{4,6,2}: 4 construction broadcasts occupy seqs 0..3, so training
    // step i is the all-reduce at seq 4+i (one bucket).
    plan->CrashRank(kill_rank, static_cast<uint64_t>(4 + kill_step));
    options.fault_plan = plan;
  }
  std::vector<testing::ScenarioResult> results(static_cast<size_t>(world));
  comm::SimWorld::Run(world, options, [&](comm::SimWorld::RankContext& ctx) {
    results[static_cast<size_t>(ctx.rank)] =
        testing::RunScenario(ctx, scenario, [] {});
  });
  return results;
}

// Fault-free cross-check, the ISSUE's acceptance gate: 2, 4 and 8 real
// processes over TCP produce parameters bit-identical to the simulated
// backend on the same seed.
TEST(MultiprocE2eTest, WireMatchesSimBitExact) {
  for (int world : {2, 4, 8}) {
    SCOPED_TRACE("world " + std::to_string(world));
    const auto sim = RunSim(world, -1, -1);
    ASSERT_TRUE(sim[0].ok) << sim[0].error;

    const WireOutcome wire =
        RunWire("xcheck" + std::to_string(world), world, -1, -1);
    ASSERT_EQ(0, wire.launch_exit) << wire.launch_output;
    ASSERT_EQ(static_cast<size_t>(world), wire.ranks.size())
        << wire.launch_output;
    for (const auto& [rank, line] : wire.ranks) {
      EXPECT_EQ(sim[static_cast<size_t>(rank)].digest, line.digest)
          << "rank " << rank << " diverged from the sim reference";
      EXPECT_EQ(world, line.world);
      EXPECT_EQ(0u, line.generation);
      EXPECT_EQ(0, line.recoveries);
    }
  }
}

// The compression acceptance gate: every hook in the zoo must produce
// parameters bit-identical between the simulated backend and four real
// processes over TCP. Hooks transport exclusively via AllGather (pure byte
// movement on both backends) and decompress in fp32 locally, so this holds
// exactly, not approximately.
TEST(MultiprocE2eTest, CompressionHooksWireMatchesSimBitExact) {
  constexpr int kWorld = 4;
  for (const std::string hook : {"fp16", "bf16", "onebit", "powersgd",
                                 "topk"}) {
    SCOPED_TRACE("comm hook " + hook);
    const auto sim = RunSim(kWorld, -1, -1, hook);
    ASSERT_TRUE(sim[0].ok) << sim[0].error;
    for (int rank = 1; rank < kWorld; ++rank) {
      ASSERT_EQ(sim[0].digest, sim[static_cast<size_t>(rank)].digest)
          << "sim ranks disagree before the wire even ran";
    }

    const WireOutcome wire = RunWire("hook_" + hook, kWorld, -1, -1, hook);
    ASSERT_EQ(0, wire.launch_exit) << wire.launch_output;
    ASSERT_EQ(static_cast<size_t>(kWorld), wire.ranks.size())
        << wire.launch_output;
    for (const auto& [rank, line] : wire.ranks) {
      EXPECT_EQ(sim[static_cast<size_t>(rank)].digest, line.digest)
          << "rank " << rank << " diverged from the sim reference under "
          << hook;
    }
  }
}

// Chaos: kill -9 one of four ranks mid-training. The launcher treats the
// planned death as non-fatal, survivors time out typed, Recover() to a
// 3-rank generation-1 group, and finish bit-identical to the sim harness's
// elastic run of the same crash.
TEST(MultiprocE2eTest, KillMinusNineRankRecoversToNMinusOne) {
  constexpr int kWorld = 4;
  constexpr int kKillRank = 2;
  constexpr int kKillStep = 1;

  const auto sim = RunSim(kWorld, kKillRank, kKillStep);
  const WireOutcome wire = RunWire("chaos", kWorld, kKillRank, kKillStep);
  ASSERT_EQ(0, wire.launch_exit) << wire.launch_output;
  // The corpse writes nothing; every survivor reports.
  ASSERT_EQ(static_cast<size_t>(kWorld - 1), wire.ranks.size())
      << wire.launch_output;
  EXPECT_EQ(0u, wire.ranks.count(kKillRank));

  for (const auto& [rank, line] : wire.ranks) {
    SCOPED_TRACE("old rank " + std::to_string(rank));
    const testing::ScenarioResult& reference =
        sim[static_cast<size_t>(rank)];
    ASSERT_TRUE(reference.ok) << reference.error;
    EXPECT_EQ(reference.digest, line.digest)
        << "survivor diverged from the sim elastic run";
    EXPECT_EQ(kWorld - 1, line.world);
    EXPECT_EQ(1u, line.generation);
    EXPECT_EQ(1, line.recoveries);
  }
}

// Wire chaos, heal case: a two-way partition opens at step 1 and heals
// two link-hits later. The connection supervisor must absorb the fault
// invisibly — reconnect, replay the interrupted collective, and finish
// bit-identical to a fault-free run: same digests, generation 0, zero
// DDP-level recoveries, every rank present.
TEST(MultiprocE2eTest, WirePartitionHealsBitExact) {
  for (int world : {2, 4, 8}) {
    SCOPED_TRACE("world " + std::to_string(world));
    const int a = world / 2 - 1;
    const int b = world / 2;
    const std::string spec = "partition:" + std::to_string(a) + "x" +
                             std::to_string(b) + "@step1,heal@step3";

    const auto sim = RunSim(world, -1, -1);  // fault-free reference
    ASSERT_TRUE(sim[0].ok) << sim[0].error;

    const WireOutcome wire = RunWire("heal" + std::to_string(world), world,
                                     -1, -1, "", spec);
    ASSERT_EQ(0, wire.launch_exit) << wire.launch_output;
    ASSERT_EQ(static_cast<size_t>(world), wire.ranks.size())
        << wire.launch_output;
    // The fault must actually have fired: the supervisor logged a
    // reconnect (otherwise this test is a fault-free run in disguise).
    EXPECT_NE(std::string::npos, wire.launch_output.find("pg.reconnect"))
        << wire.launch_output;
    for (const auto& [rank, line] : wire.ranks) {
      EXPECT_EQ(sim[static_cast<size_t>(rank)].digest, line.digest)
          << "rank " << rank << " diverged from the fault-free reference";
      EXPECT_EQ(world, line.world);
      EXPECT_EQ(0u, line.generation);
      EXPECT_EQ(0, line.recoveries);
    }
  }
}

// Wire chaos, persist case: the partition never heals, so the run must
// shrink. The higher rank of the pair self-evicts (both endpoints derive
// the verdict from the shared plan), survivors re-form at world-1 and
// finish bit-identical to the sim harness's elastic run of a crash of the
// same rank at the same step — the evicted rank contributes nothing to
// the failed step either way.
TEST(MultiprocE2eTest, WirePartitionPersistsShrinksToSurvivors) {
  for (int world : {2, 4, 8}) {
    SCOPED_TRACE("world " + std::to_string(world));
    const int a = world / 2 - 1;
    const int evicted = world / 2;
    const std::string spec = "partition:" + std::to_string(a) + "x" +
                             std::to_string(evicted) + "@step1";
    const int min_world = world - 1;  // world 2 bottoms out at a solo rank

    const auto sim = RunSim(world, evicted, 1, "", min_world);
    const WireOutcome wire =
        RunWire("persist" + std::to_string(world), world, -1, -1, "", spec,
                min_world);
    ASSERT_EQ(0, wire.launch_exit) << wire.launch_output;
    ASSERT_EQ(static_cast<size_t>(world - 1), wire.ranks.size())
        << wire.launch_output;
    EXPECT_EQ(0u, wire.ranks.count(evicted)) << wire.launch_output;
    EXPECT_NE(std::string::npos,
              wire.launch_output.find(
                  "evicted rank=" + std::to_string(evicted)))
        << wire.launch_output;
    for (const auto& [rank, line] : wire.ranks) {
      SCOPED_TRACE("old rank " + std::to_string(rank));
      const testing::ScenarioResult& reference =
          sim[static_cast<size_t>(rank)];
      ASSERT_TRUE(reference.ok) << reference.error;
      EXPECT_EQ(reference.digest, line.digest)
          << "survivor diverged from the sim elastic run";
      EXPECT_EQ(world - 1, line.world);
      EXPECT_EQ(1u, line.generation);
      EXPECT_EQ(1, line.recoveries);
    }
  }
}

}  // namespace
}  // namespace ddpkit
