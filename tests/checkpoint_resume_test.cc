// Exact training resume: saving model + optimizer state mid-run and
// restarting in a fresh world must continue bit-identically to an
// uninterrupted run — the checkpointing contract distributed training
// jobs rely on (preemptible shared clusters like the paper's 256-GPU
// entitlement make this essential).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/serialization.h"
#include "nn/zoo.h"
#include "optim/adam.h"
#include "optim/sgd.h"

namespace ddpkit {
namespace {

using comm::SimWorld;
using core::DistributedDataParallel;

constexpr int kWorld = 2;
constexpr int kTotalSteps = 6;
constexpr int kResumeAt = 3;

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/ddpkit_resume_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

Tensor StepInput(int step, int rank) {
  Rng rng(static_cast<uint64_t>(step * 100 + rank));
  return Tensor::Randn({2, 4}, &rng);
}
Tensor StepTarget(int step, int rank) {
  Rng rng(static_cast<uint64_t>(step * 100 + rank + 50));
  return Tensor::Randn({2, 2}, &rng);
}

template <typename MakeOpt>
std::vector<float> TrainSteps(int first_step, int last_step,
                              const std::string& load_model,
                              const std::string& load_opt,
                              const std::string& save_model,
                              const std::string& save_opt,
                              MakeOpt make_optimizer) {
  std::vector<float> result;
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(7);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2},
                                           &rng);
    auto opt = make_optimizer(model->parameters());
    if (!load_model.empty()) {
      ASSERT_TRUE(nn::LoadStateDict(model.get(), load_model).ok());
      ASSERT_TRUE(nn::LoadTensorMap(opt->named_state(), load_opt).ok());
    }
    DistributedDataParallel ddp(model, ctx.process_group);
    nn::MSELoss mse;
    for (int step = first_step; step < last_step; ++step) {
      opt->ZeroGrad();
      autograd::Backward(mse(ddp.Forward(StepInput(step, ctx.rank)),
                             StepTarget(step, ctx.rank)));
      opt->Step();
    }
    if (ctx.rank == 0) {
      if (!save_model.empty()) {
        ASSERT_TRUE(nn::SaveStateDict(*model, save_model).ok());
        ASSERT_TRUE(nn::SaveTensorMap(opt->named_state(), save_opt).ok());
      }
      for (const Tensor& p : model->parameters()) {
        for (int64_t i = 0; i < p.numel(); ++i) {
          result.push_back(static_cast<float>(p.FlatAt(i)));
        }
      }
    }
  });
  return result;
}

TEST(CheckpointResumeTest, SgdMomentumResumesBitExactly) {
  auto make_sgd = [](std::vector<Tensor> params) {
    return std::make_unique<optim::Sgd>(
        std::move(params), optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
  };
  const std::string model_ck = TempPath("sgd_model");
  const std::string opt_ck = TempPath("sgd_opt");

  // Uninterrupted run.
  std::vector<float> straight =
      TrainSteps(0, kTotalSteps, "", "", "", "", make_sgd);
  // Interrupted: train to kResumeAt, checkpoint, restart fresh, finish.
  TrainSteps(0, kResumeAt, "", "", model_ck, opt_ck, make_sgd);
  std::vector<float> resumed =
      TrainSteps(kResumeAt, kTotalSteps, model_ck, opt_ck, "", "", make_sgd);

  EXPECT_EQ(resumed, straight);  // bit-exact, momentum included
  std::remove(model_ck.c_str());
  std::remove(opt_ck.c_str());
}

TEST(CheckpointResumeTest, AdamResumesBitExactly) {
  auto make_adam = [](std::vector<Tensor> params) {
    return std::make_unique<optim::Adam>(std::move(params),
                                         optim::Adam::Options{.lr = 2e-3});
  };
  const std::string model_ck = TempPath("adam_model");
  const std::string opt_ck = TempPath("adam_opt");

  std::vector<float> straight =
      TrainSteps(0, kTotalSteps, "", "", "", "", make_adam);
  TrainSteps(0, kResumeAt, "", "", model_ck, opt_ck, make_adam);
  std::vector<float> resumed =
      TrainSteps(kResumeAt, kTotalSteps, model_ck, opt_ck, "", "", make_adam);

  // Adam's bias correction depends on the step counters, so agreement
  // here proves the counters round-tripped too.
  EXPECT_EQ(resumed, straight);
  std::remove(model_ck.c_str());
  std::remove(opt_ck.c_str());
}

TEST(CheckpointResumeTest, DroppingOptimizerStateChangesTrajectory) {
  // Negative control: resuming with model weights but FRESH momentum must
  // diverge from the uninterrupted run — i.e. the optimizer checkpoint is
  // load-bearing, not redundant.
  auto make_sgd = [](std::vector<Tensor> params) {
    return std::make_unique<optim::Sgd>(
        std::move(params), optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
  };
  const std::string model_ck = TempPath("nc_model");
  const std::string opt_ck = TempPath("nc_opt");

  std::vector<float> straight =
      TrainSteps(0, kTotalSteps, "", "", "", "", make_sgd);
  TrainSteps(0, kResumeAt, "", "", model_ck, opt_ck, make_sgd);

  // Resume loading ONLY the model.
  std::vector<float> without_opt;
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(7);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2},
                                           &rng);
    ASSERT_TRUE(nn::LoadStateDict(model.get(), model_ck).ok());
    optim::Sgd opt(model->parameters(),
                   optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
    DistributedDataParallel ddp(model, ctx.process_group);
    nn::MSELoss mse;
    for (int step = kResumeAt; step < kTotalSteps; ++step) {
      opt.ZeroGrad();
      autograd::Backward(mse(ddp.Forward(StepInput(step, ctx.rank)),
                             StepTarget(step, ctx.rank)));
      opt.Step();
    }
    if (ctx.rank == 0) {
      for (const Tensor& p : model->parameters()) {
        for (int64_t i = 0; i < p.numel(); ++i) {
          without_opt.push_back(static_cast<float>(p.FlatAt(i)));
        }
      }
    }
  });
  EXPECT_NE(without_opt, straight);
  std::remove(model_ck.c_str());
  std::remove(opt_ck.c_str());
}

TEST(OptimizerStateTest, SgdMomentumRoundTripsBitExactly) {
  // Direct named_state contract: every momentum buffer survives a
  // save/load cycle into a FRESH optimizer bit for bit — the invariant
  // both checkpoint resume and elastic recovery's extra_state broadcast
  // stand on.
  Rng rng(11);
  auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng);
  optim::Sgd opt(model->parameters(),
                 optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
  nn::MSELoss mse;
  for (int step = 0; step < 3; ++step) {  // populate momentum
    opt.ZeroGrad();
    autograd::Backward(
        mse(model->Forward(StepInput(step, 0)), StepTarget(step, 0)));
    opt.Step();
  }
  const std::string path = TempPath("sgd_state");
  ASSERT_TRUE(nn::SaveTensorMap(opt.named_state(), path).ok());

  Rng rng2(11);
  auto model2 =
      std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng2);
  optim::Sgd opt2(model2->parameters(),
                  optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
  ASSERT_TRUE(nn::LoadTensorMap(opt2.named_state(), path).ok());

  auto want = opt.named_state();
  auto got = opt2.named_state();
  ASSERT_EQ(want.size(), got.size());
  ASSERT_FALSE(want.empty());  // momentum state must actually exist
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    ASSERT_EQ(got[i].second.numel(), want[i].second.numel());
    const float* a = want[i].second.data<float>();
    const float* b = got[i].second.data<float>();
    for (int64_t j = 0; j < want[i].second.numel(); ++j) {
      EXPECT_EQ(b[j], a[j]) << want[i].first << "[" << j << "]";
    }
  }
  std::remove(path.c_str());
}

TEST(OptimizerStateTest, AdamMomentsAndStepCountersRoundTripBitExactly) {
  Rng rng(13);
  auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng);
  optim::Adam opt(model->parameters(), optim::Adam::Options{.lr = 2e-3});
  nn::MSELoss mse;
  for (int step = 0; step < 3; ++step) {
    opt.ZeroGrad();
    autograd::Backward(
        mse(model->Forward(StepInput(step, 0)), StepTarget(step, 0)));
    opt.Step();
  }
  const std::string path = TempPath("adam_state");
  ASSERT_TRUE(nn::SaveTensorMap(opt.named_state(), path).ok());

  Rng rng2(13);
  auto model2 =
      std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng2);
  optim::Adam opt2(model2->parameters(), optim::Adam::Options{.lr = 2e-3});
  ASSERT_TRUE(nn::LoadTensorMap(opt2.named_state(), path).ok());

  auto want = opt.named_state();
  auto got = opt2.named_state();
  ASSERT_EQ(want.size(), got.size());
  ASSERT_FALSE(want.empty());
  bool saw_int64 = false;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    ASSERT_EQ(got[i].second.dtype(), want[i].second.dtype());
    ASSERT_EQ(got[i].second.numel(), want[i].second.numel());
    if (want[i].second.dtype() == DType::kInt64) {
      // Adam's bias-correction step counters ride along as int64 state.
      saw_int64 = true;
      const int64_t* a = want[i].second.data<int64_t>();
      const int64_t* b = got[i].second.data<int64_t>();
      for (int64_t j = 0; j < want[i].second.numel(); ++j) {
        EXPECT_EQ(b[j], a[j]) << want[i].first << "[" << j << "]";
      }
    } else {
      const float* a = want[i].second.data<float>();
      const float* b = got[i].second.data<float>();
      for (int64_t j = 0; j < want[i].second.numel(); ++j) {
        EXPECT_EQ(b[j], a[j]) << want[i].first << "[" << j << "]";
      }
    }
  }
  EXPECT_TRUE(saw_int64);
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, NoSyncAccumulationResumesBitExactly) {
  // Checkpoint/resume composed with the paper's no_sync (§3.2.4): each
  // step accumulates one skipped microbatch plus one synced microbatch
  // before Step(). A checkpoint taken between steps must resume the
  // accumulation schedule bit-exactly.
  auto run = [](int first_step, int last_step, const std::string& load_model,
                const std::string& load_opt, const std::string& save_model,
                const std::string& save_opt) {
    std::vector<float> result;
    SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
      Rng rng(7);
      auto model =
          std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng);
      optim::Sgd opt(model->parameters(),
                     optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
      if (!load_model.empty()) {
        ASSERT_TRUE(nn::LoadStateDict(model.get(), load_model).ok());
        ASSERT_TRUE(nn::LoadTensorMap(opt.named_state(), load_opt).ok());
      }
      DistributedDataParallel ddp(model, ctx.process_group);
      nn::MSELoss mse;
      for (int step = first_step; step < last_step; ++step) {
        opt.ZeroGrad();
        {
          auto guard = ddp.no_sync();  // microbatch 0: accumulate locally
          autograd::Backward(mse(ddp.Forward(StepInput(step, ctx.rank)),
                                 StepTarget(step, ctx.rank)));
        }
        // Microbatch 1: synced; reduces the accumulated gradients.
        autograd::Backward(
            mse(ddp.Forward(StepInput(step, ctx.rank + 100)),
                StepTarget(step, ctx.rank + 100)));
        opt.Step();
      }
      if (ctx.rank == 0) {
        if (!save_model.empty()) {
          ASSERT_TRUE(nn::SaveStateDict(*model, save_model).ok());
          ASSERT_TRUE(nn::SaveTensorMap(opt.named_state(), save_opt).ok());
        }
        for (const Tensor& p : model->parameters()) {
          for (int64_t i = 0; i < p.numel(); ++i) {
            result.push_back(static_cast<float>(p.FlatAt(i)));
          }
        }
      }
    });
    return result;
  };

  const std::string model_ck = TempPath("nosync_model");
  const std::string opt_ck = TempPath("nosync_opt");
  std::vector<float> straight = run(0, kTotalSteps, "", "", "", "");
  run(0, kResumeAt, "", "", model_ck, opt_ck);
  std::vector<float> resumed =
      run(kResumeAt, kTotalSteps, model_ck, opt_ck, "", "");

  EXPECT_EQ(resumed, straight);
  std::remove(model_ck.c_str());
  std::remove(opt_ck.c_str());
}

TEST(TensorMapTest, RoundTripsMixedDtypes) {
  // Direct API check: float32 and int64 entries in one map.
  Tensor a = Tensor::FromVector({1.5f, -2.5f}, {2});
  Tensor b = Tensor::FromVectorInt64({7, 8, 9}, {3});
  const std::string path = TempPath("mixed");
  ASSERT_TRUE(nn::SaveTensorMap({{"a", a}, {"b", b}}, path).ok());

  Tensor a2 = Tensor::Zeros({2});
  Tensor b2 = Tensor::Zeros({3}, DType::kInt64);
  ASSERT_TRUE(nn::LoadTensorMap({{"a", a2}, {"b", b2}}, path).ok());
  EXPECT_DOUBLE_EQ(a2.FlatAt(1), -2.5);
  EXPECT_EQ(b2.data<int64_t>()[2], 9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ddpkit
