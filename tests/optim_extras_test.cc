#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "optim/adam.h"
#include "optim/clip.h"
#include "optim/lr_scheduler.h"
#include "optim/sgd.h"

namespace ddpkit::optim {
namespace {

Tensor Param(double value) {
  Tensor p = Tensor::Full({4}, value);
  p.set_requires_grad(true);
  return p;
}

// ---- LR schedulers ------------------------------------------------------------

TEST(LrSchedulerTest, StepLrDecaysAtBoundaries) {
  Tensor p = Param(1.0);
  Sgd sgd({p}, Sgd::Options{.lr = 1.0});
  StepLr scheduler(&sgd, /*step_size=*/3, /*gamma=*/0.1);
  std::vector<double> rates;
  for (int i = 0; i < 7; ++i) {
    scheduler.Step();
    rates.push_back(sgd.learning_rate());
  }
  EXPECT_DOUBLE_EQ(rates[0], 1.0);   // step 1
  EXPECT_DOUBLE_EQ(rates[1], 1.0);   // step 2
  EXPECT_DOUBLE_EQ(rates[2], 0.1);   // step 3: first decay
  EXPECT_DOUBLE_EQ(rates[4], 0.1);   // step 5
  EXPECT_DOUBLE_EQ(rates[5], 0.01);  // step 6: second decay
}

TEST(LrSchedulerTest, CosineAnnealsToMin) {
  Tensor p = Param(1.0);
  Adam adam({p}, Adam::Options{.lr = 0.1});
  CosineLr scheduler(&adam, /*total_steps=*/10, /*min_lr=*/0.01);
  double prev = 0.1;
  for (int i = 0; i < 10; ++i) {
    scheduler.Step();
    EXPECT_LE(adam.learning_rate(), prev + 1e-12);
    prev = adam.learning_rate();
  }
  EXPECT_NEAR(adam.learning_rate(), 0.01, 1e-9);
  scheduler.Step();  // past the horizon: stays at min
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.01);
}

TEST(LrSchedulerTest, WarmupRampsLinearly) {
  Tensor p = Param(1.0);
  Sgd sgd({p}, Sgd::Options{.lr = 0.8});
  WarmupLr scheduler(&sgd, /*warmup_steps=*/4);
  scheduler.Step();
  EXPECT_NEAR(sgd.learning_rate(), 0.2, 1e-9);
  scheduler.Step();
  EXPECT_NEAR(sgd.learning_rate(), 0.4, 1e-9);
  scheduler.Step();
  scheduler.Step();
  EXPECT_NEAR(sgd.learning_rate(), 0.8, 1e-9);
  scheduler.Step();
  EXPECT_NEAR(sgd.learning_rate(), 0.8, 1e-9);
}

TEST(LrSchedulerTest, AffectsActualUpdates) {
  Tensor p = Param(0.0);
  p.set_grad(Tensor::Full({4}, 1.0));
  Sgd sgd({p}, Sgd::Options{.lr = 1.0});
  StepLr scheduler(&sgd, /*step_size=*/1, /*gamma=*/0.5);
  scheduler.Step();  // lr -> 0.5
  sgd.Step();
  EXPECT_NEAR(p.FlatAt(0), -0.5, 1e-6);
}

// ---- Gradient clipping ----------------------------------------------------------

TEST(ClipTest, NormBelowLimitUnchanged) {
  Tensor p = Param(0.0);
  p.set_grad(Tensor::Full({4}, 0.1));  // norm = 0.2
  const double norm = ClipGradNorm({p}, 1.0);
  EXPECT_NEAR(norm, 0.2, 1e-6);
  EXPECT_NEAR(p.grad().FlatAt(0), 0.1, 1e-7);
}

TEST(ClipTest, NormAboveLimitRescaled) {
  Tensor p = Param(0.0);
  p.set_grad(Tensor::Full({4}, 3.0));  // norm = 6
  const double norm = ClipGradNorm({p}, 1.5);
  EXPECT_NEAR(norm, 6.0, 1e-5);
  // After clipping, the norm is max_norm.
  double sq = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    sq += p.grad().FlatAt(i) * p.grad().FlatAt(i);
  }
  EXPECT_NEAR(std::sqrt(sq), 1.5, 1e-5);
}

TEST(ClipTest, NormSpansMultipleParams) {
  Tensor a = Param(0.0);
  Tensor b = Param(0.0);
  a.set_grad(Tensor::Full({4}, 3.0));
  b.set_grad(Tensor::Full({4}, 4.0));
  // norm = sqrt(4*9 + 4*16) = 10
  const double norm = ClipGradNorm({a, b}, 5.0);
  EXPECT_NEAR(norm, 10.0, 1e-5);
  EXPECT_NEAR(a.grad().FlatAt(0), 1.5, 1e-5);
  EXPECT_NEAR(b.grad().FlatAt(0), 2.0, 1e-5);
}

TEST(ClipTest, UndefinedGradsSkipped) {
  Tensor with = Param(0.0);
  Tensor without = Param(0.0);
  with.set_grad(Tensor::Full({4}, 1.0));
  EXPECT_NEAR(ClipGradNorm({with, without}, 10.0), 2.0, 1e-6);
  EXPECT_FALSE(without.grad().defined());
}

TEST(ClipTest, ValueClampsElementwise) {
  Tensor p = Param(0.0);
  p.set_grad(Tensor::FromVector({-5.0f, -0.5f, 0.5f, 5.0f}, {4}));
  ClipGradValue({p}, 1.0);
  EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), -1.0);
  EXPECT_DOUBLE_EQ(p.grad().FlatAt(1), -0.5);
  EXPECT_DOUBLE_EQ(p.grad().FlatAt(2), 0.5);
  EXPECT_DOUBLE_EQ(p.grad().FlatAt(3), 1.0);
}

}  // namespace
}  // namespace ddpkit::optim
