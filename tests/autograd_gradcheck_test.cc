#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace ddpkit {
namespace {

using autograd::Backward;
using autograd::NoGradGuard;

/// Central-difference numerical gradient of `loss_fn` w.r.t. one element.
double NumericalGrad(Tensor param, int64_t flat_index,
                     const std::function<double()>& loss_fn,
                     double eps = 1e-2) {
  NoGradGuard guard;
  const double original = param.FlatAt(flat_index);
  param.FlatSet(flat_index, original + eps);
  const double plus = loss_fn();
  param.FlatSet(flat_index, original - eps);
  const double minus = loss_fn();
  param.FlatSet(flat_index, original);
  return (plus - minus) / (2.0 * eps);
}

/// Checks analytic vs numerical gradients for every element of every param.
void GradCheck(const std::vector<Tensor>& params,
               const std::function<Tensor()>& forward, double tolerance) {
  for (Tensor p : params) p.ZeroGrad();
  Tensor loss = forward();
  ASSERT_EQ(loss.numel(), 1);
  Backward(loss);

  auto loss_value = [&forward]() { return forward().Item(); };
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor p = params[pi];
    ASSERT_TRUE(p.grad().defined()) << "param " << pi << " got no gradient";
    for (int64_t i = 0; i < p.numel(); ++i) {
      const double analytic = p.grad().FlatAt(i);
      const double numeric = NumericalGrad(p, i, loss_value);
      EXPECT_NEAR(analytic, numeric,
                  tolerance * (1.0 + std::abs(numeric)))
          << "param " << pi << " element " << i;
    }
  }
}

Tensor Param(Tensor t) {
  t.set_requires_grad(true);
  return t;
}

TEST(GradCheckTest, Linear) {
  Rng rng(100);
  Tensor x = Tensor::Randn({3, 4}, &rng);
  Tensor w = Param(Tensor::Randn({2, 4}, &rng));
  Tensor b = Param(Tensor::Randn({2}, &rng));
  GradCheck({w, b},
            [&] { return ops::MeanAll(ops::Linear(x, w, b)); }, 2e-2);
}

TEST(GradCheckTest, LinearInputGradient) {
  Rng rng(101);
  Tensor x = Param(Tensor::Randn({2, 3}, &rng));
  Tensor w = Tensor::Randn({4, 3}, &rng);
  GradCheck({x},
            [&] {
              Tensor out = ops::Linear(x, w, Tensor());
              return ops::MeanAll(ops::Mul(out, out));
            },
            2e-2);
}

TEST(GradCheckTest, MatMulBothSides) {
  Rng rng(102);
  Tensor a = Param(Tensor::Randn({3, 2}, &rng));
  Tensor b = Param(Tensor::Randn({2, 3}, &rng));
  GradCheck({a, b},
            [&] {
              Tensor c = ops::MatMul(a, b);
              return ops::MeanAll(ops::Mul(c, c));
            },
            3e-2);
}

TEST(GradCheckTest, ReluAwayFromKink) {
  Rng rng(103);
  Tensor x = Param(Tensor::FromVector({1.5f, -1.2f, 0.7f, -2.0f}, {4}));
  GradCheck({x}, [&] { return ops::SumAll(ops::Relu(x)); }, 1e-3);
}

TEST(GradCheckTest, SigmoidAndTanh) {
  Rng rng(99);
  Tensor x = Param(Tensor::Randn({5}, &rng));
  GradCheck({x}, [&] { return ops::SumAll(ops::Sigmoid(x)); }, 1e-2);
  Tensor y = Param(Tensor::Randn({5}, &rng));
  GradCheck({y}, [&] { return ops::SumAll(ops::Tanh(y)); }, 1e-2);
}

TEST(GradCheckTest, Gelu) {
  Tensor x = Param(Tensor::FromVector({0.8f, -0.6f, 1.7f}, {3}));
  GradCheck({x}, [&] { return ops::SumAll(ops::Gelu(x)); }, 1e-2);
}

TEST(GradCheckTest, Conv2dWeightAndBias) {
  Rng rng(104);
  Tensor x = Tensor::Randn({2, 2, 4, 4}, &rng);
  Tensor w = Param(Tensor::Randn({3, 2, 3, 3}, &rng));
  Tensor b = Param(Tensor::Randn({3}, &rng));
  GradCheck({w, b},
            [&] {
              Tensor out = ops::Conv2d(x, w, b, 1, 1);
              return ops::MeanAll(ops::Mul(out, out));
            },
            5e-2);
}

TEST(GradCheckTest, Conv2dInput) {
  Rng rng(105);
  Tensor x = Param(Tensor::Randn({1, 2, 4, 4}, &rng));
  Tensor w = Tensor::Randn({2, 2, 3, 3}, &rng);
  GradCheck({x},
            [&] {
              Tensor out = ops::Conv2d(x, w, Tensor(), 2, 1);
              return ops::MeanAll(ops::Mul(out, out));
            },
            5e-2);
}

TEST(GradCheckTest, Pooling) {
  Rng rng(106);
  Tensor x = Param(Tensor::Randn({1, 2, 4, 4}, &rng));
  GradCheck({x},
            [&] {
              Tensor out = ops::AvgPool2x2(x);
              return ops::MeanAll(ops::Mul(out, out));
            },
            1e-2);
  Tensor y = Param(Tensor::Randn({2, 3, 4, 4}, &rng));
  GradCheck({y},
            [&] {
              Tensor out = ops::GlobalAvgPool(y);
              return ops::MeanAll(ops::Mul(out, out));
            },
            1e-2);
}

TEST(GradCheckTest, BatchNorm2d) {
  Rng rng(107);
  Tensor x = Param(Tensor::Randn({3, 2, 2, 2}, &rng));
  Tensor gamma = Param(Tensor::FromVector({1.2f, 0.8f}, {2}));
  Tensor beta = Param(Tensor::FromVector({0.1f, -0.2f}, {2}));
  GradCheck({x, gamma, beta},
            [&] {
              auto result = ops::BatchNorm2d(x, gamma, beta, 1e-5);
              return ops::MeanAll(
                  ops::Mul(result.output, result.output));
            },
            6e-2);
}

TEST(GradCheckTest, LayerNorm) {
  Rng rng(108);
  Tensor x = Param(Tensor::Randn({3, 5}, &rng));
  Tensor gamma = Param(Tensor::Rand({5}, &rng, 0.5, 1.5));
  Tensor beta = Param(Tensor::Randn({5}, &rng));
  GradCheck({x, gamma, beta},
            [&] {
              Tensor out = ops::LayerNorm(x, gamma, beta, 1e-5);
              return ops::MeanAll(ops::Mul(out, out));
            },
            6e-2);
}

TEST(GradCheckTest, Embedding) {
  Rng rng(109);
  Tensor table = Param(Tensor::Randn({5, 3}, &rng));
  Tensor idx = Tensor::FromVectorInt64({1, 4, 1}, {3});
  GradCheck({table},
            [&] {
              Tensor out = ops::Embedding(idx, table);
              return ops::MeanAll(ops::Mul(out, out));
            },
            2e-2);
}

TEST(GradCheckTest, Softmax) {
  Rng rng(110);
  Tensor x = Param(Tensor::Randn({2, 4}, &rng));
  Tensor target = Tensor::Rand({2, 4}, &rng);
  GradCheck({x},
            [&] { return ops::MSELoss(ops::Softmax(x), target); }, 2e-2);
}

TEST(GradCheckTest, Attention) {
  Rng rng(111);
  Tensor q = Param(Tensor::Randn({2, 3, 4}, &rng));
  Tensor k = Param(Tensor::Randn({2, 3, 4}, &rng));
  Tensor v = Param(Tensor::Randn({2, 3, 4}, &rng));
  GradCheck({q, k, v},
            [&] {
              Tensor out = ops::Attention(q, k, v);
              return ops::MeanAll(ops::Mul(out, out));
            },
            6e-2);
}

TEST(GradCheckTest, MSELoss) {
  Rng rng(112);
  Tensor pred = Param(Tensor::Randn({3, 2}, &rng));
  Tensor target = Tensor::Randn({3, 2}, &rng);
  GradCheck({pred}, [&] { return ops::MSELoss(pred, target); }, 1e-2);
}

TEST(GradCheckTest, CrossEntropyLoss) {
  Rng rng(113);
  Tensor logits = Param(Tensor::Randn({4, 5}, &rng));
  Tensor targets = Tensor::FromVectorInt64({0, 3, 2, 4}, {4});
  GradCheck({logits},
            [&] { return ops::CrossEntropyLoss(logits, targets); }, 1e-2);
}

TEST(GradCheckTest, TileRows) {
  Rng rng(114);
  Tensor pos = Param(Tensor::Randn({2, 3}, &rng));
  GradCheck({pos},
            [&] {
              Tensor tiled = ops::TileRows(pos, 3);
              return ops::MeanAll(ops::Mul(tiled, tiled));
            },
            2e-2);
}

TEST(GradCheckTest, Reshape) {
  Rng rng(115);
  Tensor x = Param(Tensor::Randn({2, 6}, &rng));
  GradCheck({x},
            [&] {
              Tensor r = ops::Reshape(x, {3, 4});
              return ops::MeanAll(ops::Mul(r, r));
            },
            1e-2);
}

}  // namespace
}  // namespace ddpkit
