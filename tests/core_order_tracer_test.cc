#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "core/order_tracer.h"
#include "nn/zoo.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

/// Model whose registration order is the REVERSE of its invocation order:
/// the reverse-parameters() heuristic mis-predicts the backward order, so
/// order tracing should improve the bucket layout (§6.2.1).
class MisorderedNet : public nn::Module {
 public:
  explicit MisorderedNet(Rng* rng) {
    // Registered first, but applied LAST in forward.
    late_ = RegisterModule("late", std::make_shared<nn::Linear>(8, 8, rng));
    early_ = RegisterModule("early", std::make_shared<nn::Linear>(8, 8, rng));
  }
  Tensor Forward(const Tensor& input) override {
    return late_->Forward(ops::Relu(early_->Forward(input)));
  }

 private:
  std::shared_ptr<nn::Linear> late_;
  std::shared_ptr<nn::Linear> early_;
};

TEST(OrderTracerTest, RebuildsAfterStableOrder) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(1);
    auto model = std::make_shared<MisorderedNet>(&rng);
    DdpOptions options;
    options.bucket_cap_bytes = 8 * 8 * 4 + 8 * 4;  // one layer per bucket
    DistributedDataParallel ddp(model, ctx.process_group, options);
    OrderTracer tracer(OrderTracer::Options{.stable_iterations = 2,
                                            .max_rebuilds = 1});
    auto before = ddp.reducer().assignment().buckets;

    bool rebuilt = false;
    for (int step = 0; step < 5; ++step) {
      model->ZeroGrad();
      Tensor x = Tensor::Full({2, 8}, 1.0);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      rebuilt = tracer.ObserveAndMaybeRebuild(&ddp.reducer()) || rebuilt;
    }
    EXPECT_TRUE(rebuilt);
    EXPECT_EQ(tracer.rebuilds(), 1);
    // The rebuilt layout differs: `late` params (registered first, ready
    // first) now lead the launch order.
    auto after = ddp.reducer().assignment().buckets;
    EXPECT_NE(before, after);
    // First bucket now contains low indices (the "late" module's params,
    // which are registered first => indices 0,1).
    EXPECT_TRUE(after[0][0] == 0 || after[0][0] == 1);
  });
}

TEST(OrderTracerTest, TrainingStillCorrectAfterRebuild) {
  constexpr int kWorld = 2;
  std::vector<std::vector<float>> grads(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(2);
    auto model = std::make_shared<MisorderedNet>(&rng);
    DdpOptions options;
    options.bucket_cap_bytes = 128;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    OrderTracer tracer;
    for (int step = 0; step < 6; ++step) {
      model->ZeroGrad();
      Rng data_rng(step * 10 + ctx.rank);
      Tensor x = Tensor::Randn({2, 8}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      EXPECT_TRUE(ddp.reducer().backward_finalized());
      tracer.ObserveAndMaybeRebuild(&ddp.reducer());
    }
    for (const Tensor& p : model->parameters()) {
      Tensor g = p.grad();
      for (int64_t i = 0; i < g.numel(); ++i) {
        grads[static_cast<size_t>(ctx.rank)].push_back(
            static_cast<float>(g.FlatAt(i)));
      }
    }
  });
  EXPECT_EQ(grads[0], grads[1]);  // still synchronized after rebuild
}

TEST(OrderTracerTest, NoRebuildWhileOrderUnstable) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    DdpOptions options;
    options.find_unused_parameters = true;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    OrderTracer tracer(OrderTracer::Options{.stable_iterations = 2,
                                            .max_rebuilds = 1});
    for (int step = 0; step < 6; ++step) {
      model->set_use_branch_a(step % 2 == 0);  // order flips every step
      model->ZeroGrad();
      Tensor x = Tensor::Full({1, 4}, 1.0);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      EXPECT_FALSE(tracer.ObserveAndMaybeRebuild(&ddp.reducer()));
    }
    EXPECT_EQ(tracer.rebuilds(), 0);
  });
}

TEST(OrderTracerTest, MaxRebuildsBounded) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    Rng rng(4);
    auto model = std::make_shared<MisorderedNet>(&rng);
    DdpOptions options;
    options.bucket_cap_bytes = 128;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    OrderTracer tracer(OrderTracer::Options{.stable_iterations = 1,
                                            .max_rebuilds = 1});
    for (int step = 0; step < 8; ++step) {
      model->ZeroGrad();
      Tensor x = Tensor::Full({1, 8}, 1.0);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      tracer.ObserveAndMaybeRebuild(&ddp.reducer());
    }
    EXPECT_LE(tracer.rebuilds(), 1);
    EXPECT_LE(ddp.reducer().stats().rebuilds, 1u);
  });
}

}  // namespace
}  // namespace ddpkit::core
