// Elastic recovery end-to-end (DESIGN.md §9): a rank crashes mid-training,
// the survivors shrink the group by one generation, resync state from the
// lowest surviving rank, and continue — bit-exactly matching a fault-free
// run of the shrunken world started from a checkpoint taken at the crash
// point. Plus: recovery telemetry, the lone-survivor degradation, and the
// Store key-hygiene bound across many rebuild epochs.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "comm/fault_plan.h"
#include "comm/sim_world.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/serialization.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

namespace ddpkit {
namespace {

using comm::SimWorld;
using comm::SimWorldOptions;
using core::DistributedDataParallel;

class PoolSizeGuard {
 public:
  PoolSizeGuard() : previous_(ThreadPool::Global().num_threads()) {}
  ~PoolSizeGuard() { ThreadPool::SetNumThreads(previous_); }

 private:
  int previous_;
};

constexpr int kWorld = 8;
constexpr int kTotalSteps = 6;

// The chaos CI leg sweeps DDPKIT_CHAOS_SEED to vary which rank dies and
// when; every seed must satisfy the same bit-exactness contract.
uint64_t ChaosSeed() {
  const char* env = std::getenv("DDPKIT_CHAOS_SEED");
  if (env == nullptr) return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/ddpkit_recovery_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

Tensor StepInput(int step, int rank) {
  Rng rng(static_cast<uint64_t>(step * 100 + rank));
  return Tensor::Randn({2, 4}, &rng);
}
Tensor StepTarget(int step, int rank) {
  Rng rng(static_cast<uint64_t>(step * 100 + rank + 50));
  return Tensor::Randn({2, 2}, &rng);
}

std::unique_ptr<optim::Sgd> MakeSgd(std::vector<Tensor> params) {
  return std::make_unique<optim::Sgd>(
      std::move(params), optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
}

std::vector<float> FlattenParams(const nn::Module& model) {
  std::vector<float> out;
  for (const Tensor& p : model.parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      out.push_back(static_cast<float>(p.FlatAt(i)));
    }
  }
  return out;
}

// Fault-free run of `world` ranks for steps [first_step, last_step); rank 0
// optionally loads/saves a model+optimizer checkpoint and returns its final
// parameters. The data stream is keyed by (step, rank) so a shrunken world
// and a post-recovery survivor (re-keyed by its new rank) consume
// identical batches.
std::vector<float> ReferenceRun(int world, int first_step, int last_step,
                                const std::string& load_model,
                                const std::string& load_opt,
                                const std::string& save_model,
                                const std::string& save_opt) {
  std::vector<float> finals;
  SimWorld::Run(world, [&](SimWorld::RankContext& ctx) {
    Rng rng(7);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng);
    auto opt = MakeSgd(model->parameters());
    if (!load_model.empty()) {
      ASSERT_TRUE(nn::LoadStateDict(model.get(), load_model).ok());
      ASSERT_TRUE(nn::LoadTensorMap(opt->named_state(), load_opt).ok());
    }
    DistributedDataParallel ddp(model, ctx.process_group);
    nn::MSELoss mse;
    for (int step = first_step; step < last_step; ++step) {
      opt->ZeroGrad();
      autograd::Backward(mse(ddp.Forward(StepInput(step, ctx.rank)),
                             StepTarget(step, ctx.rank)));
      ASSERT_TRUE(ddp.sync_status().ok()) << ddp.sync_status().ToString();
      opt->Step();
    }
    if (ctx.rank == 0) {
      if (!save_model.empty()) {
        ASSERT_TRUE(nn::SaveStateDict(*model, save_model).ok());
        ASSERT_TRUE(nn::SaveTensorMap(opt->named_state(), save_opt).ok());
      }
      finals = FlattenParams(*model);
    }
  });
  return finals;
}

// The elastic run: kWorld ranks, `crash_rank` dies at training step
// `crash_step`, the survivors Recover() and finish. Returns each old
// rank's final parameters (empty for the dead rank) and the sealed
// recovery reports.
struct ElasticOutcome {
  std::vector<std::vector<float>> finals;        // indexed by old rank
  std::vector<core::RecoveryReport> reports;     // indexed by old rank
  std::shared_ptr<MetricsRegistry> metrics;
};

ElasticOutcome ElasticRun(int crash_rank, int crash_step) {
  ElasticOutcome out;
  out.finals.resize(kWorld);
  out.reports.resize(kWorld);
  out.metrics = std::make_shared<MetricsRegistry>();

  auto plan = std::make_shared<comm::FaultPlan>();
  // Mlp{4,6,2} has 4 parameters -> construction broadcasts occupy seqs
  // 0..3; the default 25MB bucket cap folds all gradients into one bucket,
  // so training step i is the single all-reduce at seq 4+i.
  plan->CrashRank(crash_rank, static_cast<uint64_t>(4 + crash_step));

  SimWorldOptions world_options;
  world_options.fault_plan = plan;
  SimWorld::Run(kWorld, world_options, [&](SimWorld::RankContext& ctx) {
    Rng rng(7);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng);
    auto opt = MakeSgd(model->parameters());
    core::DdpOptions ddp_options;
    ddp_options.collective_timeout_seconds = 5.0;
    ddp_options.metrics = out.metrics;
    DistributedDataParallel ddp(model, ctx.process_group, ddp_options);
    nn::MSELoss mse;

    int data_rank = ctx.rank;
    int step = 0;
    while (step < kTotalSteps) {
      opt->ZeroGrad();
      autograd::Backward(mse(ddp.Forward(StepInput(step, data_rank)),
                             StepTarget(step, data_rank)));
      if (!ddp.sync_status().ok()) {
        // This iteration's gradients are incomplete: discard them, recover,
        // and retry the same step under the new membership. The crashed
        // rank's "process" dies by leaving the rank body.
        if (ctx.rank == crash_rank) return;
        ASSERT_EQ(step, crash_step);
        core::RecoveryOptions recovery;
        recovery.rendezvous_namespace = ctx.group_name;
        recovery.rendezvous_timeout_seconds = 2.0;
        recovery.group_factory = ctx.make_group;
        recovery.extra_state = opt->named_state();
        core::RecoveryReport report;
        Status st = ddp.Recover(recovery, &report);
        ASSERT_TRUE(st.ok()) << "rank " << ctx.rank << ": " << st.ToString();
        out.reports[static_cast<size_t>(ctx.rank)] = report;
        data_rank = report.new_rank;
        continue;
      }
      opt->Step();
      ++step;
    }
    out.finals[static_cast<size_t>(ctx.rank)] = FlattenParams(*model);
  });
  return out;
}

TEST(ElasticRecoveryTest, ShrinkResyncFinishBitExact) {
  const uint64_t seed = ChaosSeed();
  const int crash_rank = static_cast<int>(seed % kWorld);
  const int crash_step = 1 + static_cast<int>(seed % 3);
  SCOPED_TRACE("seed " + std::to_string(seed) + ": rank " +
               std::to_string(crash_rank) + " crashes at step " +
               std::to_string(crash_step));

  // The reference trajectory: checkpoint a fault-free kWorld run at the
  // crash step, then finish in a FRESH (kWorld - 1)-rank world. Bit-exact
  // agreement with the survivors proves shrink-and-resync loses nothing
  // but the faulted iteration.
  const std::string model_ck = TempPath("model");
  const std::string opt_ck = TempPath("opt");
  ReferenceRun(kWorld, 0, crash_step, "", "", model_ck, opt_ck);
  const std::vector<float> want = ReferenceRun(
      kWorld - 1, crash_step, kTotalSteps, model_ck, opt_ck, "", "");
  ASSERT_FALSE(want.empty());

  for (int pool_threads : {1, 2, 8}) {
    SCOPED_TRACE("pool_threads " + std::to_string(pool_threads));
    PoolSizeGuard guard;
    ThreadPool::SetNumThreads(pool_threads);

    ElasticOutcome got = ElasticRun(crash_rank, crash_step);

    int expect_new_rank = 0;
    for (int r = 0; r < kWorld; ++r) {
      if (r == crash_rank) {
        EXPECT_TRUE(got.finals[static_cast<size_t>(r)].empty());
        continue;
      }
      const auto& report = got.reports[static_cast<size_t>(r)];
      EXPECT_EQ(report.generation, 1u);
      EXPECT_EQ(report.new_world, kWorld - 1);
      EXPECT_EQ(report.new_rank, expect_new_rank++);
      EXPECT_EQ(report.source_old_rank, crash_rank == 0 ? 1 : 0);
      // Every survivor's finals match the checkpoint-resumed shrunken
      // reference bit for bit.
      EXPECT_EQ(got.finals[static_cast<size_t>(r)], want) << "old rank " << r;
    }

    // Telemetry: each survivor attempted and completed exactly one
    // recovery, nothing failed, and the generation gauge advanced.
    EXPECT_EQ(got.metrics->counter("ddp.recovery.attempts").value(),
              static_cast<uint64_t>(kWorld - 1));
    EXPECT_EQ(got.metrics->counter("ddp.recovery.completed").value(),
              static_cast<uint64_t>(kWorld - 1));
    EXPECT_EQ(got.metrics->counter("ddp.recovery.failed").value(), 0u);
    EXPECT_DOUBLE_EQ(got.metrics->gauge("ddp.generation").value(), 1.0);
  }
  std::remove(model_ck.c_str());
  std::remove(opt_ck.c_str());
}

TEST(ElasticRecoveryTest, LoneSurvivorDegradesToTypedTimeout) {
  // World of two, the peer dies: the survivor's rendezvous cannot reach
  // min_world, so Recover fails kTimedOut and sync stays disabled — the
  // caller's cue to checkpoint and exit rather than spin.
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->CrashRank(1, /*at_seq=*/4);  // Mlp{4,6,2}: 4 ctor broadcasts, step 0

  SimWorldOptions world_options;
  world_options.fault_plan = plan;
  SimWorld::Run(2, world_options, [&](SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng);
    auto opt = MakeSgd(model->parameters());
    core::DdpOptions ddp_options;
    ddp_options.collective_timeout_seconds = 5.0;
    DistributedDataParallel ddp(model, ctx.process_group, ddp_options);
    nn::MSELoss mse;
    opt->ZeroGrad();
    autograd::Backward(mse(ddp.Forward(StepInput(0, ctx.rank)),
                           StepTarget(0, ctx.rank)));
    EXPECT_FALSE(ddp.sync_status().ok());
    if (ctx.rank == 1) return;  // the crashed peer

    core::RecoveryOptions recovery;
    recovery.rendezvous_namespace = ctx.group_name;
    recovery.rendezvous_timeout_seconds = 0.3;
    recovery.group_factory = ctx.make_group;
    Status st = ddp.Recover(recovery);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kTimedOut) << st.ToString();
    EXPECT_FALSE(ddp.sync_status().ok());
  });
}

TEST(ElasticRecoveryTest, RecoveryRequiresFactoryAndStore) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    core::RecoveryOptions recovery;  // no group_factory
    recovery.rendezvous_namespace = ctx.group_name;
    Status st = ddp.Recover(recovery);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  });
}

TEST(StoreHygieneTest, RebuildEpochsKeepKeyCountBounded) {
  // Satellite: the reducer's cross-rank layout/rebuild handshakes are
  // epoch-keyed in the Store; each completed epoch garbage-collects the
  // previous one, so 100 epochs leave the key count bounded by the live
  // epoch — not growing linearly with training length.
  size_t peak_keys = 0;
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(5);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng);
    auto opt = MakeSgd(model->parameters());
    DistributedDataParallel ddp(model, ctx.process_group);
    nn::MSELoss mse;
    for (int step = 0; step < 100; ++step) {
      opt->ZeroGrad();
      autograd::Backward(mse(ddp.Forward(StepInput(step, ctx.rank)),
                             StepTarget(step, ctx.rank)));
      ASSERT_TRUE(ddp.sync_status().ok()) << ddp.sync_status().ToString();
      opt->Step();
      // Force a fresh cross-rank rebuild handshake every iteration — the
      // worst case for key accumulation.
      ddp.reducer().RebuildBucketsFromTrace();
      if (ctx.rank == 0) {
        peak_keys = std::max(peak_keys, ctx.store->NumKeys());
      }
    }
  });
  // Persistent: 2 instance counters. Live epoch: 2 layout keys + up to 2
  // rebuild-order keys + validation keys in flight. Anywhere near 100
  // epochs' worth (~400+) means the GC regressed.
  EXPECT_LE(peak_keys, 12u);
}

}  // namespace
}  // namespace ddpkit
