#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "data/distributed_sampler.h"
#include "data/synthetic.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace ddpkit {
namespace {

using comm::SimWorld;
using comm::SimWorldOptions;
using core::DistributedDataParallel;

/// Full end-to-end loop: sampler + dataset + DDP + optimizer, the exact
/// shape of the paper's §3.1 usage example.
double TrainMnist(int world, int steps, int per_rank_batch,
                  sim::Backend backend, int skip_sync_every,
                  double lr = 0.05) {
  data::SyntheticMnist dataset(512, /*seed=*/77, /*noise_stddev=*/0.5);
  std::vector<double> final_losses(static_cast<size_t>(world), 0.0);

  SimWorldOptions options;
  options.backend = backend;
  SimWorld::Run(world, options, [&](SimWorld::RankContext& ctx) {
    Rng rng(5);
    auto model = std::make_shared<nn::SmallConvNet>(&rng, /*width=*/4);
    DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = lr});
    nn::CrossEntropyLoss ce;
    data::DistributedSampler sampler(dataset.size(), world, ctx.rank, 9);
    auto indices = sampler.EpochIndices(0);

    size_t cursor = 0;
    auto next_batch = [&] {
      std::vector<int64_t> batch_idx;
      for (int i = 0; i < per_rank_batch; ++i) {
        batch_idx.push_back(indices[cursor % indices.size()]);
        ++cursor;
      }
      return dataset.Get(batch_idx);
    };

    double loss_value = 0.0;
    for (int step = 0; step < steps; ++step) {
      opt.ZeroGrad();
      const bool sync = ((step + 1) % skip_sync_every) == 0;
      if (!sync) {
        auto guard = ddp.no_sync();
        auto batch = next_batch();
        autograd::Backward(ce(ddp.Forward(batch.inputs), batch.targets));
        continue;  // accumulate; no optimizer step
      }
      auto batch = next_batch();
      Tensor loss = ce(ddp.Forward(batch.inputs), batch.targets);
      loss_value = loss.Item();
      autograd::Backward(loss);
      opt.Step();
    }
    final_losses[static_cast<size_t>(ctx.rank)] = loss_value;
  });
  return final_losses[0];
}

TEST(IntegrationTest, MnistLossDecreasesWithDdp) {
  data::SyntheticMnist probe(512, 77, 0.5);
  // Initial loss ~ log(10) = 2.3; after training it must drop well below.
  const double final_loss =
      TrainMnist(/*world=*/2, /*steps=*/30, /*per_rank_batch=*/8,
                 sim::Backend::kNccl, /*skip_sync_every=*/1);
  EXPECT_LT(final_loss, 1.5);
}

TEST(IntegrationTest, GlooBackendTrainsTheSameModel) {
  const double final_loss =
      TrainMnist(2, 30, 8, sim::Backend::kGloo, 1);
  EXPECT_LT(final_loss, 1.5);
}

TEST(IntegrationTest, SkipSyncStillConverges) {
  // Fig 11(a): no_sync with small batches barely hurts convergence.
  const double final_loss =
      TrainMnist(2, 40, 8, sim::Backend::kNccl, /*skip_sync_every=*/2);
  EXPECT_LT(final_loss, 1.7);
}

TEST(IntegrationTest, AdamWithDdpKeepsReplicasIdentical) {
  constexpr int kWorld = 2;
  std::vector<std::vector<float>> params(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(8);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{6, 8, 2},
                                           &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    optim::Adam opt(model->parameters(), optim::Adam::Options{.lr = 1e-3});
    nn::MSELoss mse;
    for (int step = 0; step < 5; ++step) {
      opt.ZeroGrad();
      Rng data_rng(step * 100 + ctx.rank);
      Tensor x = Tensor::Randn({4, 6}, &data_rng);
      Tensor y = Tensor::Randn({4, 2}, &data_rng);
      autograd::Backward(mse(ddp.Forward(x), y));
      opt.Step();
    }
    std::vector<float> flat;
    for (const Tensor& p : model->parameters()) {
      for (int64_t i = 0; i < p.numel(); ++i) {
        flat.push_back(static_cast<float>(p.FlatAt(i)));
      }
    }
    params[static_cast<size_t>(ctx.rank)] = std::move(flat);
  });
  EXPECT_EQ(params[0], params[1]);
}

TEST(IntegrationTest, RoundRobinGroupsTrainCorrectly) {
  constexpr int kWorld = 2;
  std::vector<std::vector<float>> params(kWorld);
  SimWorldOptions options;
  options.round_robin_groups = 3;
  SimWorld::Run(kWorld, options, [&](SimWorld::RankContext& ctx) {
    Rng rng(13);
    auto model = std::make_shared<nn::Mlp>(
        std::vector<int64_t>{8, 16, 16, 4}, &rng);
    core::DdpOptions ddp_options;
    ddp_options.bucket_cap_bytes = 256;  // many buckets across 3 groups
    DistributedDataParallel ddp(model, ctx.process_group, ddp_options);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.05});
    nn::MSELoss mse;
    for (int step = 0; step < 4; ++step) {
      opt.ZeroGrad();
      Rng data_rng(step * 7 + ctx.rank);
      Tensor x = Tensor::Randn({2, 8}, &data_rng);
      Tensor y = Tensor::Randn({2, 4}, &data_rng);
      autograd::Backward(mse(ddp.Forward(x), y));
      opt.Step();
    }
    std::vector<float> flat;
    for (const Tensor& p : model->parameters()) {
      for (int64_t i = 0; i < p.numel(); ++i) {
        flat.push_back(static_cast<float>(p.FlatAt(i)));
      }
    }
    params[static_cast<size_t>(ctx.rank)] = std::move(flat);
  });
  EXPECT_EQ(params[0], params[1]);
}

TEST(IntegrationTest, EightRankStress) {
  constexpr int kWorld = 8;
  std::vector<std::vector<float>> params(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(21);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{8, 8, 4},
                                           &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.02});
    nn::MSELoss mse;
    for (int step = 0; step < 3; ++step) {
      opt.ZeroGrad();
      Rng data_rng(step * 31 + ctx.rank);
      Tensor x = Tensor::Randn({2, 8}, &data_rng);
      Tensor y = Tensor::Randn({2, 4}, &data_rng);
      autograd::Backward(mse(ddp.Forward(x), y));
      opt.Step();
    }
    std::vector<float> flat;
    for (const Tensor& p : model->parameters()) {
      for (int64_t i = 0; i < p.numel(); ++i) {
        flat.push_back(static_cast<float>(p.FlatAt(i)));
      }
    }
    params[static_cast<size_t>(ctx.rank)] = std::move(flat);
  });
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(params[static_cast<size_t>(r)], params[0]) << "rank " << r;
  }
}

TEST(IntegrationTest, ParameterAveragingDivergesFromDdpWithMomentum) {
  // The §2.2 claim: parameter averaging with momentum does NOT track local
  // large-batch training, while DDP does. (Averaging after EVERY step is
  // still linear-equivalent to gradient averaging; the divergence the
  // paper describes appears when replicas train locally between averaging
  // points, letting their momentum states see different gradients — so we
  // average every kAverageEvery steps, the realistic deployment.)
  constexpr int kWorld = 2;
  constexpr int kSteps = 8;
  constexpr int kAverageEvery = 4;
  const int64_t per_rank = 2;

  Rng data_rng(33);
  std::vector<Tensor> xs, ys;
  for (int s = 0; s < kSteps; ++s) {
    xs.push_back(Tensor::Randn({per_rank * kWorld, 4}, &data_rng));
    ys.push_back(Tensor::Randn({per_rank * kWorld, 2}, &data_rng));
  }

  // Local reference.
  Rng model_rng(44);
  nn::Mlp local({4, 2}, &model_rng);
  optim::Sgd local_opt(local.parameters(),
                       optim::Sgd::Options{.lr = 0.1, .momentum = 0.9});
  for (int s = 0; s < kSteps; ++s) {
    local_opt.ZeroGrad();
    autograd::Backward(nn::MSELoss()(local.Forward(xs[s]), ys[s]));
    local_opt.Step();
  }

  // Parameter averaging: local step on local shard, then average params.
  std::vector<float> avg_params;
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(44);
    nn::Mlp model({4, 2}, &rng);
    optim::Sgd opt(model.parameters(),
                   optim::Sgd::Options{.lr = 0.1, .momentum = 0.9});
    for (int s = 0; s < kSteps; ++s) {
      opt.ZeroGrad();
      Tensor x = xs[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
      Tensor y = ys[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
      autograd::Backward(nn::MSELoss()(model.Forward(x), y));
      opt.Step();
      // Average parameters periodically AFTER local optimizer steps (§2.2).
      if ((s + 1) % kAverageEvery == 0) {
        autograd::NoGradGuard guard;
        for (Tensor& p : model.parameters()) {
          ctx.process_group->AllReduce(p.Flatten())->Wait(ctx.clock);
          kernels::ScaleInPlace(&p, 1.0 / kWorld);
        }
      }
    }
    if (ctx.rank == 0) {
      for (const Tensor& p : model.parameters()) {
        for (int64_t i = 0; i < p.numel(); ++i) {
          avg_params.push_back(static_cast<float>(p.FlatAt(i)));
        }
      }
    }
  });

  // DDP run on the same shards.
  std::vector<float> ddp_params;
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(44);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 2}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(),
                   optim::Sgd::Options{.lr = 0.1, .momentum = 0.9});
    for (int s = 0; s < kSteps; ++s) {
      opt.ZeroGrad();
      Tensor x = xs[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
      Tensor y = ys[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
      autograd::Backward(nn::MSELoss()(ddp.Forward(x), y));
      opt.Step();
    }
    if (ctx.rank == 0) {
      for (const Tensor& p : model->parameters()) {
        for (int64_t i = 0; i < p.numel(); ++i) {
          ddp_params.push_back(static_cast<float>(p.FlatAt(i)));
        }
      }
    }
  });

  double ddp_err = 0.0, avg_err = 0.0;
  size_t i = 0;
  for (const Tensor& p : local.parameters()) {
    for (int64_t j = 0; j < p.numel(); ++j, ++i) {
      ddp_err = std::max(
          ddp_err, std::abs(ddp_params[i] - p.FlatAt(j)));
      avg_err = std::max(
          avg_err, std::abs(avg_params[i] - p.FlatAt(j)));
    }
  }
  EXPECT_LT(ddp_err, 1e-4);          // DDP tracks local training
  EXPECT_GT(avg_err, 10.0 * ddp_err);  // parameter averaging drifts
}

}  // namespace
}  // namespace ddpkit
