#include <gtest/gtest.h>

#include <numeric>

#include "core/bucketing.h"

namespace ddpkit::core {
namespace {

std::vector<ParamMeta> MakeParams(const std::vector<int64_t>& numels,
                                  int device = 0) {
  std::vector<ParamMeta> params;
  for (int64_t n : numels) {
    params.push_back(ParamMeta{n, static_cast<size_t>(n) * 4, device});
  }
  return params;
}

/// Every parameter appears exactly once across all buckets.
void ExpectIsPartition(const BucketAssignment& a, size_t num_params) {
  std::vector<int> seen(num_params, 0);
  for (const auto& bucket : a.buckets) {
    EXPECT_FALSE(bucket.empty());
    for (size_t idx : bucket) {
      ASSERT_LT(idx, num_params);
      ++seen[idx];
    }
  }
  for (size_t i = 0; i < num_params; ++i) {
    EXPECT_EQ(seen[i], 1) << "param " << i;
  }
}

TEST(BucketingTest, ReverseOrderPacking) {
  // 4 params of 1KB each, cap 2KB -> two buckets; bucket 0 holds the LAST
  // registered params (reverse order heuristic, §3.2.3).
  auto params = MakeParams({256, 256, 256, 256});
  auto a = AssignBuckets(params, 2048);
  ASSERT_EQ(a.num_buckets(), 2u);
  EXPECT_EQ(a.buckets[0], (std::vector<size_t>{3, 2}));
  EXPECT_EQ(a.buckets[1], (std::vector<size_t>{1, 0}));
  ExpectIsPartition(a, 4);
}

TEST(BucketingTest, ZeroCapMeansPerGradientBuckets) {
  auto params = MakeParams({10, 20, 30});
  auto a = AssignBuckets(params, 0);
  ASSERT_EQ(a.num_buckets(), 3u);
  for (const auto& bucket : a.buckets) {
    EXPECT_EQ(bucket.size(), 1u);
  }
  EXPECT_EQ(a.buckets[0][0], 2u);  // still reverse order
}

TEST(BucketingTest, OversizedParamGetsOwnBucket) {
  auto params = MakeParams({100, 10000, 100});
  auto a = AssignBuckets(params, 1024);
  ExpectIsPartition(a, 3);
  // The 40KB param must sit alone.
  bool found_alone = false;
  for (const auto& bucket : a.buckets) {
    if (bucket.size() == 1 && bucket[0] == 1) found_alone = true;
  }
  EXPECT_TRUE(found_alone);
}

TEST(BucketingTest, CapRespectedExceptSingletons) {
  auto params = MakeParams({300, 200, 100, 400, 50, 250});
  const size_t cap = 1200;  // bytes
  auto a = AssignBuckets(params, cap);
  ExpectIsPartition(a, 6);
  for (const auto& bucket : a.buckets) {
    if (bucket.size() > 1) {
      EXPECT_LE(BucketBytes(params, bucket), cap);
    }
  }
}

TEST(BucketingTest, DeviceAffinitySplitsBuckets) {
  std::vector<ParamMeta> params = {
      {100, 400, 0}, {100, 400, 0}, {100, 400, 1}, {100, 400, 1}};
  auto a = AssignBuckets(params, 1 << 20);
  // Reverse order: 3,2 (device 1) then 1,0 (device 0) — split at the
  // device boundary even though the cap would allow one bucket.
  ASSERT_EQ(a.num_buckets(), 2u);
  EXPECT_EQ(a.buckets[0], (std::vector<size_t>{3, 2}));
  EXPECT_EQ(a.buckets[1], (std::vector<size_t>{1, 0}));
}

TEST(BucketingTest, FirstBucketCapSmaller) {
  auto params = MakeParams({256, 256, 256, 256});
  auto a = AssignBuckets(params, 4096, /*first_bucket_cap_bytes=*/1024);
  ASSERT_GE(a.num_buckets(), 2u);
  EXPECT_EQ(a.buckets[0].size(), 1u);  // first bucket fits one 1KB param
  EXPECT_EQ(a.buckets[0][0], 3u);
}

TEST(BucketingTest, SingleHugeBucketWhenCapUnlimited) {
  auto params = MakeParams({100, 200, 300});
  auto a = AssignBuckets(params, size_t{1} << 40);
  ASSERT_EQ(a.num_buckets(), 1u);
  EXPECT_EQ(a.buckets[0], (std::vector<size_t>{2, 1, 0}));
}

TEST(BucketingTest, DeterministicAcrossCalls) {
  auto params = MakeParams({17, 999, 3, 12345, 64, 64, 2048});
  auto a = AssignBuckets(params, 4096);
  auto b = AssignBuckets(params, 4096);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(BucketingTest, Resnet50LikeDistribution) {
  // 25 MB cap over a ResNet50-scale inventory gives a handful of buckets.
  std::vector<ParamMeta> params;
  for (int i = 0; i < 161; ++i) {
    const int64_t numel = (i % 3 == 0) ? 2359296 : 512;  // mix of big/small
    params.push_back(ParamMeta{numel, static_cast<size_t>(numel) * 4, 0});
  }
  auto a = AssignBuckets(params, 25u << 20);
  ExpectIsPartition(a, params.size());
  EXPECT_GE(a.num_buckets(), 2u);
  EXPECT_LE(a.num_buckets(), 40u);
}

TEST(BucketingTest, FromOrderUsesGivenPermutation) {
  auto params = MakeParams({256, 256, 256, 256});
  // Observed ready order says param 1 finished first.
  auto a = AssignBucketsFromOrder(params, {1, 0, 3, 2}, 2048);
  ASSERT_EQ(a.num_buckets(), 2u);
  EXPECT_EQ(a.buckets[0], (std::vector<size_t>{1, 0}));
  EXPECT_EQ(a.buckets[1], (std::vector<size_t>{3, 2}));
}

TEST(BucketingTest, BucketBytesSums) {
  auto params = MakeParams({10, 20, 30});
  EXPECT_EQ(BucketBytes(params, {0, 2}), 40u + 120u);
}

TEST(BucketingTest, ToStringMentionsEveryBucket) {
  auto params = MakeParams({256, 256});
  auto a = AssignBuckets(params, 512);
  const std::string s = a.ToString(params);
  EXPECT_NE(s.find("bucket 0"), std::string::npos);
  EXPECT_NE(s.find("bucket 1"), std::string::npos);
}

}  // namespace
}  // namespace ddpkit::core
