// Contract tests for Work's terminal-state machine and the process group's
// invalid-argument failure path, pinning two fixes the thread-safety
// annotation pass surfaced:
//
//  1. First terminal state wins: a watchdog's MarkFailed racing the last
//     participant's MarkCompleted used to abort the process
//     (DDPKIT_CHECK(!done_)); now the later verdict is a no-op and the
//     first one stands, from any interleaving.
//
//  2. Collective entry points never abort on bad arguments: an undefined
//     tensor or an out-of-range root yields a pre-failed kShapeMismatch
//     handle that consumes NO sequence number, so a subsequent valid
//     collective still pairs correctly with the peers.

#include "comm/work.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/sim_world.h"
#include "sim/virtual_clock.h"
#include "tensor/tensor.h"

namespace ddpkit::comm {
namespace {

TEST(WorkContractTest, FailedThenCompletedStaysFailed) {
  Work work;
  work.MarkFailed(WorkError::kTimeout, "rank 2 never arrived", 3.0);
  // The racing completion must be swallowed, not abort the process.
  work.MarkCompleted(5.0);
  EXPECT_TRUE(work.Poll());
  EXPECT_FALSE(work.IsCompleted());
  EXPECT_EQ(work.error(), WorkError::kTimeout);
  EXPECT_EQ(work.status().code(), StatusCode::kTimedOut);
  EXPECT_NE(work.error_message().find("rank 2"), std::string::npos);
  EXPECT_DOUBLE_EQ(work.completion_time(), 3.0);
}

TEST(WorkContractTest, CompletedThenFailedStaysCompleted) {
  Work work;
  work.MarkCompleted(2.0);
  work.MarkFailed(WorkError::kRankFailure, "late watchdog verdict", 4.0);
  EXPECT_TRUE(work.Poll());
  EXPECT_TRUE(work.IsCompleted());
  EXPECT_EQ(work.error(), WorkError::kNone);
  EXPECT_TRUE(work.status().ok());
  EXPECT_DOUBLE_EQ(work.completion_time(), 2.0);
}

TEST(WorkContractTest, WaitSurfacesFailureAsStatus) {
  Work work;
  work.MarkFailed(WorkError::kShapeMismatch, "divergent collective", 1.5);
  sim::VirtualClock clock;
  const Status st = work.Wait(&clock, /*timeout_seconds=*/10.0);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("divergent collective"), std::string::npos);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
}

// Many detectors and one completer race to terminate the same work; the
// exercise is that no interleaving aborts and exactly one verdict sticks.
// Under the TSan CI leg this also vets the Work mutex discipline.
TEST(WorkContractTest, ConcurrentTerminalRaceYieldsOneVerdict) {
  for (int round = 0; round < 50; ++round) {
    Work work;
    std::vector<std::thread> threads;
    threads.emplace_back([&] { work.MarkCompleted(1.0); });
    for (int d = 0; d < 3; ++d) {
      threads.emplace_back([&work, d] {
        work.MarkFailed(WorkError::kTimeout,
                        "watchdog " + std::to_string(d), 2.0 + d);
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_TRUE(work.Poll());
    if (work.IsCompleted()) {
      EXPECT_EQ(work.error(), WorkError::kNone);
      EXPECT_DOUBLE_EQ(work.completion_time(), 1.0);
    } else {
      EXPECT_EQ(work.error(), WorkError::kTimeout);
      EXPECT_GE(work.completion_time(), 2.0);
    }
  }
}

TEST(WorkContractTest, InvalidArgumentsYieldPreFailedHandle) {
  SimWorld::Run(2, [](SimWorld::RankContext& ctx) {
    // Undefined tensor: immediately-failed handle, no abort.
    Tensor undefined;
    WorkHandle bad = ctx.process_group->AllReduce(undefined, ReduceOp::kSum);
    ASSERT_NE(bad, nullptr);
    EXPECT_TRUE(bad->Poll());
    EXPECT_FALSE(bad->IsCompleted());
    EXPECT_EQ(bad->error(), WorkError::kShapeMismatch);
    EXPECT_FALSE(bad->status().ok());

    // Out-of-range root on broadcast: same contract.
    Tensor t = Tensor::Full({4}, static_cast<float>(ctx.rank + 1));
    WorkHandle bad_root = ctx.process_group->Broadcast(t, /*root=*/7);
    ASSERT_NE(bad_root, nullptr);
    EXPECT_TRUE(bad_root->Poll());
    EXPECT_EQ(bad_root->error(), WorkError::kShapeMismatch);
  });
}

// The invalid call must consume no sequence number: rank 0 issues one
// rejected collective that rank 1 never issues, then both ranks run a
// valid AllReduce — which must still pair up and produce the correct sum
// instead of deadlocking or mixing sequences.
TEST(WorkContractTest, PreFailedWorkConsumesNoSequenceNumber) {
  SimWorld::Run(2, [](SimWorld::RankContext& ctx) {
    if (ctx.rank == 0) {
      Tensor undefined;
      WorkHandle bad = ctx.process_group->AllReduce(undefined, ReduceOp::kSum);
      ASSERT_TRUE(bad->Poll());
      ASSERT_FALSE(bad->status().ok());
    }
    Tensor t = Tensor::Full({3}, static_cast<float>(ctx.rank + 1));
    WorkHandle ok = ctx.process_group->AllReduce(t, ReduceOp::kSum);
    ASSERT_NE(ok, nullptr);
    const Status st = ok->Wait(ctx.clock, /*timeout_seconds=*/30.0);
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (int64_t i = 0; i < t.numel(); ++i) {
      EXPECT_DOUBLE_EQ(t.FlatAt(i), 3.0);  // 1 + 2 from the two ranks
    }
  });
}

}  // namespace
}  // namespace ddpkit::comm
