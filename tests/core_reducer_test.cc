#include <gtest/gtest.h>

#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/reducer.h"
#include "nn/zoo.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

TEST(ReducerTest, BucketCountMatchesAssignment) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(1);
    nn::Mlp mlp({8, 16, 4}, &rng);
    ReducerOptions options;
    options.bucket_cap_bytes = 0;  // one bucket per gradient
    Reducer reducer(mlp.parameters(), ctx.process_group, options);
    EXPECT_EQ(reducer.num_buckets(), mlp.parameters().size());
  });
}

TEST(ReducerTest, SingleBackwardAveragesGradients) {
  constexpr int kWorld = 4;
  std::vector<double> grads(kWorld, 0.0);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({3}, 1.0);
    p.set_requires_grad(true);
    Reducer reducer({p}, ctx.process_group, ReducerOptions{});
    // Each rank's local gradient is rank+1; the average is 2.5.
    Tensor x = Tensor::Full({3}, ctx.rank + 1.0);
    Tensor loss = ops::SumAll(ops::Mul(p, x));
    reducer.PrepareForBackward({loss}, /*will_sync=*/true);
    autograd::Backward(loss);
    EXPECT_TRUE(reducer.backward_finalized());
    grads[static_cast<size_t>(ctx.rank)] = p.grad().FlatAt(0);
  });
  for (double g : grads) {
    EXPECT_DOUBLE_EQ(g, (1.0 + 2.0 + 3.0 + 4.0) / 4.0);
  }
}

TEST(ReducerTest, MultipleBucketsAllReduced) {
  constexpr int kWorld = 2;
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(2);
    nn::Mlp mlp({16, 32, 8}, &rng);
    ReducerOptions options;
    options.bucket_cap_bytes = 1024;  // force several buckets
    Reducer reducer(mlp.parameters(), ctx.process_group, options);
    EXPECT_GT(reducer.num_buckets(), 2u);

    Tensor x = Tensor::Full({4, 16}, ctx.rank == 0 ? 1.0 : -1.0);
    Tensor loss = ops::MeanAll(mlp.Forward(x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    EXPECT_TRUE(reducer.backward_finalized());
    EXPECT_EQ(reducer.stats().allreduces_launched, reducer.num_buckets());
  });
}

TEST(ReducerTest, GradientsIdenticalAcrossRanks) {
  constexpr int kWorld = 3;
  std::vector<std::vector<float>> flat_grads(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(3);  // same weights everywhere
    nn::Mlp mlp({6, 10, 2}, &rng);
    Reducer reducer(mlp.parameters(), ctx.process_group, ReducerOptions{});
    Rng data_rng(100 + ctx.rank);  // different data per rank
    Tensor x = Tensor::Randn({5, 6}, &data_rng);
    Tensor loss = ops::MeanAll(mlp.Forward(x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    for (const Tensor& p : mlp.parameters()) {
      Tensor g = p.grad();
      for (int64_t i = 0; i < g.numel(); ++i) {
        flat_grads[static_cast<size_t>(ctx.rank)].push_back(
            static_cast<float>(g.FlatAt(i)));
      }
    }
  });
  // Synchronized gradients must be bit-identical across ranks.
  EXPECT_EQ(flat_grads[0], flat_grads[1]);
  EXPECT_EQ(flat_grads[0], flat_grads[2]);
}

TEST(ReducerTest, ReplenishesPendingCountsAcrossIterations) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(4);
    nn::Mlp mlp({4, 4}, &rng);
    Reducer reducer(mlp.parameters(), ctx.process_group, ReducerOptions{});
    for (int iter = 0; iter < 3; ++iter) {
      mlp.ZeroGrad();
      Tensor x = Tensor::Full({2, 4}, iter + 1.0);
      Tensor loss = ops::MeanAll(mlp.Forward(x));
      reducer.PrepareForBackward({loss}, true);
      autograd::Backward(loss);
      EXPECT_TRUE(reducer.backward_finalized()) << "iter " << iter;
    }
    EXPECT_EQ(reducer.stats().finalized_backwards, 3u);
  });
}

TEST(ReducerTest, ReadyOrderIsReverseRegistrationForChains) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(5);
    nn::Mlp mlp({4, 4, 4}, &rng);  // fc0.w, fc0.b, fc1.w, fc1.b
    Reducer reducer(mlp.parameters(), ctx.process_group, ReducerOptions{});
    Tensor x = Tensor::Full({1, 4}, 1.0);
    Tensor loss = ops::MeanAll(mlp.Forward(x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    const auto& order = reducer.last_ready_order();
    ASSERT_EQ(order.size(), 4u);
    // fc1's parameters (indices 2,3) become ready before fc0's (0,1).
    EXPECT_TRUE(order[0] == 2 || order[0] == 3);
    EXPECT_TRUE(order[3] == 0 || order[3] == 1);
  });
}

TEST(ReducerTest, WorldOfOneStillWorks) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({2}, 1.0);
    p.set_requires_grad(true);
    Reducer reducer({p}, ctx.process_group, ReducerOptions{});
    Tensor loss = ops::SumAll(ops::Mul(p, p));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    EXPECT_TRUE(reducer.backward_finalized());
    EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 2.0);  // unchanged by averaging
  });
}

TEST(ReducerTest, VirtualClockChargesComputeAndComm) {
  std::vector<double> with_model(2), without_model(2);
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(6);
    nn::Mlp mlp({64, 64}, &rng);
    ReducerOptions options;
    options.compute_model = std::make_shared<sim::ComputeCostModel>(
        sim::ComputeCostModel::GpuProfile());
    Reducer reducer(mlp.parameters(), ctx.process_group, options);
    Tensor x = Tensor::Full({1, 64}, 1.0);
    Tensor loss = ops::MeanAll(mlp.Forward(x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    with_model[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(6);
    nn::Mlp mlp({64, 64}, &rng);
    Reducer reducer(mlp.parameters(), ctx.process_group, ReducerOptions{});
    Tensor x = Tensor::Full({1, 64}, 1.0);
    Tensor loss = ops::MeanAll(mlp.Forward(x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    without_model[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  EXPECT_GT(with_model[0], without_model[0]);
}

TEST(ReducerTest, StatsCountBytes) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({100}, 1.0);
    p.set_requires_grad(true);
    Reducer reducer({p}, ctx.process_group, ReducerOptions{});
    Tensor loss = ops::SumAll(ops::Mul(p, p));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    EXPECT_EQ(reducer.stats().bytes_reduced, 400u);
  });
}

}  // namespace
}  // namespace ddpkit::core
