// Layer dropping (paper §6.2.2) end to end: same-seed coordination keeps
// ranks aligned, skipped layers stay out of the autograd graph, DDP with
// find_unused_parameters handles the per-iteration sub-graphs, and — the
// paper's key observation — the communicated volume does NOT shrink when
// layers are dropped, because parameter-to-bucket mapping is fixed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/stochastic_depth.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

namespace ddpkit::nn {
namespace {

using comm::SimWorld;

/// Residual stack of droppable MLP blocks (shape-preserving).
class DroppableStack : public Module {
 public:
  DroppableStack(int blocks, int64_t dim, double drop_prob, uint64_t seed,
                 Rng* rng) {
    for (int i = 0; i < blocks; ++i) {
      auto inner = std::make_shared<Linear>(dim, dim, rng);
      layers_.push_back(RegisterModule(
          "block" + std::to_string(i),
          std::make_shared<StochasticDepth>(inner, drop_prob,
                                            seed + static_cast<uint64_t>(i))));
    }
    // Always-active head so the loss has a gradient path even in the
    // (possible) iteration where every droppable block skips.
    head_ = RegisterModule("head", std::make_shared<Linear>(dim, dim, rng));
  }
  Tensor Forward(const Tensor& input) override {
    Tensor x = input;
    for (auto& layer : layers_) {
      x = ops::Add(x, layer->Forward(x));  // residual
    }
    return head_->Forward(x);
  }
  const std::vector<std::shared_ptr<StochasticDepth>>& layers() const {
    return layers_;
  }

 private:
  std::vector<std::shared_ptr<StochasticDepth>> layers_;
  std::shared_ptr<Linear> head_;
};

TEST(StochasticDepthTest, NeverSkipsInEvalMode) {
  Rng rng(1);
  auto inner = std::make_shared<Linear>(4, 4, &rng);
  StochasticDepth layer(inner, 0.9, 7);
  layer.SetTraining(false);
  for (int i = 0; i < 20; ++i) {
    layer.Forward(Tensor::Ones({1, 4}));
    EXPECT_FALSE(layer.last_forward_skipped());
  }
}

TEST(StochasticDepthTest, SkipReturnsInputUnchanged) {
  Rng rng(2);
  auto inner = std::make_shared<Linear>(4, 4, &rng);
  StochasticDepth layer(inner, 0.999999, 7);  // virtually always skip
  Tensor x = Tensor::Full({2, 4}, 3.0);
  Tensor out = layer.Forward(x);
  ASSERT_TRUE(layer.last_forward_skipped());
  EXPECT_TRUE(out.is_same(x));
}

TEST(StochasticDepthTest, SameSeedSameDecisions) {
  Rng rng_a(3), rng_b(4);  // different weights are fine
  auto inner_a = std::make_shared<Linear>(4, 4, &rng_a);
  auto inner_b = std::make_shared<Linear>(4, 4, &rng_b);
  StochasticDepth a(inner_a, 0.5, /*seed=*/99);
  StochasticDepth b(inner_b, 0.5, /*seed=*/99);
  Tensor x = Tensor::Ones({1, 4});
  for (int i = 0; i < 50; ++i) {
    a.Forward(x);
    b.Forward(x);
    EXPECT_EQ(a.last_forward_skipped(), b.last_forward_skipped()) << i;
  }
}

TEST(StochasticDepthTest, SkipRateApproximatesDropProb) {
  Rng rng(5);
  auto inner = std::make_shared<Linear>(2, 2, &rng);
  StochasticDepth layer(inner, 0.3, 11);
  int skipped = 0;
  Tensor x = Tensor::Ones({1, 2});
  for (int i = 0; i < 2000; ++i) {
    layer.Forward(x);
    if (layer.last_forward_skipped()) ++skipped;
  }
  EXPECT_NEAR(skipped / 2000.0, 0.3, 0.05);
}

TEST(StochasticDepthTest, SkippedLayerGetsNoGradient) {
  Rng rng(6);
  auto inner = std::make_shared<Linear>(4, 4, &rng);
  auto layer = std::make_shared<StochasticDepth>(inner, 0.999999, 13);
  Tensor x = Tensor::Ones({1, 4});
  x.set_requires_grad(true);
  Tensor out = ops::MeanAll(ops::Add(x, layer->Forward(x)));
  autograd::Backward(out);
  for (const Tensor& p : inner->parameters()) {
    EXPECT_FALSE(p.grad().defined());
  }
}

TEST(StochasticDepthTest, DdpTrainsWithCoordinatedDropping) {
  constexpr int kWorld = 2;
  std::vector<std::vector<float>> params(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(7);  // same model weights AND same drop seed on all ranks
    auto model = std::make_shared<DroppableStack>(3, 6, 0.5, /*seed=*/21,
                                                  &rng);
    core::DdpOptions options;
    options.find_unused_parameters = true;
    core::DistributedDataParallel ddp(model, ctx.process_group, options);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.01});
    for (int step = 0; step < 6; ++step) {
      opt.ZeroGrad();
      Rng data_rng(step * 5 + ctx.rank);
      Tensor x = Tensor::Randn({2, 6}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      EXPECT_TRUE(ddp.reducer().backward_finalized()) << "step " << step;
      opt.Step(ddp.globally_used_mask());
    }
    std::vector<float> flat;
    for (const Tensor& p : model->parameters()) {
      for (int64_t i = 0; i < p.numel(); ++i) {
        flat.push_back(static_cast<float>(p.FlatAt(i)));
      }
    }
    params[static_cast<size_t>(ctx.rank)] = std::move(flat);
  });
  EXPECT_EQ(params[0], params[1]);  // replicas never diverge
}

TEST(StochasticDepthTest, CommunicatedBytesDoNotShrinkWhenLayersDrop) {
  // The §6.2.2 caveat: AllReduce granularity is the bucket, so dropping
  // layers saves compute but not (with the fixed mapping) communication.
  constexpr int kWorld = 2;
  uint64_t bytes_with_drop = 0, bytes_without = 0;
  auto run = [&](double drop_prob, uint64_t* bytes_out) {
    SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
      Rng rng(8);
      auto model = std::make_shared<DroppableStack>(3, 6, drop_prob, 31,
                                                    &rng);
      core::DdpOptions options;
      options.find_unused_parameters = true;
      core::DistributedDataParallel ddp(model, ctx.process_group, options);
      for (int step = 0; step < 4; ++step) {
        model->ZeroGrad();
        Tensor x = Tensor::Full({2, 6}, 1.0);
        autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      }
      if (ctx.rank == 0) *bytes_out = ddp.reducer().stats().bytes_reduced;
    });
  };
  run(0.7, &bytes_with_drop);
  run(0.0, &bytes_without);
  EXPECT_EQ(bytes_with_drop, bytes_without);
}

}  // namespace
}  // namespace ddpkit::nn
