// Tests for the extended collective surface: Reduce, ReduceScatter, Gather
// (data-plane algorithms and process-group semantics).

#include <gtest/gtest.h>

#include <vector>

#include "comm/sim_world.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::comm {
namespace {

// ---- Data-plane algorithms --------------------------------------------------

TEST(ReduceAlgoTest, OnlyRootReceivesSum) {
  std::vector<Tensor> tensors = {
      Tensor::Full({4}, 1.0),
      Tensor::Full({4}, 2.0),
      Tensor::Full({4}, 3.0),
  };
  RunReduce(Algorithm::kTree, ReduceOp::kSum, tensors, /*root=*/1);
  EXPECT_DOUBLE_EQ(tensors[0].FlatAt(0), 1.0);  // untouched
  EXPECT_DOUBLE_EQ(tensors[1].FlatAt(0), 6.0);  // reduced
  EXPECT_DOUBLE_EQ(tensors[2].FlatAt(0), 3.0);  // untouched
}

TEST(ReduceAlgoTest, MaxOperator) {
  std::vector<Tensor> tensors = {
      Tensor::FromVector({1, 9}, {2}),
      Tensor::FromVector({5, 2}, {2}),
  };
  RunReduce(Algorithm::kNaive, ReduceOp::kMax, tensors, 0);
  EXPECT_DOUBLE_EQ(tensors[0].FlatAt(0), 5.0);
  EXPECT_DOUBLE_EQ(tensors[0].FlatAt(1), 9.0);
}

TEST(ReduceScatterAlgoTest, EachRankGetsItsReducedChunk) {
  constexpr int kWorld = 3;
  std::vector<Tensor> inputs, outputs;
  for (int r = 0; r < kWorld; ++r) {
    // input of rank r: [r+1, r+1, ...] over 3 chunks of 2.
    inputs.push_back(Tensor::Full({6}, r + 1.0));
    outputs.push_back(Tensor::Zeros({2}));
  }
  RunReduceScatter(ReduceOp::kSum, inputs, outputs);
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_DOUBLE_EQ(outputs[static_cast<size_t>(r)].FlatAt(0), 6.0);
    EXPECT_DOUBLE_EQ(outputs[static_cast<size_t>(r)].FlatAt(1), 6.0);
  }
}

TEST(ReduceScatterAlgoTest, MatchesAllReducePerChunk) {
  constexpr int kWorld = 4;
  const int64_t chunk = 5;
  Rng rng(9);
  std::vector<Tensor> inputs, outputs, allreduce_copy;
  for (int r = 0; r < kWorld; ++r) {
    inputs.push_back(Tensor::Randn({chunk * kWorld}, &rng));
    outputs.push_back(Tensor::Zeros({chunk}));
    allreduce_copy.push_back(inputs.back().Clone());
  }
  RunReduceScatter(ReduceOp::kSum, inputs, outputs);
  RunAllReduce(Algorithm::kRing, ReduceOp::kSum, allreduce_copy);
  // Chunk r of the all-reduced result equals rank r's reduce-scatter
  // output (bit-exact: same combine order by construction).
  for (int r = 0; r < kWorld; ++r) {
    Tensor expected = allreduce_copy[0].Narrow(0, r * chunk, chunk);
    EXPECT_EQ(kernels::MaxAbsDiff(outputs[static_cast<size_t>(r)], expected),
              0.0);
  }
}

TEST(GatherAlgoTest, RootCollectsInRankOrder) {
  std::vector<Tensor> inputs = {
      Tensor::Full({2}, 1.0),
      Tensor::Full({2}, 2.0),
  };
  Tensor out = Tensor::Zeros({4});
  RunGather(inputs, out, /*root=*/0);
  EXPECT_DOUBLE_EQ(out.FlatAt(0), 1.0);
  EXPECT_DOUBLE_EQ(out.FlatAt(2), 2.0);
}

// ---- Process-group semantics ----------------------------------------------------

TEST(ReducePgTest, RootGetsSumOthersKeepLocal) {
  constexpr int kWorld = 3;
  std::vector<double> values(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({4}, ctx.rank + 1.0);
    ctx.process_group->Reduce(t, /*root=*/2)->Wait(ctx.clock);
    values[static_cast<size_t>(ctx.rank)] = t.FlatAt(0);
  });
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
  EXPECT_DOUBLE_EQ(values[2], 6.0);
}

TEST(ReduceScatterPgTest, DistributedChunks) {
  constexpr int kWorld = 2;
  std::vector<std::vector<double>> chunks(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor input = Tensor::FromVector(
        ctx.rank == 0 ? std::vector<float>{1, 2, 3, 4}
                      : std::vector<float>{10, 20, 30, 40},
        {4});
    Tensor output = Tensor::Zeros({2});
    ctx.process_group->ReduceScatter(input, output)->Wait(ctx.clock);
    for (int64_t i = 0; i < 2; ++i) {
      chunks[static_cast<size_t>(ctx.rank)].push_back(output.FlatAt(i));
    }
  });
  EXPECT_EQ(chunks[0], (std::vector<double>{11.0, 22.0}));
  EXPECT_EQ(chunks[1], (std::vector<double>{33.0, 44.0}));
}

TEST(GatherPgTest, OnlyRootHasResult) {
  constexpr int kWorld = 3;
  std::vector<double> first(kWorld, -1.0);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Tensor input = Tensor::Full({2}, 10.0 * (ctx.rank + 1));
    Tensor output;  // undefined on non-roots
    if (ctx.rank == 1) output = Tensor::Zeros({6});
    ctx.process_group->Gather(input, output, /*root=*/1)->Wait(ctx.clock);
    if (ctx.rank == 1) {
      EXPECT_DOUBLE_EQ(output.FlatAt(0), 10.0);
      EXPECT_DOUBLE_EQ(output.FlatAt(2), 20.0);
      EXPECT_DOUBLE_EQ(output.FlatAt(4), 30.0);
    }
  });
}

TEST(ExtraCollectivesTest, AdvanceVirtualClocks) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({1 << 16}, 1.0);
    ctx.process_group->Reduce(t, 0)->Wait(ctx.clock);
    const double after_reduce = ctx.clock->Now();
    EXPECT_GT(after_reduce, 0.0);
    Tensor input = Tensor::Full({1 << 16}, 1.0);
    Tensor output = Tensor::Zeros({1 << 15});
    ctx.process_group->ReduceScatter(input, output)->Wait(ctx.clock);
    EXPECT_GT(ctx.clock->Now(), after_reduce);
  });
}

TEST(ExtraCollectivesTest, ReduceScatterCheaperThanAllReduce) {
  std::vector<double> rs_time(2), ar_time(2);
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Tensor input = Tensor::Full({1 << 20}, 1.0);
    Tensor output = Tensor::Zeros({1 << 19});
    ctx.process_group->ReduceScatter(input, output)->Wait(ctx.clock);
    rs_time[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({1 << 20}, 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    ar_time[static_cast<size_t>(ctx.rank)] = ctx.clock->Now();
  });
  EXPECT_LT(rs_time[0], ar_time[0]);
}

}  // namespace
}  // namespace ddpkit::comm
