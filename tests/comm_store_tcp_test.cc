// StoreServerTcp / StoreClientTcp: the wire store must be observably the
// same Store as the in-memory base — same values, same typed timeouts,
// same retry-tier semantics — plus transport-only behaviours (reconnect
// after a server restart). All sockets bind port 0 (collision-proof).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "comm/store.h"
#include "comm/store_tcp.h"
#include "sim/virtual_clock.h"

namespace ddpkit::comm {
namespace {

using StoreServerHandle = std::unique_ptr<StoreServerTcp>;

StoreServerHandle MustStart(int port = 0) {
  Result<StoreServerHandle> server = StoreServerTcp::Start("127.0.0.1", port);
  EXPECT_TRUE(server.ok()) << server.status().message();
  return std::move(server).value();
}

double WallSeconds() {
  // This test measures real wall-clock behaviour of the wire store.
  const auto now =
      std::chrono::steady_clock::now();  // ddplint: allow(banned-nondeterminism) reason: real-time store test
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

TEST(StoreTcpTest, PingReachesServer) {
  StoreServerHandle server = MustStart();
  StoreClientTcp client("127.0.0.1", server->port());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(StoreTcpTest, SetGetTryGetParity) {
  StoreServerHandle server = MustStart();
  StoreClientTcp client("127.0.0.1", server->port());
  Store reference;

  const std::vector<std::pair<std::string, std::string>> entries = {
      {"a", "1"}, {"b", ""}, {"nested/key/path", std::string(1000, 'x')}};
  for (const auto& [key, value] : entries) {
    client.Set(key, value);
    reference.Set(key, value);
  }
  for (const auto& [key, value] : entries) {
    std::string via_wire, via_memory;
    EXPECT_TRUE(client.TryGet(key, &via_wire));
    EXPECT_TRUE(reference.TryGet(key, &via_memory));
    EXPECT_EQ(via_wire, via_memory);
    EXPECT_EQ(client.Get(key), reference.Get(key));
  }
  EXPECT_EQ(client.NumKeys(), reference.NumKeys());
  std::string missing;
  EXPECT_FALSE(client.TryGet("absent", &missing));
}

TEST(StoreTcpTest, AddIsAtomicAcrossClients) {
  StoreServerHandle server = MustStart();
  constexpr int kClients = 4;
  constexpr int kIncrements = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      StoreClientTcp client("127.0.0.1", server->port());
      for (int i = 0; i < kIncrements; ++i) client.Add("counter", 1);
    });
  }
  for (auto& t : threads) t.join();
  StoreClientTcp reader("127.0.0.1", server->port());
  EXPECT_EQ(reader.Add("counter", 0), kClients * kIncrements);
}

TEST(StoreTcpTest, TwoClientsShareOneNamespace) {
  StoreServerHandle server = MustStart();
  StoreClientTcp writer("127.0.0.1", server->port());
  StoreClientTcp reader("127.0.0.1", server->port());
  writer.Set("shared", "value");
  EXPECT_EQ(reader.Get("shared"), "value");
  // And the launcher-side backing store sees the same data.
  std::string via_backing;
  EXPECT_TRUE(server->backing().TryGet("shared", &via_backing));
  EXPECT_EQ(via_backing, "value");
}

TEST(StoreTcpTest, GetBlocksUntilAnotherClientSets) {
  StoreServerHandle server = MustStart();
  StoreClientTcp reader("127.0.0.1", server->port());
  std::string got;
  std::thread blocked([&] { got = reader.Get("late"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  StoreClientTcp writer("127.0.0.1", server->port());
  writer.Set("late", "arrived");
  blocked.join();
  EXPECT_EQ(got, "arrived");
}

TEST(StoreTcpTest, WaitSeesKeysFromOtherClients) {
  StoreServerHandle server = MustStart();
  StoreClientTcp waiter("127.0.0.1", server->port());
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    StoreClientTcp writer("127.0.0.1", server->port());
    writer.Set("w1", "a");
    writer.Set("w2", "b");
  });
  waiter.Wait({"w1", "w2"});  // returns only once both exist
  setter.join();
  std::string value;
  EXPECT_TRUE(waiter.TryGet("w2", &value));
}

TEST(StoreTcpTest, DeleteKeyAndPrefixParity) {
  StoreServerHandle server = MustStart();
  StoreClientTcp client("127.0.0.1", server->port());
  client.Set("epoch0/a", "1");
  client.Set("epoch0/b", "2");
  client.Set("epoch1/a", "3");
  EXPECT_TRUE(client.DeleteKey("epoch0/a"));
  EXPECT_FALSE(client.DeleteKey("epoch0/a"));
  EXPECT_EQ(client.DeletePrefix("epoch0/"), 1u);
  EXPECT_EQ(client.NumKeys(), 1u);
  std::string value;
  EXPECT_TRUE(client.TryGet("epoch1/a", &value));
}

TEST(StoreTcpTest, BoundedGetTimesOutTyped) {
  StoreServerHandle server = MustStart();
  StoreClientTcp client("127.0.0.1", server->port());
  const double start = WallSeconds();
  Result<std::string> result = client.GetWithRetry("never-set", 0.3);
  const double elapsed = WallSeconds() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimedOut)
      << result.status().message();
  EXPECT_GE(elapsed, 0.25);  // actually waited (server-held slices)
  EXPECT_LT(elapsed, 5.0);   // and didn't hang
}

TEST(StoreTcpTest, BoundedGetReturnsValueSetMidWait) {
  StoreServerHandle server = MustStart();
  StoreClientTcp client("127.0.0.1", server->port());
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    StoreClientTcp writer("127.0.0.1", server->port());
    writer.Set("mid-wait", "v");
  });
  Result<std::string> result = client.GetWithRetry("mid-wait", 5.0);
  setter.join();
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value(), "v");
}

TEST(StoreTcpTest, ClientReconnectsAfterServerRestart) {
  StoreServerHandle server = MustStart();
  const int port = server->port();
  StoreClientTcp client("127.0.0.1", port);
  client.Set("before", "restart");

  server->Stop();
  server.reset();
  // Same port, fresh server (fresh, empty backing store): the client's
  // next retryable attempt reconnects transparently.
  server = MustStart(port);
  EXPECT_TRUE(client.SetWithRetry("after", "reconnect").ok());
  std::string value;
  EXPECT_TRUE(client.TryGet("after", &value));
  EXPECT_EQ(value, "reconnect");
  // The restart counts as (at least one) observed transport failure.
  EXPECT_GE(client.transient_failures(), 1u);
}

TEST(StoreTcpTest, UnreachableServerFailsTypedNotHangs) {
  // Grab a port that is free, then close the listener so nothing answers.
  int dead_port;
  {
    StoreServerHandle server = MustStart();
    dead_port = server->port();
    server->Stop();
  }
  StoreClientTcp::Options options;
  options.connect_timeout_seconds = 0.2;
  StoreClientTcp client("127.0.0.1", dead_port, options);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_seconds = 0.01;
  const double start = WallSeconds();
  const Status status = client.SetWithRetry("k", "v", policy);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status.message();
  EXPECT_LT(WallSeconds() - start, 30.0);
}

// Satellite: the retry tier's clock choice. The same decision tree that
// wall-clock TCP waits exercise must be steerable onto a virtual clock so
// sim tests replay it deterministically — backoff cost and deadline math
// accrue on the virtual clock, with (almost) no real time spent.
TEST(StoreTcpTest, VirtualClockRetryIsDeterministicAndFast) {
  sim::VirtualClock clock;
  Store store;  // in-memory: the sim configuration of the same tier
  RetryPolicy policy;
  policy.clock_mode = RetryPolicy::ClockMode::kVirtual;
  policy.virtual_clock = &clock;
  policy.initial_backoff_seconds = 0.25;
  policy.backoff_multiplier = 2.0;

  const double wall_start = WallSeconds();
  Result<std::string> result = store.GetWithRetry("never", 1.0, policy);
  const double wall_elapsed = WallSeconds() - wall_start;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimedOut);
  // Poll misses cost doubling backoff on the virtual clock until the
  // virtual deadline passes; the final timestamp is identical on every run.
  EXPECT_GE(clock.Now(), 1.0);
  EXPECT_LT(clock.Now(), 2.0);
  // ...while wall time is a few yields, not a second of sleeping.
  EXPECT_LT(wall_elapsed, 0.5);

  // Injected transient faults consume the same budget deterministically.
  sim::VirtualClock clock2;
  Store flaky;
  flaky.InjectTransientFaults(2);
  RetryPolicy policy2 = policy;
  policy2.virtual_clock = &clock2;
  flaky.Set("key", "value");
  Result<std::string> recovered = flaky.GetWithRetry("key", 1.0, policy2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered.value(), "value");
  EXPECT_EQ(flaky.transient_failures(), 2u);
}

TEST(StoreTcpTest, WireRetryPolicyHonorsRealClock) {
  StoreServerHandle server = MustStart();
  StoreClientTcp client("127.0.0.1", server->port());
  // kReal is the default; a healthy wire Get within deadline returns
  // promptly once the key appears.
  client.Set("ready", "now");
  Result<std::string> result = client.GetWithRetry("ready", 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "now");
}

TEST(StoreTcpTest, ServerStopUnblocksHeldGets) {
  StoreServerHandle server = MustStart();
  StoreClientTcp::Options options;
  options.connect_timeout_seconds = 0.2;  // keep post-Stop reconnects short
  StoreClientTcp client("127.0.0.1", server->port(), options);
  std::thread blocked([&] {
    // Bounded wait held server-side; Stop() must not strand it for the
    // full timeout.
    Result<std::string> result = client.GetWithRetry("never", 30.0);
    EXPECT_FALSE(result.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double start = WallSeconds();
  server->Stop();
  blocked.join();
  EXPECT_LT(WallSeconds() - start, 10.0);
}

// Regression: per-connection thread lifecycle under churn. A client that
// connects, does one RPC, and drops the socket — the self-healing TCP
// backend's re-mesh does exactly this against the rendezvous store — must
// not grow the server's thread table without bound: the accept loop reaps
// finished threads before admitting each newcomer.
TEST(StoreTcpTest, ConnectionChurnKeepsThreadCountBounded) {
  StoreServerHandle server = MustStart();
  constexpr int kCycles = 100;
  size_t max_tracked = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    StoreClientTcp client("127.0.0.1", server->port());
    ASSERT_TRUE(client.Ping().ok()) << "cycle " << cycle;
    // Client destructor closes the socket: a hard reset from the server
    // thread's point of view.
    max_tracked = std::max(max_tracked, server->tracked_connections());
  }
  // Sequential churn leaves at most a handful of threads between the
  // moment a client hangs up and the next accept's reap. Without reaping
  // this reaches kCycles.
  EXPECT_LE(max_tracked, 16u) << "dead connection threads accumulate";

  // After the dust settles, one more connection's reap leaves only itself
  // (and any stragglers still in their epilogue).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  StoreClientTcp last("127.0.0.1", server->port());
  ASSERT_TRUE(last.Ping().ok());
  EXPECT_LE(server->tracked_connections(), 4u);
}

}  // namespace
}  // namespace ddpkit::comm
