#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/fault_plan.h"
#include "comm/round_robin_process_group.h"
#include "comm/sim_world.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/zoo.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::comm {
namespace {

using core::DdpOptions;
using core::DistributedDataParallel;

/// Restores the global pool size after a test that resizes it.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : previous_(ThreadPool::Global().num_threads()) {}
  ~PoolSizeGuard() { ThreadPool::SetNumThreads(previous_); }

 private:
  int previous_;
};

// ---------------------------------------------------------------------------
// FaultPlan bookkeeping
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, QueriesReflectSchedule) {
  FaultPlan plan;
  plan.StallRank(1, 3, 2.5);
  plan.DelayCompletion(0, 4, 1.0);
  plan.DelayCompletion(2, 4, 3.0);  // max across ranks applies
  plan.DropRank(2, 5);
  plan.CrashRank(3, 7);

  EXPECT_DOUBLE_EQ(plan.StallSeconds(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(plan.StallSeconds(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(plan.CompletionDelaySeconds(4), 3.0);
  EXPECT_DOUBLE_EQ(plan.CompletionDelaySeconds(3), 0.0);

  EXPECT_FALSE(plan.IsAbsent(2, 4));
  EXPECT_TRUE(plan.IsAbsent(2, 5));
  EXPECT_TRUE(plan.IsAbsent(2, 9));
  EXPECT_FALSE(plan.IsCrashed(2, 9));  // dropped, not crashed

  EXPECT_FALSE(plan.IsAbsent(3, 6));
  EXPECT_TRUE(plan.IsAbsent(3, 7));
  EXPECT_TRUE(plan.IsCrashed(3, 7));
  EXPECT_TRUE(plan.HasCrash(3));
  EXPECT_EQ(plan.CrashSeq(3), 7u);

  EXPECT_EQ(plan.AbsentRanks(7, 4), (std::vector<int>{2, 3}));
  EXPECT_EQ(plan.AbsentRanks(4, 4), std::vector<int>{});
  EXPECT_NE(plan.AbsenceReason(3, 7).find("crashed"), std::string::npos);
  EXPECT_NE(plan.AbsenceReason(2, 5).find("dropped"), std::string::npos);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan().empty());
}

TEST(FaultPlanTest, RandomStallsAreSeedDeterministic) {
  sim::StragglerModel::Options jitter;
  jitter.stall_probability = 0.5;
  jitter.stall_min_seconds = 1.0;
  jitter.stall_max_seconds = 2.0;
  const sim::StragglerModel model(jitter);

  FaultPlan a, b, c;
  a.AddRandomStalls(/*seed=*/42, /*world=*/4, /*num_seqs=*/16, model);
  b.AddRandomStalls(/*seed=*/42, /*world=*/4, /*num_seqs=*/16, model);
  c.AddRandomStalls(/*seed=*/43, /*world=*/4, /*num_seqs=*/16, model);

  int stalled = 0;
  bool differs_from_c = false;
  for (int r = 0; r < 4; ++r) {
    for (uint64_t s = 0; s < 16; ++s) {
      EXPECT_DOUBLE_EQ(a.StallSeconds(r, s), b.StallSeconds(r, s));
      if (a.StallSeconds(r, s) > 0.0) ++stalled;
      if (a.StallSeconds(r, s) != c.StallSeconds(r, s)) differs_from_c = true;
    }
  }
  EXPECT_GT(stalled, 0);      // p=0.5 over 64 draws: some stalls exist
  EXPECT_LT(stalled, 64);     // ...and not all draws stall
  EXPECT_TRUE(differs_from_c);
}

// ---------------------------------------------------------------------------
// ProcessGroupSim fault semantics
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, StallWithinTimeoutCompletesWithCorrectData) {
  auto plan = std::make_shared<FaultPlan>();
  plan->StallRank(1, 0, 1.5);  // late but inside the watchdog window

  SimWorldOptions options;
  options.fault_plan = plan;
  options.collective_timeout_seconds = 30.0;
  std::vector<double> values(3, 0.0);
  SimWorld::Run(3, options, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({8}, ctx.rank + 1.0);
    Status st = ctx.process_group->AllReduce(t)->Wait(ctx.clock, 30.0);
    EXPECT_TRUE(st.ok()) << st.ToString();
    values[static_cast<size_t>(ctx.rank)] = t.FlatAt(0);
    // Everyone's clock reflects waiting out the straggler.
    EXPECT_GE(ctx.clock->Now(), 1.5);
  });
  for (double v : values) EXPECT_DOUBLE_EQ(v, 1.0 + 2.0 + 3.0);
}

TEST(FaultInjectionTest, StallPastTimeoutSurfacesAsTypedTimeout) {
  auto plan = std::make_shared<FaultPlan>();
  plan->StallRank(1, 0, 100.0);

  SimWorldOptions options;
  options.fault_plan = plan;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({8}, 1.0);
    WorkHandle work = ctx.process_group->AllReduce(t);
    Status st = work->Wait(ctx.clock, 5.0);
    if (ctx.rank == 0) {
      // Punctual rank: the collective finished ~100s after its arrival, far
      // past its 5s watchdog. The diagnostic names the straggler.
      ASSERT_EQ(st.code(), StatusCode::kTimedOut) << st.ToString();
      EXPECT_NE(st.message().find("slowest participant: rank 1"),
                std::string::npos)
          << st.message();
      EXPECT_DOUBLE_EQ(ctx.clock->Now(), 5.0);  // advanced by the timeout
    } else {
      // The straggler itself arrived late and completed promptly.
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    // The work itself completed (data plane ran) — only the punctual
    // rank's watchdog fired.
    EXPECT_TRUE(work->IsCompleted());
    EXPECT_DOUBLE_EQ(t.FlatAt(0), 2.0);
  });
}

TEST(FaultInjectionTest, NonPositiveTimeoutDisablesWatchdog) {
  auto plan = std::make_shared<FaultPlan>();
  plan->StallRank(1, 0, 100.0);

  SimWorldOptions options;
  options.fault_plan = plan;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({4}, 1.0);
    Status st = ctx.process_group->AllReduce(t)->Wait(ctx.clock, 0.0);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_GE(ctx.clock->Now(), 100.0);
  });
}

TEST(FaultInjectionTest, DroppedRankFailsCollectiveWithoutDeadlock) {
  auto plan = std::make_shared<FaultPlan>();
  plan->DropRank(2, /*from_seq=*/0);

  SimWorldOptions options;
  options.fault_plan = plan;
  options.collective_timeout_seconds = 10.0;
  SimWorld::Run(3, options, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({8}, 1.0);
    WorkHandle work = ctx.process_group->AllReduce(t);
    Status st = work->Wait(ctx.clock, 30.0);
    ASSERT_EQ(st.code(), StatusCode::kTimedOut) << st.ToString();
    EXPECT_NE(st.message().find("rank 2"), std::string::npos) << st.message();
    EXPECT_NE(st.message().find("dropped"), std::string::npos) << st.message();
    EXPECT_EQ(work->error(), WorkError::kTimeout);
    EXPECT_TRUE(work->Poll());
    EXPECT_FALSE(work->IsCompleted());
    // The failure is stamped collective_timeout after the last live arrival.
    EXPECT_DOUBLE_EQ(work->completion_time(), 10.0);
  });
}

TEST(FaultInjectionTest, CrashedRankFailsAllRanksNamingIt) {
  auto plan = std::make_shared<FaultPlan>();
  plan->CrashRank(1, /*at_seq=*/1);

  SimWorldOptions options;
  options.fault_plan = plan;
  options.collective_timeout_seconds = 10.0;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Tensor a = Tensor::Full({8}, 1.0);
    Status st0 = ctx.process_group->AllReduce(a)->Wait(ctx.clock, 30.0);
    EXPECT_TRUE(st0.ok()) << st0.ToString();  // seq 0 precedes the crash
    EXPECT_DOUBLE_EQ(a.FlatAt(0), 2.0);

    Tensor b = Tensor::Full({8}, 1.0);
    WorkHandle work = ctx.process_group->AllReduce(b);
    Status st1 = work->Wait(ctx.clock, 30.0);
    ASSERT_EQ(st1.code(), StatusCode::kInternal) << st1.ToString();
    EXPECT_NE(st1.message().find("rank 1"), std::string::npos)
        << st1.message();
    EXPECT_NE(st1.message().find("crashed"), std::string::npos)
        << st1.message();
    EXPECT_EQ(work->error(), WorkError::kRankFailure);
  });
}

TEST(FaultInjectionTest, DelayedCompletionAddsVirtualTime) {
  auto plan = std::make_shared<FaultPlan>();
  plan->DelayCompletion(0, 0, 3.0);

  double baseline = 0.0;
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({1024}, 1.0);
    ctx.process_group->AllReduce(t)->Wait(ctx.clock);
    if (ctx.rank == 0) baseline = ctx.clock->Now();
  });

  SimWorldOptions options;
  options.fault_plan = plan;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Tensor t = Tensor::Full({1024}, 1.0);
    Status st = ctx.process_group->AllReduce(t)->Wait(ctx.clock, 30.0);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_DOUBLE_EQ(t.FlatAt(0), 2.0);
    if (ctx.rank == 0) {
      EXPECT_DOUBLE_EQ(ctx.clock->Now(), baseline + 3.0);
    }
  });
}

TEST(FaultInjectionTest, MismatchedCollectivesFailInsteadOfAborting) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    // Rank 1 issues a structurally different collective at the same seq —
    // the paper's "incorrect reduction result or program crash" scenario.
    Tensor t = ctx.rank == 0 ? Tensor::Full({8}, 1.0)
                             : Tensor::Full({16}, 1.0);
    WorkHandle work = ctx.process_group->AllReduce(t);
    Status st = work->Wait(ctx.clock, 30.0);
    ASSERT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
    EXPECT_NE(st.message().find("diverged"), std::string::npos)
        << st.message();
    EXPECT_EQ(work->error(), WorkError::kShapeMismatch);
  });
}

// ---------------------------------------------------------------------------
// DDP end-to-end fault behaviour
// ---------------------------------------------------------------------------

/// Outcome of one rank's faulted DDP iteration, for cross-thread-count
/// comparison.
struct RankOutcome {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<float> grads;
};

std::vector<float> FlattenGrads(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      out.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }
  return out;
}

/// Two ranks train an Mlp({4,4}) (2 parameters => ctor broadcasts occupy
/// seqs 0-1, the first gradient bucket is seq 2). Rank 1 stalls 100s at the
/// gradient all-reduce against a 5s watchdog: rank 0 must surface a typed
/// timeout through DDP, rank 1 (late but internally consistent) succeeds.
std::vector<RankOutcome> RunStalledDdpIteration() {
  auto plan = std::make_shared<FaultPlan>();
  plan->StallRank(1, /*seq=*/2, 100.0);

  SimWorldOptions options;
  options.fault_plan = plan;
  std::vector<RankOutcome> outcomes(2);
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Rng rng(11);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    DdpOptions ddp_options;
    ddp_options.collective_timeout_seconds = 5.0;
    DistributedDataParallel ddp(model, ctx.process_group, ddp_options);
    Tensor x = Tensor::Full({2, 4}, 0.5);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));

    RankOutcome& out = outcomes[static_cast<size_t>(ctx.rank)];
    out.code = ddp.sync_status().code();
    out.message = ddp.sync_status().message();
    out.grads = FlattenGrads(*model);
  });
  return outcomes;
}

TEST(DdpFaultTest, StalledPeerSurfacesTimeoutNotDeadlock) {
  const std::vector<RankOutcome> outcomes = RunStalledDdpIteration();

  // Rank 0's watchdog fired; the diagnostic names the bucket and straggler.
  EXPECT_EQ(outcomes[0].code, StatusCode::kTimedOut);
  EXPECT_NE(outcomes[0].message.find("gradient bucket 0"), std::string::npos)
      << outcomes[0].message;
  EXPECT_NE(outcomes[0].message.find("slowest participant: rank 1"),
            std::string::npos)
      << outcomes[0].message;
  // Rank 1 arrived late but inside its own watchdog window: it holds the
  // (correctly averaged) gradients.
  EXPECT_EQ(outcomes[1].code, StatusCode::kOk) << outcomes[1].message;
  EXPECT_FALSE(outcomes[1].grads.empty());
}

TEST(DdpFaultTest, TimeoutOutcomeIsIdenticalAcrossThreadCounts) {
  // PR-1 bit-exactness harness pattern: the fault timeline and the surfaced
  // diagnostics must not depend on intra-op pool size.
  PoolSizeGuard guard;
  std::vector<std::vector<RankOutcome>> sweeps;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetNumThreads(threads);
    sweeps.push_back(RunStalledDdpIteration());
  }
  for (size_t i = 1; i < sweeps.size(); ++i) {
    for (size_t r = 0; r < 2; ++r) {
      EXPECT_EQ(sweeps[i][r].code, sweeps[0][r].code) << "rank " << r;
      EXPECT_EQ(sweeps[i][r].message, sweeps[0][r].message) << "rank " << r;
      EXPECT_EQ(sweeps[i][r].grads, sweeps[0][r].grads)
          << "rank " << r << " gradients drifted across pool sizes";
    }
  }
}

TEST(DdpFaultTest, CrashedPeerNamedOnEveryRankAndSyncDisabled) {
  auto plan = std::make_shared<FaultPlan>();
  plan->CrashRank(1, /*at_seq=*/2);  // first gradient bucket (see above)

  SimWorldOptions options;
  options.fault_plan = plan;
  std::vector<RankOutcome> outcomes(2);
  std::vector<uint64_t> launches_after(2, 0);
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Rng rng(12);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    DdpOptions ddp_options;
    ddp_options.collective_timeout_seconds = 5.0;
    DistributedDataParallel ddp(model, ctx.process_group, ddp_options);
    Tensor x = Tensor::Full({2, 4}, 0.5);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));

    RankOutcome& out = outcomes[static_cast<size_t>(ctx.rank)];
    out.code = ddp.sync_status().code();
    out.message = ddp.sync_status().message();
    EXPECT_TRUE(ddp.sync_disabled());

    // The replica survives: further iterations degrade to local-only
    // accumulation and issue no collectives (the peers no longer share a
    // collective sequence).
    const uint64_t before = ddp.reducer().stats().allreduces_launched;
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    launches_after[static_cast<size_t>(ctx.rank)] =
        ddp.reducer().stats().allreduces_launched - before;
    out.grads = FlattenGrads(*model);
  });

  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(outcomes[r].code, StatusCode::kInternal)
        << "rank " << r << ": " << outcomes[r].message;
    EXPECT_NE(outcomes[r].message.find("rank 1"), std::string::npos)
        << "rank " << r << ": " << outcomes[r].message;
    EXPECT_NE(outcomes[r].message.find("crashed"), std::string::npos)
        << "rank " << r << ": " << outcomes[r].message;
    EXPECT_EQ(launches_after[r], 0u) << "rank " << r;
    EXPECT_FALSE(outcomes[r].grads.empty());
  }
}

TEST(DdpFaultTest, BucketLayoutDesyncDetectedAtConstruction) {
  // Rank 1 builds its reducer with a divergent bucket cap — the
  // desynchronized-configuration mistake the paper says yields "incorrect
  // reduction result or program crash". The Store handshake catches it
  // before any gradient collective is issued.
  std::vector<RankOutcome> outcomes(2);
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(13);
    auto model = std::make_shared<nn::Mlp>(
        std::vector<int64_t>{8, 8, 8}, &rng);
    DdpOptions ddp_options;
    if (ctx.rank == 1) ddp_options.bucket_cap_bytes = 64;  // desync!
    DistributedDataParallel ddp(model, ctx.process_group, ddp_options);

    RankOutcome& out = outcomes[static_cast<size_t>(ctx.rank)];
    out.code = ddp.sync_status().code();
    out.message = ddp.sync_status().message();

    // Both replicas survive construction and can still train locally.
    Tensor x = Tensor::Full({2, 8}, 0.5);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    EXPECT_EQ(ddp.reducer().stats().allreduces_launched, 0u);
  });

  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(outcomes[r].code, StatusCode::kFailedPrecondition)
        << "rank " << r << ": " << outcomes[r].message;
    EXPECT_NE(outcomes[r].message.find("rank 1"), std::string::npos)
        << "rank " << r << ": " << outcomes[r].message;
    EXPECT_NE(outcomes[r].message.find("bucket"), std::string::npos)
        << "rank " << r << ": " << outcomes[r].message;
  }
}

TEST(DdpFaultTest, NoSyncIterationsUnaffectedByPlannedFault) {
  // The fault sits at the first *synced* gradient all-reduce (seq 2);
  // no_sync iterations issue no collectives, so they must be oblivious to
  // it, and the eventual synced backward surfaces the typed error while
  // leaving the locally-accumulated gradients intact.
  auto plan = std::make_shared<FaultPlan>();
  plan->DropRank(1, /*from_seq=*/2);

  SimWorldOptions options;
  options.fault_plan = plan;
  options.collective_timeout_seconds = 10.0;
  SimWorld::Run(2, options, [&](SimWorld::RankContext& ctx) {
    Rng rng(14);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    DdpOptions ddp_options;
    ddp_options.collective_timeout_seconds = 10.0;
    DistributedDataParallel ddp(model, ctx.process_group, ddp_options);
    Tensor x = Tensor::Full({2, 4}, 0.5);

    {
      auto guard = ddp.no_sync();
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    }
    EXPECT_TRUE(ddp.sync_status().ok());
    const std::vector<float> after_one = FlattenGrads(*model);

    // Synced backward: the collective is short one participant.
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    if (ctx.rank == 0) {
      EXPECT_EQ(ddp.sync_status().code(), StatusCode::kTimedOut)
          << ddp.sync_status().ToString();
      EXPECT_FALSE(ddp.reducer().backward_finalized());
      // Local accumulation survived the abort: both backwards' gradients
      // are still there, un-averaged.
      const std::vector<float> after_two = FlattenGrads(*model);
      ASSERT_EQ(after_two.size(), after_one.size());
      for (size_t i = 0; i < after_one.size(); ++i) {
        EXPECT_NEAR(after_two[i], 2.0f * after_one[i], 1e-5f) << i;
      }
    } else {
      // The dropped rank's own call pre-fails.
      EXPECT_FALSE(ddp.sync_status().ok());
    }
  });
}

// ---------------------------------------------------------------------------
// Store retry tier
// ---------------------------------------------------------------------------

TEST(StoreRetryTest, TransientFaultsAreRetriedUntilSuccess) {
  Store store;
  store.InjectTransientFaults(/*failure_budget=*/3);

  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 1e-5;
  EXPECT_TRUE(store.SetWithRetry("k", "v", policy).ok());
  EXPECT_GE(store.transient_failures(), 1u);

  auto got = store.GetWithRetry("k", /*timeout_seconds=*/1.0, policy);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), "v");

  int64_t counter = 0;
  EXPECT_TRUE(store.AddWithRetry("n", 5, &counter, policy).ok());
  EXPECT_EQ(counter, 5);
}

TEST(StoreRetryTest, ExhaustedAttemptsSurfaceInternalError) {
  Store store;
  store.InjectTransientFaults(/*failure_budget=*/100);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 1e-5;
  Status st = store.SetWithRetry("k", "v", policy);
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
  EXPECT_EQ(store.transient_failures(), 3u);
}

TEST(StoreRetryTest, BoundedGetTimesOutOnMissingKey) {
  Store store;
  auto got = store.GetWithRetry("never-set", /*timeout_seconds=*/0.05);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kTimedOut)
      << got.status().ToString();
}

TEST(StoreRetryTest, SeededInjectionIsDeterministic) {
  RetryPolicy one_shot;
  one_shot.max_attempts = 1;
  one_shot.initial_backoff_seconds = 1e-6;

  auto run = [&](uint64_t seed) {
    Store store;
    store.InjectTransientFaults(seed, /*probability=*/0.5);
    std::vector<bool> ok;
    for (int i = 0; i < 32; ++i) {
      ok.push_back(
          store.SetWithRetry("k" + std::to_string(i), "v", one_shot).ok());
    }
    return ok;
  };
  EXPECT_EQ(run(7), run(7));
  // Legacy tier is never affected by injection.
  Store store;
  store.InjectTransientFaults(100);
  store.Set("a", "1");
  EXPECT_EQ(store.Get("a"), "1");
  EXPECT_EQ(store.transient_failures(), 0u);
}

// ---------------------------------------------------------------------------
// Round-robin drain & failover
// ---------------------------------------------------------------------------

TEST(RoundRobinFailoverTest, UnhealthyChildIsDrainedAndSkipped) {
  // Child 1 of each rank's composite runs under a plan that drops rank 1
  // immediately; child 0 is fault-free. After DrainAndFailover, dispatch
  // must continue on child 0 alone, on every rank, with correct data.
  auto bad_plan = std::make_shared<FaultPlan>();
  bad_plan->DropRank(1, /*from_seq=*/0);

  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    ProcessGroupSim::Options good_opts;
    ProcessGroupSim::Options bad_opts;
    bad_opts.fault_plan = bad_plan;
    bad_opts.collective_timeout_seconds = 2.0;

    std::vector<std::shared_ptr<ProcessGroup>> children;
    children.push_back(ProcessGroupSim::Create(
        ctx.store, "rr_failover_good", ctx.rank, ctx.world, good_opts,
        ctx.clock));
    children.push_back(ProcessGroupSim::Create(
        ctx.store, "rr_failover_bad", ctx.rank, ctx.world, bad_opts,
        ctx.clock));
    RoundRobinProcessGroup rr(std::move(children));
    EXPECT_EQ(rr.num_healthy_groups(), 2u);

    // Collective 0 -> healthy child, collective 1 -> faulty child.
    Tensor a = Tensor::Full({8}, 1.0);
    Tensor b = Tensor::Full({8}, 1.0);
    rr.AllReduce(a, ReduceOp::kSum);
    rr.AllReduce(b, ReduceOp::kSum);

    Status st = rr.DrainAndFailover(/*timeout_seconds=*/5.0);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kTimedOut) << st.ToString();
    EXPECT_NE(st.message().find("rank 1"), std::string::npos) << st.message();
    EXPECT_EQ(rr.num_healthy_groups(), 1u);
    EXPECT_DOUBLE_EQ(a.FlatAt(0), 2.0);  // healthy child's op completed

    // Every post-failover collective lands on the surviving child.
    for (int i = 0; i < 3; ++i) {
      Tensor t = Tensor::Full({8}, ctx.rank + 1.0);
      Status sti = rr.AllReduce(t, ReduceOp::kSum)->Wait(ctx.clock, 30.0);
      EXPECT_TRUE(sti.ok()) << sti.ToString();
      EXPECT_DOUBLE_EQ(t.FlatAt(0), 3.0);
    }
    EXPECT_TRUE(rr.DrainAndFailover(/*timeout_seconds=*/5.0).ok());
    EXPECT_EQ(rr.num_healthy_groups(), 1u);
  });
}

}  // namespace
}  // namespace ddpkit::comm
