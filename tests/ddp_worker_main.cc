// Test worker for the multi-process wire leg: one OS process = one rank.
// Runs the shared deterministic scenario (multiproc_scenario.h) over
// ProcessGroupTcp using the ddp_launch environment contract, optionally
// raising SIGKILL mid-training (a real unclean death for the chaos case),
// and writes its result line to --digest-out so the host test can compare
// every rank's parameters bit-for-bit against the in-process reference.
//
// Output line format (one line, parseable by the e2e test):
//   ok digest=<hex16> world=<n> generation=<g> recoveries=<k>
//
// ddplint: allow-file(banned-nondeterminism) reason: worker binary of the
// multi-process harness; reads the launcher env contract and dies by
// raise(SIGKILL) on purpose in the chaos scenario.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "comm/backend_factory.h"
#include "comm/process_group_tcp.h"
#include "comm/sim_world.h"
#include "comm/store_tcp.h"
#include "common/status.h"
#include "sim/virtual_clock.h"
#include "tests/multiproc_scenario.h"

namespace {

struct WorkerArgs {
  int steps = 4;
  int kill_rank = -1;
  int kill_step = -1;
  /// Prefix: rank r writes its result line to `<digest_out>.<r>`.
  std::string digest_out;
  /// Compression hook name ("" = stock all-reduce).
  std::string comm_hook;
};

int ParseInt(const char* text) {
  return static_cast<int>(std::strtol(text, nullptr, 10));
}

WorkerArgs ParseArgs(int argc, char** argv) {
  WorkerArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--steps=", 0) == 0) {
      args.steps = ParseInt(value_of("--steps=").c_str());
    } else if (arg.rfind("--kill-rank=", 0) == 0) {
      args.kill_rank = ParseInt(value_of("--kill-rank=").c_str());
    } else if (arg.rfind("--kill-step=", 0) == 0) {
      args.kill_step = ParseInt(value_of("--kill-step=").c_str());
    } else if (arg.rfind("--digest-out=", 0) == 0) {
      args.digest_out = value_of("--digest-out=");
    } else if (arg.rfind("--comm-hook=", 0) == 0) {
      args.comm_hook = value_of("--comm-hook=");
    } else {
      std::fprintf(stderr, "ddp_worker: unknown argument %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using ddpkit::Result;
  using ddpkit::Status;
  namespace comm = ddpkit::comm;
  namespace testing = ddpkit::testing;

  const WorkerArgs args = ParseArgs(argc, argv);

  Result<comm::LaunchEnv> env = comm::ReadLaunchEnv();
  if (!env.ok()) {
    std::fprintf(stderr, "ddp_worker: needs the ddp_launch environment: %s\n",
                 env.status().message().c_str());
    return 2;
  }
  const comm::LaunchEnv launch_env = env.value();

  ddpkit::sim::VirtualClock clock;
  comm::StoreClientTcp store(launch_env.store_host, launch_env.store_port);
  comm::BackendConfig config;
  config.backend = "tcp";
  // Short collective timeout: the chaos case relies on survivors timing out
  // against the killed rank promptly instead of waiting the default 30s.
  config.tcp.collective_timeout_seconds = 5.0;
  Result<std::shared_ptr<comm::ProcessGroup>> group =
      comm::CreateProcessGroupBackend(config, &store, "worker",
                                      launch_env.rank, launch_env.world,
                                      &clock);
  if (!group.ok()) {
    std::fprintf(stderr, "ddp_worker: rank %d rendezvous failed: %s\n",
                 launch_env.rank, group.status().message().c_str());
    return 1;
  }

  comm::SimWorld::RankContext ctx;
  ctx.rank = launch_env.rank;
  ctx.world = launch_env.world;
  ctx.process_group = group.value();
  ctx.clock = &clock;
  ctx.store = &store;
  ctx.group_name = "worker";
  ctx.make_group = [&](uint64_t generation, int new_rank,
                       int new_world) -> std::shared_ptr<comm::ProcessGroup> {
    comm::ProcessGroupTcp::Options regroup_options = config.tcp;
    regroup_options.generation = generation;
    Result<std::shared_ptr<comm::ProcessGroupTcp>> regrouped =
        comm::ProcessGroupTcp::Create(&store, "worker", new_rank, new_world,
                                      regroup_options, &clock);
    if (!regrouped.ok()) {
      std::fprintf(stderr, "ddp_worker: rank %d regroup at g%llu failed: %s\n",
                   launch_env.rank, static_cast<unsigned long long>(generation),
                   regrouped.status().message().c_str());
      return nullptr;
    }
    return regrouped.value();
  };

  testing::ScenarioOptions scenario;
  scenario.total_steps = args.steps;
  scenario.kill_rank = args.kill_rank;
  scenario.kill_step = args.kill_step;
  scenario.comm_hook = args.comm_hook;
  scenario.crash_before_sync = true;  // SIGKILL: peers learn through the wire
  scenario.collective_timeout_seconds =
      config.tcp.collective_timeout_seconds;
  // Survivors reach the rendezvous spread out by up to one collective
  // timeout (neighbours of the corpse see EOF instantly, the rest time
  // out); the window must absorb that spread.
  scenario.rendezvous_timeout_seconds = 20.0;
  const testing::ScenarioResult result =
      testing::RunScenario(ctx, scenario, [] {
        // A real unclean death: no destructors, no socket shutdown — peers
        // must detect it through the wire (EOF/timeout), not cooperation.
        raise(SIGKILL);
      });

  if (!result.ok) {
    std::fprintf(stderr, "ddp_worker: rank %d scenario failed: %s\n",
                 launch_env.rank, result.error.c_str());
    return 1;
  }
  std::printf("ok digest=%s world=%d generation=%llu recoveries=%d\n",
              result.digest.c_str(), result.final_world,
              static_cast<unsigned long long>(result.final_generation),
              result.recoveries);
  if (!args.digest_out.empty()) {
    const std::string path =
        args.digest_out + "." + std::to_string(launch_env.rank);
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "ddp_worker: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(out, "ok digest=%s world=%d generation=%llu recoveries=%d\n",
                 result.digest.c_str(), result.final_world,
                 static_cast<unsigned long long>(result.final_generation),
                 result.recoveries);
    std::fclose(out);
  }
  return 0;
}
