// Test worker for the multi-process wire leg: one OS process = one rank.
// Runs the shared deterministic scenario (multiproc_scenario.h) over
// ProcessGroupTcp using the ddp_launch environment contract, optionally
// raising SIGKILL mid-training (a real unclean death for the chaos case),
// and writes its result line to --digest-out so the host test can compare
// every rank's parameters bit-for-bit against the in-process reference.
//
// Output line format (one line, parseable by the e2e test):
//   ok digest=<hex16> world=<n> generation=<g> recoveries=<k>
//
// ddplint: allow-file(banned-nondeterminism) reason: worker binary of the
// multi-process harness; reads the launcher env contract and dies by
// raise(SIGKILL) on purpose in the chaos scenario.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "comm/backend_factory.h"
#include "comm/chaos_spec.h"
#include "comm/net_fault.h"
#include "comm/process_group_tcp.h"
#include "comm/sim_world.h"
#include "comm/store_tcp.h"
#include "common/status.h"
#include "sim/virtual_clock.h"
#include "tests/multiproc_scenario.h"

namespace {

struct WorkerArgs {
  int steps = 4;
  int kill_rank = -1;
  int kill_step = -1;
  /// Prefix: rank r writes its result line to `<digest_out>.<r>`.
  std::string digest_out;
  /// Compression hook name ("" = stock all-reduce).
  std::string comm_hook;
  /// Survivors below this give up instead of re-forming (world-2 chaos
  /// shrinks to a single-rank run).
  int min_world = 2;
};

int ParseInt(const char* text) {
  return static_cast<int>(std::strtol(text, nullptr, 10));
}

WorkerArgs ParseArgs(int argc, char** argv) {
  WorkerArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--steps=", 0) == 0) {
      args.steps = ParseInt(value_of("--steps=").c_str());
    } else if (arg.rfind("--kill-rank=", 0) == 0) {
      args.kill_rank = ParseInt(value_of("--kill-rank=").c_str());
    } else if (arg.rfind("--kill-step=", 0) == 0) {
      args.kill_step = ParseInt(value_of("--kill-step=").c_str());
    } else if (arg.rfind("--digest-out=", 0) == 0) {
      args.digest_out = value_of("--digest-out=");
    } else if (arg.rfind("--comm-hook=", 0) == 0) {
      args.comm_hook = value_of("--comm-hook=");
    } else if (arg.rfind("--min-world=", 0) == 0) {
      args.min_world = ParseInt(value_of("--min-world=").c_str());
    } else {
      std::fprintf(stderr, "ddp_worker: unknown argument %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using ddpkit::Result;
  using ddpkit::Status;
  namespace comm = ddpkit::comm;
  namespace testing = ddpkit::testing;

  const WorkerArgs args = ParseArgs(argc, argv);

  Result<comm::LaunchEnv> env = comm::ReadLaunchEnv();
  if (!env.ok()) {
    std::fprintf(stderr, "ddp_worker: needs the ddp_launch environment: %s\n",
                 env.status().message().c_str());
    return 2;
  }
  const comm::LaunchEnv launch_env = env.value();

  ddpkit::sim::VirtualClock clock;
  comm::StoreClientTcp store(launch_env.store_host, launch_env.store_port);
  comm::BackendConfig config;
  config.backend = "tcp";
  // Short collective timeout: the chaos case relies on survivors timing out
  // against the killed rank promptly instead of waiting the default 30s.
  config.tcp.collective_timeout_seconds = 5.0;

  // Wire chaos: one plan per run (same spec + seed on every rank), one
  // injector per PROCESS — its sticky activation/heal state must survive
  // group regeneration, so a persistent partition keeps biting while the
  // faulted membership stands.
  const comm::WireChaosEnv chaos = comm::ReadWireChaosEnv();
  comm::WireFaultPlan chaos_plan;
  std::unique_ptr<comm::WireFaultInjector> chaos_injector;
  if (chaos.enabled) {
    Result<comm::WireFaultPlan> parsed = comm::ParseWireChaosSpec(
        chaos.spec, chaos.seed, launch_env.world);
    if (!parsed.ok()) {
      std::fprintf(stderr, "ddp_worker: rank %d bad --chaos spec: %s\n",
                   launch_env.rank, parsed.status().message().c_str());
      return 2;
    }
    chaos_plan = std::move(parsed).value();
    // Short blackholes and a bounded reconnect budget keep a chaos run's
    // worst case well under the launcher timeout.
    chaos_plan.blackhole_cap_seconds = 0.1;
    chaos_injector = std::make_unique<comm::WireFaultInjector>(
        &chaos_plan, launch_env.rank);
    config.tcp.fault_injector = chaos_injector.get();
    config.tcp.max_reconnect_attempts = 4;
    config.tcp.reconnect_timeout_seconds = 1.0;
    config.tcp.reconnect_backoff_seconds = 0.05;
    config.tcp.heartbeat_interval_seconds = 0.25;
    config.tcp.event_sink = [&](const std::string& name,
                                const std::string& detail) {
      std::fprintf(stderr, "[wire-chaos] rank %d %s %s\n", launch_env.rank,
                   name.c_str(), detail.c_str());
    };
    std::fprintf(stderr, "[wire-chaos] rank %d seed=%llu plan:\n%s",
                 launch_env.rank,
                 static_cast<unsigned long long>(chaos.seed),
                 chaos_plan.DebugString().c_str());
  }

  Result<std::shared_ptr<comm::ProcessGroup>> group =
      comm::CreateProcessGroupBackend(config, &store, "worker",
                                      launch_env.rank, launch_env.world,
                                      &clock);
  if (!group.ok()) {
    std::fprintf(stderr, "ddp_worker: rank %d rendezvous failed: %s\n",
                 launch_env.rank, group.status().message().c_str());
    return 1;
  }

  comm::SimWorld::RankContext ctx;
  ctx.rank = launch_env.rank;
  ctx.world = launch_env.world;
  ctx.process_group = group.value();
  ctx.clock = &clock;
  ctx.store = &store;
  ctx.group_name = "worker";
  ctx.make_group = [&](uint64_t generation, int new_rank,
                       int new_world) -> std::shared_ptr<comm::ProcessGroup> {
    comm::ProcessGroupTcp::Options regroup_options = config.tcp;
    regroup_options.generation = generation;
    // A shrunken generation renumbers ranks, so the launch-rank-keyed wire
    // faults no longer map onto its links: regrouped meshes run clean (the
    // partitioned host was evicted, as in production it would be replaced).
    regroup_options.fault_injector = nullptr;
    regroup_options.max_reconnect_attempts = 0;
    regroup_options.heartbeat_interval_seconds = 0.0;
    Result<std::shared_ptr<comm::ProcessGroupTcp>> regrouped =
        comm::ProcessGroupTcp::Create(&store, "worker", new_rank, new_world,
                                      regroup_options, &clock);
    if (!regrouped.ok()) {
      std::fprintf(stderr, "ddp_worker: rank %d regroup at g%llu failed: %s\n",
                   launch_env.rank, static_cast<unsigned long long>(generation),
                   regrouped.status().message().c_str());
      return nullptr;
    }
    return regrouped.value();
  };

  testing::ScenarioOptions scenario;
  scenario.total_steps = args.steps;
  scenario.kill_rank = args.kill_rank;
  scenario.kill_step = args.kill_step;
  scenario.comm_hook = args.comm_hook;
  scenario.min_world = args.min_world;
  scenario.crash_before_sync = true;  // SIGKILL: peers learn through the wire
  scenario.collective_timeout_seconds =
      config.tcp.collective_timeout_seconds;
  // Survivors reach the rendezvous spread out by up to one collective
  // timeout (neighbours of the corpse see EOF instantly, the rest time
  // out); the window must absorb that spread.
  scenario.rendezvous_timeout_seconds = 20.0;
  if (chaos.enabled) {
    // Eviction policy for unhealable partitions: when a sync fails, the
    // HIGHER rank of a persistently partitioned pair steps aside so the
    // survivors can re-form without it. Both endpoints derive the same
    // verdict from the shared plan; the tie-break (higher leaves) makes
    // the survivor set deterministic.
    scenario.should_self_evict = [&] {
      for (int peer = 0; peer < launch_env.rank; ++peer) {
        const auto* out = chaos_plan.FindPartition(launch_env.rank, peer);
        const auto* in = chaos_plan.FindPartition(peer, launch_env.rank);
        const uint64_t op = chaos_injector->op_index();
        const bool dead_out = out != nullptr && out->heal_after_hits == 0 &&
                              op >= out->from_op;
        const bool dead_in = in != nullptr && in->heal_after_hits == 0 &&
                             op >= in->from_op;
        if (dead_out || dead_in) return true;
      }
      return false;
    };
  }
  const testing::ScenarioResult result =
      testing::RunScenario(ctx, scenario, [] {
        // A real unclean death: no destructors, no socket shutdown — peers
        // must detect it through the wire (EOF/timeout), not cooperation.
        raise(SIGKILL);
      });

  if (result.evicted) {
    // A planned departure, not a failure: exit clean with no digest line —
    // the host test counts survivors by who reported.
    std::printf("evicted rank=%d reason=%s\n", launch_env.rank,
                result.error.c_str());
    return 0;
  }
  if (!result.ok) {
    std::fprintf(stderr, "ddp_worker: rank %d scenario failed: %s\n",
                 launch_env.rank, result.error.c_str());
    return 1;
  }
  std::printf("ok digest=%s world=%d generation=%llu recoveries=%d\n",
              result.digest.c_str(), result.final_world,
              static_cast<unsigned long long>(result.final_generation),
              result.recoveries);
  if (!args.digest_out.empty()) {
    const std::string path =
        args.digest_out + "." + std::to_string(launch_env.rank);
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "ddp_worker: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(out, "ok digest=%s world=%d generation=%llu recoveries=%d\n",
                 result.digest.c_str(), result.final_world,
                 static_cast<unsigned long long>(result.final_generation),
                 result.recoveries);
    std::fclose(out);
  }
  return 0;
}
