// Multi-device model support (paper §4.1 "Model Device Affinity" and §4.2
// "buckets are always created on the same device as the parameters"):
// parameters on different simulated devices never share a bucket, and the
// reducer allocates each bucket on its parameters' device.

#include <gtest/gtest.h>

#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "core/reducer.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

/// Hand-built parameter list spanning two simulated devices.
std::vector<Tensor> TwoDeviceParams() {
  std::vector<Tensor> params;
  for (int device = 0; device < 2; ++device) {
    for (int i = 0; i < 3; ++i) {
      Tensor p = Tensor::Full({16}, 1.0, DType::kFloat32, device);
      p.set_requires_grad(true);
      params.push_back(p);
    }
  }
  return params;
}

TEST(MultiDeviceTest, BucketsRespectDeviceAffinity) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    auto params = TwoDeviceParams();
    ReducerOptions options;
    options.bucket_cap_bytes = 1 << 20;  // everything would fit in one
    Reducer reducer(params, ctx.process_group, options);
    // The device boundary forces at least two buckets despite the cap.
    EXPECT_GE(reducer.num_buckets(), 2u);
    for (const auto& bucket : reducer.assignment().buckets) {
      const int device =
          params[bucket.front()].device_id();
      for (size_t idx : bucket) {
        EXPECT_EQ(params[idx].device_id(), device);
      }
    }
  });
}

TEST(MultiDeviceTest, ReductionStillCorrectAcrossDevices) {
  constexpr int kWorld = 2;
  std::vector<std::vector<float>> grads(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    auto params = TwoDeviceParams();
    Reducer reducer(params, ctx.process_group, ReducerOptions{});
    // Build a loss that touches all parameters.
    Tensor acc;
    for (Tensor& p : params) {
      Tensor term = ops::SumAll(ops::Scale(p, ctx.rank + 1.0));
      acc = acc.defined() ? ops::Add(acc, term) : term;
    }
    reducer.PrepareForBackward({acc}, true);
    autograd::Backward(acc);
    EXPECT_TRUE(reducer.backward_finalized());
    for (const Tensor& p : params) {
      grads[static_cast<size_t>(ctx.rank)].push_back(
          static_cast<float>(p.grad().FlatAt(0)));
    }
  });
  // Average of local scales (1, 2) = 1.5 for every parameter on each rank.
  for (int r = 0; r < kWorld; ++r) {
    for (float g : grads[static_cast<size_t>(r)]) {
      EXPECT_FLOAT_EQ(g, 1.5f);
    }
  }
}

TEST(MultiDeviceTest, BucketBuffersLiveOnParamDevice) {
  std::vector<ParamMeta> metas = {
      {100, 400, 0}, {100, 400, 0}, {100, 400, 1}};
  auto assignment = AssignBuckets(metas, 1 << 20);
  ASSERT_EQ(assignment.num_buckets(), 2u);
  // Launch order is reverse: bucket 0 = device-1 params, bucket 1 = dev 0.
  EXPECT_EQ(metas[assignment.buckets[0].front()].device_id, 1);
  EXPECT_EQ(metas[assignment.buckets[1].front()].device_id, 0);
}

}  // namespace
}  // namespace ddpkit::core
