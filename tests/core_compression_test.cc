#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/compression.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

std::vector<float> FlattenGrads(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      out.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }
  return out;
}

TEST(Fp16HookTest, GradientsCloseToUncompressed) {
  constexpr int kWorld = 2;
  std::vector<float> plain, compressed;
  auto run = [&](std::shared_ptr<CommHook> hook, std::vector<float>* out) {
    SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
      Rng rng(1);
      auto model =
          std::make_shared<nn::Mlp>(std::vector<int64_t>{8, 4}, &rng);
      DdpOptions options;
      options.comm_hook = hook;
      DistributedDataParallel ddp(model, ctx.process_group, options);
      Rng data_rng(10 + ctx.rank);
      Tensor x = Tensor::Randn({3, 8}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      if (ctx.rank == 0) *out = FlattenGrads(*model);
    });
  };
  run(nullptr, &plain);
  run(std::make_shared<Fp16CompressionHook>(), &compressed);
  ASSERT_EQ(plain.size(), compressed.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    // Half precision: ~1e-3 relative error.
    EXPECT_NEAR(compressed[i], plain[i],
                std::abs(plain[i]) * 2e-3 + 1e-4);
  }
}

TEST(Fp16HookTest, ExactForHalfRepresentableValues) {
  SimWorld::Run(4, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({16}, 1.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<Fp16CompressionHook>();
    Reducer reducer({p}, ctx.process_group, options);
    // Local gradient = 0.25 * (rank+1): exactly representable.
    Tensor x = Tensor::Full({16}, 0.25 * (ctx.rank + 1));
    Tensor loss = ops::SumAll(ops::Mul(p, x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    // Average = (0.25+0.5+0.75+1.0)/4 = 0.625.
    EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 0.625);
  });
}

TEST(OneBitHookTest, PreservesSignAndScaleOfUniformGradient) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({8}, 1.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    Reducer reducer({p}, ctx.process_group, options);
    // Local gradient constant 2.0: sign=+, scale=2 -> exact roundtrip.
    Tensor x = Tensor::Full({8}, 2.0);
    Tensor loss = ops::SumAll(ops::Mul(p, x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 2.0);  // avg of 2 and 2
  });
}

TEST(OneBitHookTest, ErrorFeedbackRecoversMeanOverIterations) {
  // With error feedback, the *running sum* of quantized gradients tracks
  // the running sum of true gradients (Seide et al. [34]).
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({2}, 0.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    Reducer reducer({p}, ctx.process_group, options);

    // True gradient alternates between (3, 1): quantized to +-scale each
    // step, but the accumulated error feeds back.
    double sum_q0 = 0.0, sum_q1 = 0.0;
    const int kIters = 50;
    for (int i = 0; i < kIters; ++i) {
      p.ZeroGrad();
      Tensor x = Tensor::FromVector({3.0f, 1.0f}, {2});
      Tensor loss = ops::SumAll(ops::Mul(p, x));
      reducer.PrepareForBackward({loss}, true);
      autograd::Backward(loss);
      sum_q0 += p.grad().FlatAt(0);
      sum_q1 += p.grad().FlatAt(1);
    }
    EXPECT_NEAR(sum_q0 / kIters, 3.0, 0.2);
    EXPECT_NEAR(sum_q1 / kIters, 1.0, 0.2);
  });
}

TEST(OneBitHookTest, TrainingStillConverges) {
  // End-to-end: 1-bit compression trains a small regression problem.
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 1}, &rng);
    DdpOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    DistributedDataParallel ddp(model, ctx.process_group, options);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.01});
    nn::MSELoss mse;
    Rng data_rng(100);  // same data both ranks (simplest convergence check)
    Tensor x = Tensor::Randn({16, 4}, &data_rng);
    Tensor w_star = Tensor::Randn({4, 1}, &data_rng);
    Tensor y = kernels::MatMul(x, w_star);

    double first_loss = 0.0, last_loss = 0.0;
    for (int step = 0; step < 200; ++step) {
      opt.ZeroGrad();
      Tensor loss = mse(ddp.Forward(x), y);
      if (step == 0) first_loss = loss.Item();
      last_loss = loss.Item();
      autograd::Backward(loss);
      opt.Step();
    }
    EXPECT_LT(last_loss, 0.5 * first_loss);
  });
}

TEST(CompressionTest, RatiosReported) {
  Fp16CompressionHook fp16;
  OneBitCompressionHook onebit;
  EXPECT_DOUBLE_EQ(fp16.compression_ratio(), 0.5);
  EXPECT_NEAR(onebit.compression_ratio(), 0.03125, 1e-9);
  EXPECT_EQ(fp16.name(), "fp16");
  EXPECT_EQ(onebit.name(), "onebit");
}

TEST(CompressionTest, HooksWorkWithManyBuckets) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(4);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{16, 16, 16, 4}, &rng);
    DdpOptions options;
    options.comm_hook = std::make_shared<Fp16CompressionHook>();
    options.bucket_cap_bytes = 256;  // many buckets
    DistributedDataParallel ddp(model, ctx.process_group, options);
    EXPECT_GT(ddp.reducer().num_buckets(), 3u);
    Tensor x = Tensor::Full({2, 16}, 0.5);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    EXPECT_TRUE(ddp.reducer().backward_finalized());
  });
}

}  // namespace
}  // namespace ddpkit::core
