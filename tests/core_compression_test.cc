#include <gtest/gtest.h>

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/fault_plan.h"
#include "comm/process_group_tcp.h"
#include "comm/sim_world.h"
#include "comm/store.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/compression.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"
#include "sim/virtual_clock.h"
#include "tensor/tensor_ops.h"
#include "tests/multiproc_scenario.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

std::vector<float> FlattenGrads(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      out.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }
  return out;
}

TEST(Fp16HookTest, GradientsCloseToUncompressed) {
  constexpr int kWorld = 2;
  std::vector<float> plain, compressed;
  auto run = [&](std::shared_ptr<CommHook> hook, std::vector<float>* out) {
    SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
      Rng rng(1);
      auto model =
          std::make_shared<nn::Mlp>(std::vector<int64_t>{8, 4}, &rng);
      DdpOptions options;
      options.comm_hook = hook;
      DistributedDataParallel ddp(model, ctx.process_group, options);
      Rng data_rng(10 + ctx.rank);
      Tensor x = Tensor::Randn({3, 8}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      if (ctx.rank == 0) *out = FlattenGrads(*model);
    });
  };
  run(nullptr, &plain);
  run(std::make_shared<Fp16CompressionHook>(), &compressed);
  ASSERT_EQ(plain.size(), compressed.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    // Half precision: ~1e-3 relative error.
    EXPECT_NEAR(compressed[i], plain[i],
                std::abs(plain[i]) * 2e-3 + 1e-4);
  }
}

TEST(Fp16HookTest, ExactForHalfRepresentableValues) {
  SimWorld::Run(4, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({16}, 1.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<Fp16CompressionHook>();
    Reducer reducer({p}, ctx.process_group, options);
    // Local gradient = 0.25 * (rank+1): exactly representable.
    Tensor x = Tensor::Full({16}, 0.25 * (ctx.rank + 1));
    Tensor loss = ops::SumAll(ops::Mul(p, x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    // Average = (0.25+0.5+0.75+1.0)/4 = 0.625.
    EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 0.625);
  });
}

TEST(OneBitHookTest, PreservesSignAndScaleOfUniformGradient) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({8}, 1.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    Reducer reducer({p}, ctx.process_group, options);
    // Local gradient constant 2.0: sign=+, scale=2 -> exact roundtrip.
    Tensor x = Tensor::Full({8}, 2.0);
    Tensor loss = ops::SumAll(ops::Mul(p, x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 2.0);  // avg of 2 and 2
  });
}

TEST(OneBitHookTest, ErrorFeedbackRecoversMeanOverIterations) {
  // With error feedback, the *running sum* of quantized gradients tracks
  // the running sum of true gradients (Seide et al. [34]).
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({2}, 0.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    Reducer reducer({p}, ctx.process_group, options);

    // True gradient alternates between (3, 1): quantized to +-scale each
    // step, but the accumulated error feeds back.
    double sum_q0 = 0.0, sum_q1 = 0.0;
    const int kIters = 50;
    for (int i = 0; i < kIters; ++i) {
      p.ZeroGrad();
      Tensor x = Tensor::FromVector({3.0f, 1.0f}, {2});
      Tensor loss = ops::SumAll(ops::Mul(p, x));
      reducer.PrepareForBackward({loss}, true);
      autograd::Backward(loss);
      sum_q0 += p.grad().FlatAt(0);
      sum_q1 += p.grad().FlatAt(1);
    }
    EXPECT_NEAR(sum_q0 / kIters, 3.0, 0.2);
    EXPECT_NEAR(sum_q1 / kIters, 1.0, 0.2);
  });
}

TEST(OneBitHookTest, TrainingStillConverges) {
  // End-to-end: 1-bit compression trains a small regression problem.
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 1}, &rng);
    DdpOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    DistributedDataParallel ddp(model, ctx.process_group, options);
    optim::Sgd opt(model->parameters(), optim::Sgd::Options{.lr = 0.01});
    nn::MSELoss mse;
    Rng data_rng(100);  // same data both ranks (simplest convergence check)
    Tensor x = Tensor::Randn({16, 4}, &data_rng);
    Tensor w_star = Tensor::Randn({4, 1}, &data_rng);
    Tensor y = kernels::MatMul(x, w_star);

    double first_loss = 0.0, last_loss = 0.0;
    for (int step = 0; step < 200; ++step) {
      opt.ZeroGrad();
      Tensor loss = mse(ddp.Forward(x), y);
      if (step == 0) first_loss = loss.Item();
      last_loss = loss.Item();
      autograd::Backward(loss);
      opt.Step();
    }
    EXPECT_LT(last_loss, 0.5 * first_loss);
  });
}

TEST(CompressionTest, RatiosReported) {
  Fp16CompressionHook fp16;
  OneBitCompressionHook onebit;
  EXPECT_DOUBLE_EQ(fp16.compression_ratio(), 0.5);
  EXPECT_NEAR(onebit.compression_ratio(), 0.03125, 1e-9);
  EXPECT_EQ(fp16.name(), "fp16");
  EXPECT_EQ(onebit.name(), "onebit");
}

TEST(CompressionTest, HooksWorkWithManyBuckets) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(4);
    auto model =
        std::make_shared<nn::Mlp>(std::vector<int64_t>{16, 16, 16, 4}, &rng);
    DdpOptions options;
    options.comm_hook = std::make_shared<Fp16CompressionHook>();
    options.bucket_cap_bytes = 256;  // many buckets
    DistributedDataParallel ddp(model, ctx.process_group, options);
    EXPECT_GT(ddp.reducer().num_buckets(), 3u);
    Tensor x = Tensor::Full({2, 16}, 0.5);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    EXPECT_TRUE(ddp.reducer().backward_finalized());
  });
}

// ---------------------------------------------------------------------------
// Backend parity: every hook must produce bit-identical gradients over
// ProcessGroupSim and ProcessGroupTcp, across odd world sizes and thread
// pool shapes. Hooks transport via AllGather and accumulate rank-by-rank in
// fp32, so float equality here is exact, not approximate.
// ---------------------------------------------------------------------------

class Latch {
 public:
  explicit Latch(int count) : count_(count) {}
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// Three DDP steps of an Mlp{6,8,4} with per-(step, rank) data; returns the
/// final step's flattened gradients. Error feedback and PowerSGD warm-start
/// evolve across the steps, so the result exercises persistent hook state.
std::vector<float> TrainThreeStepsCollectGrads(
    const std::string& hook_name,
    const std::shared_ptr<comm::ProcessGroup>& pg, int rank) {
  Rng rng(21);
  auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{6, 8, 4}, &rng);
  DdpOptions options;
  options.comm_hook = MakeCommHookByName(hook_name);
  DistributedDataParallel ddp(model, pg, options);
  for (int step = 0; step < 3; ++step) {
    model->ZeroGrad();
    Rng data_rng(static_cast<uint64_t>(1000 * step + rank));
    Tensor x = Tensor::Randn({2, 6}, &data_rng);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    EXPECT_TRUE(ddp.sync_status().ok()) << ddp.sync_status().ToString();
  }
  return FlattenGrads(*model);
}

std::vector<std::vector<float>> RunHookGradsSim(const std::string& hook,
                                                int world) {
  std::vector<std::vector<float>> grads(static_cast<size_t>(world));
  SimWorld::Run(world, [&](SimWorld::RankContext& ctx) {
    grads[static_cast<size_t>(ctx.rank)] =
        TrainThreeStepsCollectGrads(hook, ctx.process_group, ctx.rank);
  });
  return grads;
}

std::vector<std::vector<float>> RunHookGradsTcp(const std::string& hook,
                                                int world) {
  comm::Store store;
  Latch done(world);
  std::vector<std::vector<float>> grads(static_cast<size_t>(world));
  std::vector<std::thread> threads;
  for (int rank = 0; rank < world; ++rank) {
    threads.emplace_back([&, rank] {
      sim::VirtualClock clock;
      comm::ProcessGroupTcp::Options options;
      auto group = comm::ProcessGroupTcp::Create(&store, "hooks", rank, world,
                                                 options, &clock);
      if (!group.ok()) {
        ADD_FAILURE() << "rank " << rank
                      << " bootstrap: " << group.status().ToString();
        done.CountDown();
        return;
      }
      grads[static_cast<size_t>(rank)] =
          TrainThreeStepsCollectGrads(hook, group.value(), rank);
      done.CountDown();
      done.Wait();  // keep the mesh alive until every rank is through
    });
  }
  for (auto& t : threads) t.join();
  return grads;
}

TEST(HookBackendParityTest, AllHooksBitIdenticalAcrossBackendsAndOddWorlds) {
  for (const std::string& hook : CommHookNames()) {
    for (int world : {3, 5}) {
      SCOPED_TRACE(hook + " world " + std::to_string(world));
      const auto sim = RunHookGradsSim(hook, world);
      const auto tcp = RunHookGradsTcp(hook, world);
      ASSERT_FALSE(sim[0].empty());
      for (int r = 0; r < world; ++r) {
        // Ranks agree among themselves (the hook's local fp32 accumulation
        // is rank-order deterministic) and the wire matches the sim exactly.
        EXPECT_EQ(sim[0], sim[static_cast<size_t>(r)]) << "sim rank " << r;
        EXPECT_EQ(sim[0], tcp[static_cast<size_t>(r)]) << "tcp rank " << r;
      }
    }
  }
}

TEST(HookBackendParityTest, GradientsBitExactAcrossPoolSizes) {
  struct PoolSizeGuard {
    int previous = ThreadPool::Global().num_threads();
    ~PoolSizeGuard() { ThreadPool::SetNumThreads(previous); }
  } guard;
  constexpr int kWorld = 3;
  for (const std::string& hook : CommHookNames()) {
    SCOPED_TRACE(hook);
    std::vector<std::vector<std::vector<float>>> per_pool;
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetNumThreads(threads);
      per_pool.push_back(RunHookGradsSim(hook, kWorld));
    }
    EXPECT_EQ(per_pool[0], per_pool[1]) << "1 vs 2 pool threads";
    EXPECT_EQ(per_pool[0], per_pool[2]) << "1 vs 8 pool threads";
  }
}

// ---------------------------------------------------------------------------
// Error feedback: like the 1-bit hook, PowerSGD and top-k re-inject their
// compression error, so the running mean of compressed gradients tracks the
// true gradient even though any single step is heavily lossy.
// ---------------------------------------------------------------------------

TEST(PowerSgdHookTest, ErrorFeedbackRecoversMeanOverIterations) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    constexpr int64_t kN = 16;  // reshaped to a 4x4 matrix
    Tensor p = Tensor::Full({kN}, 0.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    // Rank 1 of a generic 4x4 gradient: lossy every step, so only the
    // feedback loop can keep the running mean honest.
    options.comm_hook = std::make_shared<PowerSGDCompressionHook>(
        PowerSGDCompressionHook::Options{.rank = 1});
    Reducer reducer({p}, ctx.process_group, options);

    std::vector<float> truth(kN);
    for (int64_t i = 0; i < kN; ++i) {
      truth[static_cast<size_t>(i)] = 0.25f * static_cast<float>(i - 8);
    }
    std::vector<double> sums(kN, 0.0);
    const int kIters = 80;
    for (int it = 0; it < kIters; ++it) {
      p.ZeroGrad();
      Tensor x = Tensor::FromVector(truth, {kN});
      Tensor loss = ops::SumAll(ops::Mul(p, x));
      reducer.PrepareForBackward({loss}, true);
      autograd::Backward(loss);
      for (int64_t i = 0; i < kN; ++i) {
        sums[static_cast<size_t>(i)] += p.grad().FlatAt(i);
      }
    }
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_NEAR(sums[static_cast<size_t>(i)] / kIters,
                  truth[static_cast<size_t>(i)], 0.25)
          << "element " << i;
    }
  });
}

TEST(TopKHookTest, ErrorFeedbackRecoversMeanOverIterations) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    constexpr int64_t kN = 8;  // k = ceil(8/16) = 1: one entry per step
    Tensor p = Tensor::Full({kN}, 0.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<TopKCompressionHook>();
    Reducer reducer({p}, ctx.process_group, options);

    std::vector<float> truth = {2.0f, -1.5f, 1.0f, -0.75f,
                                0.5f, 0.25f, -0.125f, 1.25f};
    std::vector<double> sums(kN, 0.0);
    const int kIters = 100;
    for (int it = 0; it < kIters; ++it) {
      p.ZeroGrad();
      Tensor x = Tensor::FromVector(truth, {kN});
      Tensor loss = ops::SumAll(ops::Mul(p, x));
      reducer.PrepareForBackward({loss}, true);
      autograd::Backward(loss);
      for (int64_t i = 0; i < kN; ++i) {
        sums[static_cast<size_t>(i)] += p.grad().FlatAt(i);
      }
    }
    // Residuals cycle with magnitude <= ~kN * |g_i|, so the running-mean
    // error shrinks like kN * |g_i| / kIters.
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_NEAR(sums[static_cast<size_t>(i)] / kIters,
                  truth[static_cast<size_t>(i)], 0.3)
          << "element " << i;
    }
  });
}

TEST(CompressionTest, ResetStateMakesStatefulHooksMatchFreshRun) {
  for (const char* name : {"onebit", "powersgd", "topk"}) {
    SCOPED_TRACE(name);
    SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
      // Non-uniform gradient: lossy for every stateful hook, so the
      // residual after one step is nonzero.
      auto run_once = [&](const std::shared_ptr<CommHook>& hook) {
        Tensor p = Tensor::Full({12}, 1.0);
        p.set_requires_grad(true);
        ReducerOptions options;
        options.comm_hook = hook;
        Reducer reducer({p}, ctx.process_group, options);
        std::vector<float> values(12);
        for (int i = 0; i < 12; ++i) {
          values[static_cast<size_t>(i)] =
              (0.3f + 0.7f * static_cast<float>(i)) *
              static_cast<float>(ctx.rank + 1) * (i % 2 == 0 ? 1.0f : -1.0f);
        }
        Tensor x = Tensor::FromVector(values, {12});
        Tensor loss = ops::SumAll(ops::Mul(p, x));
        reducer.PrepareForBackward({loss}, true);
        autograd::Backward(loss);
        std::vector<float> grads;
        for (int64_t i = 0; i < 12; ++i) {
          grads.push_back(static_cast<float>(p.grad().FlatAt(i)));
        }
        return grads;
      };
      const auto fresh = run_once(MakeCommHookByName(name));
      auto hook = MakeCommHookByName(name);
      const auto first = run_once(hook);   // seeds residual / warm-start
      const auto dirty = run_once(hook);   // second step uses that state
      EXPECT_EQ(fresh, first);
      EXPECT_NE(fresh, dirty) << "hook state had no effect; test is vacuous";
      hook->ResetState();
      const auto reset = run_once(hook);
      EXPECT_EQ(fresh, reset);
    });
  }
}

// ---------------------------------------------------------------------------
// Fault injection inside hook collectives. A raw Reducer issues no
// construction broadcasts, so the 1-bit hook's scales all-gather is
// sequence 0 and its signs all-gather is sequence 1.
// ---------------------------------------------------------------------------

TEST(HookFaultTest, CrashInFirstHookCollectiveSurfacesTypedErrorNamingHook) {
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->CrashRank(1, 0);  // dies inside the scales all-gather
  comm::SimWorldOptions world_options;
  world_options.fault_plan = plan;
  world_options.collective_timeout_seconds = 1.0;
  SimWorld::Run(2, world_options, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({8}, 1.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    options.collective_timeout_seconds = 1.0;
    Reducer reducer({p}, ctx.process_group, options);
    Tensor x = Tensor::Full({8}, 2.0);
    Tensor loss = ops::SumAll(ops::Mul(p, x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    const Status status = reducer.sync_status();
    EXPECT_FALSE(status.ok()) << "rank " << ctx.rank;
    EXPECT_NE(status.ToString().find("comm hook onebit"), std::string::npos)
        << "rank " << ctx.rank << ": " << status.ToString();
  });
}

TEST(HookFaultTest, DropBetweenHookCollectivesSurfacesTypedError) {
  auto plan = std::make_shared<comm::FaultPlan>();
  // Rank 1 joins the scales all-gather (seq 0) but vanishes before the
  // signs all-gather (seq 1): a mid-hook desync.
  plan->DropRank(1, 1);
  comm::SimWorldOptions world_options;
  world_options.fault_plan = plan;
  world_options.collective_timeout_seconds = 1.0;
  SimWorld::Run(2, world_options, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({8}, 1.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    options.collective_timeout_seconds = 1.0;
    Reducer reducer({p}, ctx.process_group, options);
    Tensor x = Tensor::Full({8}, 2.0);
    Tensor loss = ops::SumAll(ops::Mul(p, x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    if (ctx.rank == 0) {
      const Status status = reducer.sync_status();
      EXPECT_FALSE(status.ok());
      EXPECT_NE(status.ToString().find("comm hook onebit"), std::string::npos)
          << status.ToString();
    }
  });
}

TEST(HookFaultTest, StallBeyondTimeoutSurfacesTypedError) {
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->StallRank(1, 0, 30.0);  // far past the 1s watchdog
  comm::SimWorldOptions world_options;
  world_options.fault_plan = plan;
  world_options.collective_timeout_seconds = 1.0;
  SimWorld::Run(2, world_options, [&](SimWorld::RankContext& ctx) {
    Tensor p = Tensor::Full({8}, 1.0);
    p.set_requires_grad(true);
    ReducerOptions options;
    options.comm_hook = std::make_shared<OneBitCompressionHook>();
    options.collective_timeout_seconds = 1.0;
    Reducer reducer({p}, ctx.process_group, options);
    Tensor x = Tensor::Full({8}, 2.0);
    Tensor loss = ops::SumAll(ops::Mul(p, x));
    reducer.PrepareForBackward({loss}, true);
    autograd::Backward(loss);
    if (ctx.rank == 0) {
      const Status status = reducer.sync_status();
      EXPECT_FALSE(status.ok());
      EXPECT_NE(status.ToString().find("comm hook onebit"), std::string::npos)
          << status.ToString();
    }
  });
}

TEST(HookFaultTest, GenerationAbortDuringHookCollectiveRecovers) {
  auto plan = std::make_shared<comm::FaultPlan>();
  // DDP construction broadcasts the Mlp{4,6,2}'s 4 parameters (seqs 0-3);
  // each 1-bit step issues two all-gathers, so step 1's signs all-gather is
  // sequence 7. Rank 2 dies there — mid-hook, after step 1's scales moved.
  plan->CrashRank(2, 7);
  comm::SimWorldOptions world_options;
  world_options.fault_plan = plan;
  world_options.collective_timeout_seconds = 2.0;
  ddpkit::testing::ScenarioOptions scenario;
  scenario.comm_hook = "onebit";
  scenario.total_steps = 4;
  scenario.kill_rank = 2;
  scenario.kill_step = 1;
  scenario.crash_before_sync = false;
  scenario.collective_timeout_seconds = 2.0;
  scenario.rendezvous_timeout_seconds = 3.0;
  std::vector<ddpkit::testing::ScenarioResult> results(3);
  SimWorld::Run(3, world_options, [&](SimWorld::RankContext& ctx) {
    results[static_cast<size_t>(ctx.rank)] =
        ddpkit::testing::RunScenario(ctx, scenario, [] {});
  });
  EXPECT_FALSE(results[2].ok);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  ASSERT_TRUE(results[1].ok) << results[1].error;
  // Survivors re-formed at generation 1 with fresh hook state and finished
  // in lockstep.
  EXPECT_EQ(results[0].digest, results[1].digest);
  EXPECT_EQ(results[0].final_world, 2);
  EXPECT_EQ(results[0].recoveries, 1);
  EXPECT_GT(results[0].final_generation, 0u);
}

// ---------------------------------------------------------------------------
// Wire-byte accounting: the reducer's ddp.comm.bytes_{raw,compressed}
// counters must agree with the hook's own measured compression_ratio().
// ---------------------------------------------------------------------------

TEST(CompressionTest, WireByteMetricsMatchCompressionRatio) {
  for (const std::string& name : CommHookNames()) {
    SCOPED_TRACE(name);
    auto metrics = std::make_shared<MetricsRegistry>();
    std::shared_ptr<CommHook> rank0_hook;
    SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
      Rng rng(5);
      // One ~4k-element bucket: big enough that per-launch fixed overheads
      // (scales, factor matrices) sit inside the 5% band.
      auto model =
          std::make_shared<nn::Mlp>(std::vector<int64_t>{64, 64}, &rng);
      DdpOptions options;
      options.comm_hook = MakeCommHookByName(name);
      if (ctx.rank == 0) {
        options.metrics = metrics;
        rank0_hook = options.comm_hook;
      }
      DistributedDataParallel ddp(model, ctx.process_group, options);
      Tensor x = Tensor::Full({2, 64}, 0.5);
      for (int it = 0; it < 2; ++it) {
        model->ZeroGrad();
        autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      }
    });
    const auto raw = metrics->counter("ddp.comm.bytes_raw").value();
    const auto compressed = metrics->counter("ddp.comm.bytes_compressed").value();
    ASSERT_GT(raw, 0u);
    ASSERT_GT(compressed, 0u);
    const double measured =
        static_cast<double>(compressed) / static_cast<double>(raw);
    ASSERT_NE(rank0_hook, nullptr);
    const double declared = rank0_hook->compression_ratio();
    EXPECT_NEAR(measured, declared, 0.05 * declared)
        << "measured " << measured << " declared " << declared;
  }
}

}  // namespace
}  // namespace ddpkit::core
