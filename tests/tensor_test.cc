#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace ddpkit {
namespace {

TEST(TensorTest, UndefinedByDefault) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ZerosShapeAndContents) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_TRUE(t.is_contiguous());
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.FlatAt(i), 0.0);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full({4}, 2.5);
  for (int64_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t.FlatAt(i), 2.5);
  Tensor ones = Tensor::Ones({3});
  for (int64_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ones.FlatAt(i), 1.0);
}

TEST(TensorTest, FromVectorRoundTrip) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_DOUBLE_EQ(t.At({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(t.At({0, 2}), 3.0);
  EXPECT_DOUBLE_EQ(t.At({1, 0}), 4.0);
  EXPECT_DOUBLE_EQ(t.At({1, 2}), 6.0);
}

TEST(TensorTest, SetAndAt) {
  Tensor t = Tensor::Zeros({2, 2});
  t.Set({1, 0}, 7.0);
  EXPECT_DOUBLE_EQ(t.At({1, 0}), 7.0);
  EXPECT_DOUBLE_EQ(t.FlatAt(2), 7.0);
}

TEST(TensorTest, CopySemanticsAreAliasing) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;  // aliasing handle
  b.Set({0}, 9.0);
  EXPECT_DOUBLE_EQ(a.At({0}), 9.0);
  EXPECT_TRUE(a.is_same(b));
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Full({3}, 1.0);
  Tensor b = a.Clone();
  b.Set({0}, 5.0);
  EXPECT_DOUBLE_EQ(a.At({0}), 1.0);
  EXPECT_FALSE(a.is_same(b));
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor b = a.Reshape({4});
  b.Set({3}, 10.0);
  EXPECT_DOUBLE_EQ(a.At({1, 1}), 10.0);
}

TEST(TensorTest, NarrowViewsWriteThrough) {
  Tensor a = Tensor::Zeros({10});
  Tensor view = a.Narrow(0, 3, 4);
  EXPECT_EQ(view.numel(), 4);
  view.Fill(2.0);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.FlatAt(i), (i >= 3 && i < 7) ? 2.0 : 0.0);
  }
}

TEST(TensorTest, NarrowInnerDimIsNonContiguous) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor col = a.Narrow(1, 1, 2);  // rows x cols[1..2]
  EXPECT_EQ(col.numel(), 4);
  EXPECT_FALSE(col.is_contiguous());
  EXPECT_DOUBLE_EQ(col.FlatAt(0), 2.0);
  EXPECT_DOUBLE_EQ(col.FlatAt(1), 3.0);
  EXPECT_DOUBLE_EQ(col.FlatAt(2), 5.0);
  EXPECT_DOUBLE_EQ(col.FlatAt(3), 6.0);
  Tensor packed = col.Contiguous();
  EXPECT_TRUE(packed.is_contiguous());
  EXPECT_DOUBLE_EQ(packed.FlatAt(3), 6.0);
}

TEST(TensorTest, SelectRemovesLeadingDim) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {3, 2});
  Tensor row = a.Select(1);
  EXPECT_EQ(row.dim(), 1);
  EXPECT_EQ(row.numel(), 2);
  EXPECT_DOUBLE_EQ(row.FlatAt(0), 3.0);
  EXPECT_DOUBLE_EQ(row.FlatAt(1), 4.0);
}

TEST(TensorTest, CopyFromMatchesValues) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {3});
  Tensor b = Tensor::Zeros({3});
  b.CopyFrom(a);
  for (int64_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(b.FlatAt(i), a.FlatAt(i));
}

TEST(TensorTest, CastToFloat64AndBack) {
  Tensor a = Tensor::FromVector({1.5, -2.25}, {2});
  Tensor d = a.Cast(DType::kFloat64);
  EXPECT_EQ(d.dtype(), DType::kFloat64);
  EXPECT_DOUBLE_EQ(d.FlatAt(1), -2.25);
  Tensor f = d.Cast(DType::kFloat32);
  EXPECT_DOUBLE_EQ(f.FlatAt(0), 1.5);
}

TEST(TensorTest, Int64Tensor) {
  Tensor t = Tensor::FromVectorInt64({5, -7, 11}, {3});
  EXPECT_EQ(t.dtype(), DType::kInt64);
  EXPECT_DOUBLE_EQ(t.FlatAt(1), -7.0);
  EXPECT_EQ(t.data<int64_t>()[2], 11);
}

TEST(TensorTest, RandnDeterministicGivenSeed) {
  Rng rng1(5), rng2(5);
  Tensor a = Tensor::Randn({16}, &rng1);
  Tensor b = Tensor::Randn({16}, &rng2);
  for (int64_t i = 0; i < 16; ++i) EXPECT_EQ(a.FlatAt(i), b.FlatAt(i));
}

TEST(TensorTest, GradLifecycle) {
  Tensor p = Tensor::Zeros({4});
  EXPECT_FALSE(p.grad().defined());
  p.AccumulateGrad(Tensor::Full({4}, 2.0));
  ASSERT_TRUE(p.grad().defined());
  EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 2.0);
  p.AccumulateGrad(Tensor::Full({4}, 3.0));
  EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 5.0);
  p.ZeroGrad();
  EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 0.0);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor::Zeros({2, 3, 4}).ShapeString(), "[2, 3, 4]");
}

TEST(TensorTest, ZeroSizedTensor) {
  Tensor t = Tensor::Zeros({0, 4});
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.is_contiguous());
}

// ---- Half-float conversions -------------------------------------------------

TEST(HalfFloatTest, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 1024.0f}) {
    EXPECT_EQ(HalfBitsToFloat32(Float32ToHalfBits(v)), v) << v;
  }
}

TEST(HalfFloatTest, RoundingErrorBounded) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.Uniform(-8.0, 8.0));
    const float r = HalfBitsToFloat32(Float32ToHalfBits(v));
    // Half has ~3 decimal digits: relative error < 2^-10.
    EXPECT_NEAR(r, v, std::abs(v) * 1.0 / 1024.0 + 1e-7);
  }
}

TEST(HalfFloatTest, OverflowToInf) {
  const float big = 1e6f;
  const float r = HalfBitsToFloat32(Float32ToHalfBits(big));
  EXPECT_TRUE(std::isinf(r));
  EXPECT_GT(r, 0.0f);
}

TEST(HalfFloatTest, SubnormalsPreserveSign) {
  const float tiny = 1e-6f;
  const float r = HalfBitsToFloat32(Float32ToHalfBits(-tiny));
  EXPECT_LE(r, 0.0f);
}

}  // namespace
}  // namespace ddpkit
