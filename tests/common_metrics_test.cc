#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace ddpkit {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  std::string out;
  AppendJsonEscaped(&out, "a\"b\\c\nd\te\rf");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\rf");

  out.clear();
  AppendJsonEscaped(&out, std::string("x\x01y\x1fz", 5));
  EXPECT_EQ(out, "x\\u0001y\\u001fz");
}

TEST(JsonNumberTest, NonFiniteValuesFoldToZero) {
  EXPECT_EQ(JsonNumber(std::nan("")), "0");
  EXPECT_EQ(JsonNumber(INFINITY), "0");
  EXPECT_EQ(JsonNumber(-INFINITY), "0");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
}

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("reducer.test_events");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same metric.
  EXPECT_EQ(registry.counter("reducer.test_events").value(), 42u);
  EXPECT_EQ(registry.NumMetrics(), 1u);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("pg.queue_depth");
  g.Set(3.0);
  g.Set(-1.5);
  EXPECT_DOUBLE_EQ(registry.gauge("pg.queue_depth").value(), -1.5);
}

TEST(MetricsTest, HistogramQuantilesAreExact) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("ddp.latency");
  // 1..100 in scrambled order: quantiles must not depend on insert order.
  for (int i = 0; i < 100; ++i) h.Record(((i * 37) % 100) + 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_NEAR(h.p50(), 50.5, 1.0);
  EXPECT_NEAR(h.p95(), 95.0, 1.5);
  EXPECT_NEAR(h.p99(), 99.0, 1.5);
  // Recording after a quantile query re-sorts correctly.
  h.Record(1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(MetricsTest, EmptyHistogramIsZeroNotNan) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(MetricsTest, ToJsonRendersAllSectionsSorted) {
  MetricsRegistry registry;
  registry.counter("b.count").Increment(2);
  registry.counter("a.count").Increment(1);
  registry.gauge("z.gauge").Set(0.5);
  registry.histogram("h.samples").Record(1.0);
  registry.histogram("h.samples").Record(3.0);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos) << json;
  // std::map ordering: a.count precedes b.count.
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
}

TEST(MetricsTest, HostileMetricNamesAreEscapedInJson) {
  MetricsRegistry registry;
  registry.counter("weird\"name\nwith\tcontrols").Increment();
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("weird\\\"name\\nwith\\tcontrols"), std::string::npos)
      << json;
  // The raw control characters must not appear.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(MetricsTest, ConcurrentUpdatesFromRankThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("shared.count").Increment();
        registry.histogram("shared.hist").Record(t);
        registry.gauge("rank" + std::to_string(t)).Set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.counter("shared.count").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.histogram("shared.hist").count(),
            static_cast<size_t>(kThreads) * kPerThread);
}

// Regression: rendering a histogram via seven individually-locked accessors
// could interleave with a concurrent Record, producing a summary whose
// fields belong to different instants (count from before the record, sum
// from after). Snapshot() takes the lock once, so count/sum/min/max/
// quantiles are always mutually consistent: recording only 1.0s, a
// snapshot with sum != count would be torn.
TEST(MetricsTest, SnapshotIsNeverTorn) {
  // Both sides are bounded: a snapshot sorts the samples it copies, so an
  // unbounded writer would make the reader loop quadratic (and blow the
  // per-test timeout under TSan's slowdown). The reader stops once the
  // writer is done — every snapshot it takes races a live Record.
  constexpr int kRecords = 5'000;
  constexpr int kMaxSnapshots = 20'000;
  Histogram h;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kRecords; ++i) h.Record(1.0);
    done.store(true);
  });
  for (int i = 0; i < kMaxSnapshots && !done.load(); ++i) {
    const Histogram::Summary s = h.Snapshot();
    ASSERT_DOUBLE_EQ(s.sum, static_cast<double>(s.count));
    if (s.count > 0) {
      ASSERT_DOUBLE_EQ(s.min, 1.0);
      ASSERT_DOUBLE_EQ(s.max, 1.0);
      ASSERT_DOUBLE_EQ(s.p50, 1.0);
    }
  }
  writer.join();
  const Histogram::Summary s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<size_t>(kRecords));
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(kRecords));
}

}  // namespace
}  // namespace ddpkit
