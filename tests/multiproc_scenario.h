// Deterministic training scenario shared by the multi-process wire tests:
// the same code runs (a) inside SimWorld rank threads to produce the
// reference digest and (b) inside real ddp_worker processes over
// ProcessGroupTcp. Bit-identical digests across the two harnesses are the
// PR's cross-check gate — the wire schedules must reproduce the simulated
// zoo's combine orders exactly.
//
// The scenario is core_recovery_test's shrink-and-resync workload: an
// Mlp{4,6,2} under DDP + momentum SGD, a data stream keyed by (step,
// data_rank), and an optional planned crash; survivors Recover() to the
// shrunken world and finish. The digest is an FNV-1a hash over every
// parameter's exact float bits, so one flipped mantissa bit anywhere fails
// the gate.

#ifndef DDPKIT_TESTS_MULTIPROC_SCENARIO_H_
#define DDPKIT_TESTS_MULTIPROC_SCENARIO_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/compression.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

namespace ddpkit::testing {

struct ScenarioOptions {
  int total_steps = 4;
  /// Rank that dies (by whatever means `on_crash` chooses), -1 = none.
  int kill_rank = -1;
  /// Training step at which `kill_rank` dies.
  int kill_step = -1;
  /// true: the kill rank crashes at the TOP of `kill_step`, before issuing
  /// that step's collective (the wire worker's SIGKILL — peers find out
  /// through the wire). false: the kill rank runs the step and leaves when
  /// its sync fails (the sim harness, where a FaultPlan fails the
  /// collective for everyone). Survivor trajectories are identical either
  /// way: the crashed rank contributes nothing to `kill_step`.
  bool crash_before_sync = true;
  /// Survivors below this count give up instead of re-forming.
  int min_world = 2;
  double collective_timeout_seconds = 10.0;
  double rendezvous_timeout_seconds = 10.0;
  /// Gradient-compression comm hook installed on every rank ("" / "none"
  /// = stock all-reduce). Hooks transport via AllGather and accumulate in
  /// fp32 locally, so the digest gate applies to them unchanged: sim and
  /// wire runs must agree bit for bit per hook.
  std::string comm_hook;
  /// Consulted when a step's sync fails, before attempting recovery. True
  /// = this rank leaves the run instead of rejoining the rendezvous — the
  /// wire-chaos eviction policy: the higher rank of a persistently
  /// partitioned pair must step aside, or every regroup re-forms the same
  /// broken mesh and the run never converges. Null = never evict.
  std::function<bool()> should_self_evict;
};

struct ScenarioResult {
  bool ok = false;
  std::string error;
  /// FNV-1a over all parameter bytes after the final step.
  std::string digest;
  /// World size the run finished at (shrinks after a recovery).
  int final_world = 0;
  /// Process-group generation the run finished at.
  uint64_t final_generation = 0;
  int recoveries = 0;
  /// True when this rank left via should_self_evict (ok stays false, but
  /// the departure is planned — the worker exits cleanly without a digest).
  bool evicted = false;
};

inline Tensor ScenarioInput(int step, int data_rank) {
  Rng rng(static_cast<uint64_t>(step * 100 + data_rank));
  return Tensor::Randn({2, 4}, &rng);
}

inline Tensor ScenarioTarget(int step, int data_rank) {
  Rng rng(static_cast<uint64_t>(step * 100 + data_rank + 50));
  return Tensor::Randn({2, 2}, &rng);
}

/// FNV-1a64 over each parameter's raw storage bytes, in parameter order.
inline std::string DigestParams(const nn::Module& model) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](const uint8_t* bytes, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  for (const Tensor& p : model.parameters()) {
    const Tensor contiguous = p.is_contiguous() ? p : p.Contiguous();
    mix(contiguous.data<uint8_t>(), contiguous.nbytes());
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

/// Runs the scenario on one rank. `on_crash` fires on `kill_rank` at
/// `kill_step` (timing per `crash_before_sync`): the wire worker raises
/// SIGKILL there (a real unclean death), the in-process harness makes it a
/// no-op and the thread "process" dies by leaving the rank body.
template <typename CrashFn>
ScenarioResult RunScenario(comm::SimWorld::RankContext& ctx,
                           const ScenarioOptions& options, CrashFn on_crash) {
  ScenarioResult result;
  Rng rng(7);
  auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 6, 2}, &rng);
  auto opt = std::make_unique<optim::Sgd>(
      model->parameters(), optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});

  core::DdpOptions ddp_options;
  ddp_options.collective_timeout_seconds = options.collective_timeout_seconds;
  ddp_options.comm_hook = core::MakeCommHookByName(options.comm_hook);
  core::DistributedDataParallel ddp(model, ctx.process_group, ddp_options);
  nn::MSELoss mse;

  int data_rank = ctx.rank;
  int world = ctx.world;
  int step = 0;
  while (step < options.total_steps) {
    const bool is_kill_point =
        ctx.rank == options.kill_rank && step == options.kill_step;
    if (is_kill_point && options.crash_before_sync) {
      on_crash();
      result.error = "crashed before step " + std::to_string(step);
      return result;
    }
    opt->ZeroGrad();
    autograd::Backward(mse(ddp.Forward(ScenarioInput(step, data_rank)),
                           ScenarioTarget(step, data_rank)));
    if (!ddp.sync_status().ok()) {
      if (is_kill_point) {
        // The sim-harness death: the fault plan failed this collective for
        // everyone; the doomed rank leaves instead of recovering.
        on_crash();
        result.error = "crashed at step " + std::to_string(step) + " sync";
        return result;
      }
      if (options.should_self_evict && options.should_self_evict()) {
        result.evicted = true;
        result.error = "self-evicted at step " + std::to_string(step) +
                       ": persistently partitioned from a lower rank";
        return result;
      }
      // Incomplete gradients: drop them, re-form over the survivors, retry
      // the same step under the new membership.
      core::RecoveryOptions recovery;
      recovery.rendezvous_namespace = ctx.group_name;
      recovery.rendezvous_timeout_seconds = options.rendezvous_timeout_seconds;
      recovery.min_world = options.min_world;
      recovery.group_factory = ctx.make_group;
      recovery.extra_state = opt->named_state();
      core::RecoveryReport report;
      const Status status = ddp.Recover(recovery, &report);
      if (!status.ok()) {
        result.error = "recover failed: " + status.ToString();
        return result;
      }
      data_rank = report.new_rank;
      world = report.new_world;
      result.final_generation = report.generation;
      ++result.recoveries;
      continue;
    }
    opt->Step();
    ++step;
  }
  result.ok = true;
  result.digest = DigestParams(*model);
  result.final_world = world;
  return result;
}

}  // namespace ddpkit::testing

#endif  // DDPKIT_TESTS_MULTIPROC_SCENARIO_H_
