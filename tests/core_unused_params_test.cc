#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

DdpOptions FindUnusedOptions() {
  DdpOptions options;
  options.find_unused_parameters = true;
  return options;
}

TEST(UnusedParamsTest, BackwardCompletesWhenBranchSkipped) {
  // The Fig 3(b) hang hazard: without proactive marking, buckets holding
  // the skipped branch would wait forever. With find_unused_parameters the
  // backward must finalize.
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(1);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    model->set_use_branch_a(true);  // same branch on all ranks
    DistributedDataParallel ddp(model, ctx.process_group,
                                FindUnusedOptions());
    Tensor x = Tensor::Full({2, 4}, 1.0);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    EXPECT_TRUE(ddp.reducer().backward_finalized());
  });
}

TEST(UnusedParamsTest, GloballyUnusedGradientsStayIntact) {
  // Paper §3.2.3: "DDP should only touch gradients that are indeed involved
  // in the backward pass."
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(2);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    model->set_use_branch_a(true);
    DistributedDataParallel ddp(model, ctx.process_group,
                                FindUnusedOptions());
    // Pre-seed branch B gradients with a sentinel value.
    for (Tensor& p : model->branch_b_parameters()) {
      p.set_grad(Tensor::Full(p.shape(), 42.0));
    }
    Tensor x = Tensor::Full({2, 4}, 1.0);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    for (const Tensor& p : model->branch_b_parameters()) {
      EXPECT_DOUBLE_EQ(p.grad().FlatAt(0), 42.0);  // untouched
    }
    for (const Tensor& p : model->branch_a_parameters()) {
      EXPECT_NE(p.grad().FlatAt(0), 42.0);  // reduced normally
    }
  });
}

TEST(UnusedParamsTest, GloballyUsedMaskMatchesBranch) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    model->set_use_branch_a(false);
    DistributedDataParallel ddp(model, ctx.process_group,
                                FindUnusedOptions());
    Tensor x = Tensor::Full({2, 4}, 1.0);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));

    const auto& mask = ddp.globally_used_mask();
    const auto named = model->named_parameters();
    ASSERT_EQ(mask.size(), named.size());
    for (size_t i = 0; i < named.size(); ++i) {
      const bool is_branch_a =
          named[i].first.find("branch_a") != std::string::npos;
      EXPECT_EQ(mask[i], is_branch_a ? 0 : 1) << named[i].first;
    }
  });
}

TEST(UnusedParamsTest, LocallyUnusedButGloballyUsedGetsAveragedGrad) {
  // Rank 0 uses branch A, rank 1 uses branch B: BOTH branches are globally
  // used, so every parameter must receive the cross-rank average (peers
  // contribute zeros for locally-skipped parameters).
  constexpr int kWorld = 2;
  std::vector<double> branch_a_grad(kWorld), branch_b_grad(kWorld);
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(4);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    model->set_use_branch_a(ctx.rank == 0);
    DistributedDataParallel ddp(model, ctx.process_group,
                                FindUnusedOptions());
    model->ZeroGrad();
    Tensor x = Tensor::Full({2, 4}, 1.0);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));

    const auto& mask = ddp.globally_used_mask();
    for (uint8_t used : mask) EXPECT_EQ(used, 1);  // all globally used

    branch_a_grad[static_cast<size_t>(ctx.rank)] =
        model->branch_a_parameters()[0].grad().FlatAt(0);
    branch_b_grad[static_cast<size_t>(ctx.rank)] =
        model->branch_b_parameters()[0].grad().FlatAt(0);
  });
  // Averaged gradients are identical across ranks, including for the rank
  // that skipped the branch locally.
  EXPECT_DOUBLE_EQ(branch_a_grad[0], branch_a_grad[1]);
  EXPECT_DOUBLE_EQ(branch_b_grad[0], branch_b_grad[1]);
}

TEST(UnusedParamsTest, MaskKeepsOptimizerMomentumFrozen) {
  // End-to-end: masked SGD leaves the unused branch's parameters and
  // momentum untouched, matching local-training behaviour.
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(5);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    model->set_use_branch_a(true);
    DistributedDataParallel ddp(model, ctx.process_group,
                                FindUnusedOptions());
    optim::Sgd opt(model->parameters(),
                   optim::Sgd::Options{.lr = 0.1, .momentum = 0.9});
    Tensor before = model->branch_b_parameters()[0].Clone();
    for (int step = 0; step < 3; ++step) {
      opt.ZeroGrad();
      Tensor x = Tensor::Full({2, 4}, step + 1.0);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      opt.Step(ddp.globally_used_mask());
    }
    Tensor after = model->branch_b_parameters()[0];
    for (int64_t i = 0; i < after.numel(); ++i) {
      EXPECT_EQ(after.FlatAt(i), before.FlatAt(i));
    }
  });
}

TEST(UnusedParamsTest, AlternatingBranchesAcrossIterations) {
  // The sub-graph changes every iteration (dynamic graphs, §3.2.3); DDP
  // must re-discover the participating set each forward.
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(6);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    DistributedDataParallel ddp(model, ctx.process_group,
                                FindUnusedOptions());
    for (int step = 0; step < 4; ++step) {
      model->set_use_branch_a(step % 2 == 0);
      model->ZeroGrad();
      Tensor x = Tensor::Full({2, 4}, 1.0);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      EXPECT_TRUE(ddp.reducer().backward_finalized()) << "step " << step;
      const auto& mask = ddp.globally_used_mask();
      const auto named = model->named_parameters();
      for (size_t i = 0; i < named.size(); ++i) {
        const bool is_a = named[i].first.find("branch_a") != std::string::npos;
        const bool is_b = named[i].first.find("branch_b") != std::string::npos;
        if (is_a) {
          EXPECT_EQ(mask[i], step % 2 == 0 ? 1 : 0);
        }
        if (is_b) {
          EXPECT_EQ(mask[i], step % 2 == 0 ? 0 : 1);
        }
      }
    }
  });
}

TEST(UnusedParamsTest, BitmapAllReduceCounted) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(7);
    auto model = std::make_shared<nn::BranchyNet>(4, &rng);
    DistributedDataParallel ddp(model, ctx.process_group,
                                FindUnusedOptions());
    Tensor x = Tensor::Full({2, 4}, 1.0);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    EXPECT_EQ(ddp.reducer().stats().bitmap_allreduces, 1u);
  });
}

TEST(UnusedParamsTest, FullyUsedModelHasAllOnesMask) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(8);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    DistributedDataParallel ddp(model, ctx.process_group,
                                FindUnusedOptions());
    Tensor x = Tensor::Full({2, 4}, 1.0);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    for (uint8_t used : ddp.globally_used_mask()) EXPECT_EQ(used, 1);
  });
}

}  // namespace
}  // namespace ddpkit::core
