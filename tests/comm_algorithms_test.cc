#include <gtest/gtest.h>

#include <vector>

#include "comm/algorithms.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::comm {
namespace {

std::vector<Tensor> MakeContributions(int world, int64_t n, Rng* rng) {
  std::vector<Tensor> tensors;
  for (int r = 0; r < world; ++r) {
    tensors.push_back(Tensor::Randn({n}, rng));
  }
  return tensors;
}

Tensor ReferenceSum(const std::vector<Tensor>& tensors) {
  // Double-precision reference, independent of algorithm order.
  const int64_t n = tensors[0].numel();
  Tensor out = Tensor::Zeros({n});
  std::vector<double> acc(static_cast<size_t>(n), 0.0);
  for (const Tensor& t : tensors) {
    for (int64_t i = 0; i < n; ++i) acc[static_cast<size_t>(i)] += t.FlatAt(i);
  }
  for (int64_t i = 0; i < n; ++i) out.FlatSet(i, acc[static_cast<size_t>(i)]);
  return out;
}

class AllReduceAlgorithmTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, int, int64_t>> {};

TEST_P(AllReduceAlgorithmTest, SumMatchesReference) {
  auto [algorithm, world, n] = GetParam();
  Rng rng(static_cast<uint64_t>(world * 1000 + n));
  auto originals = MakeContributions(world, n, &rng);
  std::vector<Tensor> tensors;
  for (const Tensor& t : originals) tensors.push_back(t.Clone());

  RunAllReduce(algorithm, ReduceOp::kSum, tensors);

  Tensor expected = ReferenceSum(originals);
  for (int r = 0; r < world; ++r) {
    EXPECT_LT(kernels::MaxAbsDiff(tensors[static_cast<size_t>(r)], expected),
              1e-4 * world)
        << "rank " << r;
  }
  // All ranks hold bit-identical results.
  for (int r = 1; r < world; ++r) {
    EXPECT_EQ(kernels::MaxAbsDiff(tensors[static_cast<size_t>(r)],
                                  tensors[0]),
              0.0);
  }
}

std::string AllReduceParamName(
    const ::testing::TestParamInfo<std::tuple<Algorithm, int, int64_t>>&
        info) {
  return std::string(AlgorithmName(std::get<0>(info.param))) + "_w" +
         std::to_string(std::get<1>(info.param)) + "_n" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllReduceAlgorithmTest,
    ::testing::Combine(
        ::testing::Values(Algorithm::kNaive, Algorithm::kRing,
                          Algorithm::kTree),
        ::testing::Values(1, 2, 3, 4, 7, 8),   // odd worlds stress chunking
        ::testing::Values(int64_t{1}, int64_t{5}, int64_t{64}, int64_t{1000},
                          int64_t{4097})),
    AllReduceParamName);

TEST(AllReduceTest, SumIsDeterministicAcrossRuns) {
  Rng rng1(42), rng2(42);
  auto a = MakeContributions(4, 1000, &rng1);
  auto b = MakeContributions(4, 1000, &rng2);
  RunAllReduce(Algorithm::kRing, ReduceOp::kSum, a);
  RunAllReduce(Algorithm::kRing, ReduceOp::kSum, b);
  EXPECT_EQ(kernels::MaxAbsDiff(a[0], b[0]), 0.0);
}

TEST(AllReduceTest, MaxOperator) {
  std::vector<Tensor> tensors = {
      Tensor::FromVector({1, 5, -3}, {3}),
      Tensor::FromVector({4, 2, -1}, {3}),
      Tensor::FromVector({0, 9, -7}, {3}),
  };
  RunAllReduce(Algorithm::kRing, ReduceOp::kMax, tensors);
  EXPECT_DOUBLE_EQ(tensors[0].FlatAt(0), 4.0);
  EXPECT_DOUBLE_EQ(tensors[1].FlatAt(1), 9.0);
  EXPECT_DOUBLE_EQ(tensors[2].FlatAt(2), -1.0);
}

TEST(AllReduceTest, BitwiseOrOnBitmaps) {
  // The globally-unused-parameter bitmap path (§3.2.3).
  std::vector<Tensor> bitmaps;
  for (int r = 0; r < 3; ++r) {
    bitmaps.push_back(Tensor::Zeros({5}, DType::kUInt8));
  }
  bitmaps[0].data<uint8_t>()[0] = 1;
  bitmaps[1].data<uint8_t>()[2] = 1;
  bitmaps[2].data<uint8_t>()[2] = 1;
  RunAllReduce(Algorithm::kNaive, ReduceOp::kBor, bitmaps);
  for (int r = 0; r < 3; ++r) {
    const uint8_t* bits = bitmaps[static_cast<size_t>(r)].data<uint8_t>();
    EXPECT_EQ(bits[0], 1);
    EXPECT_EQ(bits[1], 0);
    EXPECT_EQ(bits[2], 1);
    EXPECT_EQ(bits[3], 0);
  }
}

TEST(AllReduceTest, Int64Sum) {
  std::vector<Tensor> tensors = {
      Tensor::FromVectorInt64({1, 2}, {2}),
      Tensor::FromVectorInt64({10, 20}, {2}),
  };
  RunAllReduce(Algorithm::kTree, ReduceOp::kSum, tensors);
  EXPECT_EQ(tensors[0].data<int64_t>()[0], 11);
  EXPECT_EQ(tensors[1].data<int64_t>()[1], 22);
}

TEST(AllReduceTest, Fp16SumAccumulatesInFloat) {
  std::vector<Tensor> tensors;
  for (int r = 0; r < 4; ++r) {
    Tensor t = Tensor::Empty({3}, DType::kFloat16);
    for (int64_t i = 0; i < 3; ++i) t.FlatSet(i, 0.25 * (r + 1));
    tensors.push_back(t);
  }
  RunAllReduce(Algorithm::kRing, ReduceOp::kSum, tensors);
  // 0.25+0.5+0.75+1.0 = 2.5, exactly representable in half.
  for (const Tensor& t : tensors) {
    EXPECT_DOUBLE_EQ(t.FlatAt(0), 2.5);
  }
}

TEST(BroadcastTest, CopiesRootToAll) {
  std::vector<Tensor> tensors = {
      Tensor::Full({4}, 1.0),
      Tensor::Full({4}, 2.0),
      Tensor::Full({4}, 3.0),
  };
  RunBroadcast(tensors, /*root=*/1);
  for (const Tensor& t : tensors) {
    EXPECT_DOUBLE_EQ(t.FlatAt(0), 2.0);
  }
}

TEST(AllGatherTest, ConcatenatesInRankOrder) {
  std::vector<Tensor> inputs = {
      Tensor::Full({2}, 1.0),
      Tensor::Full({2}, 2.0),
      Tensor::Full({2}, 3.0),
  };
  std::vector<Tensor> outputs;
  for (int r = 0; r < 3; ++r) outputs.push_back(Tensor::Zeros({6}));
  RunAllGather(inputs, outputs);
  for (const Tensor& out : outputs) {
    EXPECT_DOUBLE_EQ(out.FlatAt(0), 1.0);
    EXPECT_DOUBLE_EQ(out.FlatAt(2), 2.0);
    EXPECT_DOUBLE_EQ(out.FlatAt(5), 3.0);
  }
}

TEST(AllReduceTest, SingleRankIsIdentity) {
  std::vector<Tensor> tensors = {Tensor::FromVector({1, 2, 3}, {3})};
  RunAllReduce(Algorithm::kRing, ReduceOp::kSum, tensors);
  EXPECT_DOUBLE_EQ(tensors[0].FlatAt(2), 3.0);
}

TEST(AllReduceTest, WorldLargerThanElements) {
  // 8 ranks, 3 elements: some ring chunks are empty.
  Rng rng(77);
  auto originals = MakeContributions(8, 3, &rng);
  std::vector<Tensor> tensors;
  for (const Tensor& t : originals) tensors.push_back(t.Clone());
  RunAllReduce(Algorithm::kRing, ReduceOp::kSum, tensors);
  Tensor expected = ReferenceSum(originals);
  EXPECT_LT(kernels::MaxAbsDiff(tensors[3], expected), 1e-4);
}

}  // namespace
}  // namespace ddpkit::comm
