#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "common/rng.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

namespace ddpkit::core {
namespace {

using comm::SimWorld;

std::vector<float> FlattenGrads(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      out.push_back(static_cast<float>(g.FlatAt(i)));
    }
  }
  return out;
}

TEST(BucketViewTest, GradAliasesBucketAfterConstruction) {
  SimWorld::Run(1, [&](SimWorld::RankContext& ctx) {
    Rng rng(1);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{4, 4}, &rng);
    DdpOptions options;
    options.gradient_as_bucket_view = true;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    for (const Tensor& p : model->parameters()) {
      ASSERT_TRUE(p.grad().defined());
      EXPECT_EQ(p.grad().shape(), p.shape());
    }
  });
}

TEST(BucketViewTest, GradientsMatchCopyPath) {
  constexpr int kWorld = 2;
  std::vector<float> with_views, without_views;
  auto run = [&](bool views, std::vector<float>* out) {
    SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
      Rng rng(2);
      auto model = std::make_shared<nn::Mlp>(
          std::vector<int64_t>{8, 8, 4}, &rng);
      DdpOptions options;
      options.gradient_as_bucket_view = views;
      options.bucket_cap_bytes = 256;  // several buckets
      DistributedDataParallel ddp(model, ctx.process_group, options);
      Rng data_rng(10 + ctx.rank);
      Tensor x = Tensor::Randn({3, 8}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
      if (ctx.rank == 0) *out = FlattenGrads(*model);
    });
  };
  run(true, &with_views);
  run(false, &without_views);
  EXPECT_EQ(with_views, without_views);
}

TEST(BucketViewTest, TrainingMatchesLocalReference) {
  constexpr int kWorld = 2;
  constexpr int kSteps = 4;
  const int64_t per_rank = 2;

  Rng data_rng(3);
  std::vector<Tensor> xs, ys;
  for (int s = 0; s < kSteps; ++s) {
    xs.push_back(Tensor::Randn({per_rank * kWorld, 5}, &data_rng));
    ys.push_back(Tensor::Randn({per_rank * kWorld, 2}, &data_rng));
  }

  Rng model_rng(7);
  nn::Mlp local({5, 6, 2}, &model_rng);
  optim::Sgd local_opt(local.parameters(),
                       optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
  for (int s = 0; s < kSteps; ++s) {
    local_opt.ZeroGrad();
    autograd::Backward(nn::MSELoss()(local.Forward(xs[s]), ys[s]));
    local_opt.Step();
  }

  std::vector<float> ddp_params;
  SimWorld::Run(kWorld, [&](SimWorld::RankContext& ctx) {
    Rng rng(7);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{5, 6, 2},
                                           &rng);
    DdpOptions options;
    options.gradient_as_bucket_view = true;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    optim::Sgd opt(model->parameters(),
                   optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});
    for (int s = 0; s < kSteps; ++s) {
      opt.ZeroGrad();
      Tensor x = xs[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
      Tensor y = ys[s].Narrow(0, ctx.rank * per_rank, per_rank).Clone();
      autograd::Backward(nn::MSELoss()(ddp.Forward(x), y));
      opt.Step();
    }
    if (ctx.rank == 0) {
      for (const Tensor& p : model->parameters()) {
        for (int64_t i = 0; i < p.numel(); ++i) {
          ddp_params.push_back(static_cast<float>(p.FlatAt(i)));
        }
      }
    }
  });

  size_t i = 0;
  for (const Tensor& p : local.parameters()) {
    for (int64_t j = 0; j < p.numel(); ++j, ++i) {
      EXPECT_NEAR(ddp_params[i], p.FlatAt(j), 5e-4);
    }
  }
}

TEST(BucketViewTest, NoSyncAccumulatesIntoViews) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(4);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{3, 1}, &rng);
    DdpOptions options;
    options.gradient_as_bucket_view = true;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    Tensor x = Tensor::Full({1, 3}, 1.0);
    {
      auto guard = ddp.no_sync();
      autograd::Backward(ops::SumAll(ddp.Forward(x)));
    }
    std::vector<float> after_one = FlattenGrads(*model);
    autograd::Backward(ops::SumAll(ddp.Forward(x)));  // synced
    std::vector<float> after_sync = FlattenGrads(*model);
    // Synced gradient = accumulated (2x) then averaged across equal ranks
    // (identity here since both ranks saw identical data).
    for (size_t i = 0; i < after_one.size(); ++i) {
      EXPECT_NEAR(after_sync[i], 2.0f * after_one[i], 1e-5);
    }
  });
}

TEST(BucketViewTest, ViewsSurviveBucketRebuild) {
  SimWorld::Run(2, [&](SimWorld::RankContext& ctx) {
    Rng rng(5);
    auto model = std::make_shared<nn::Mlp>(std::vector<int64_t>{6, 6, 2},
                                           &rng);
    DdpOptions options;
    options.gradient_as_bucket_view = true;
    options.bucket_cap_bytes = 128;
    DistributedDataParallel ddp(model, ctx.process_group, options);
    for (int step = 0; step < 3; ++step) {
      model->ZeroGrad();
      Tensor x = Tensor::Full({2, 6}, 1.0);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    }
    std::vector<float> before = FlattenGrads(*model);
    ASSERT_TRUE(ddp.reducer().RebuildBucketsFromTrace() ||
                true);  // rebuild may be a no-op if order matches
    std::vector<float> after = FlattenGrads(*model);
    EXPECT_EQ(before, after);  // values preserved across re-pointing
    // And training still works after the rebuild.
    model->ZeroGrad();
    Tensor x = Tensor::Full({2, 6}, 1.0);
    autograd::Backward(ops::MeanAll(ddp.Forward(x)));
    EXPECT_TRUE(ddp.reducer().backward_finalized());
  });
}

}  // namespace
}  // namespace ddpkit::core
