# Empty dependencies file for ddpkit_tests.
# This may be replaced when dependencies are built.
