
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_fuzz_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/autograd_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/autograd_fuzz_test.cc.o.d"
  "/root/repo/tests/autograd_gradcheck_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/autograd_gradcheck_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/autograd_gradcheck_test.cc.o.d"
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/checkpoint_resume_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/checkpoint_resume_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/checkpoint_resume_test.cc.o.d"
  "/root/repo/tests/cluster_sim_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/cluster_sim_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/cluster_sim_test.cc.o.d"
  "/root/repo/tests/cluster_sweep_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/cluster_sweep_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/cluster_sweep_test.cc.o.d"
  "/root/repo/tests/comm_algorithms_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/comm_algorithms_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/comm_algorithms_test.cc.o.d"
  "/root/repo/tests/comm_collectives_extra_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/comm_collectives_extra_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/comm_collectives_extra_test.cc.o.d"
  "/root/repo/tests/comm_mpi_backend_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/comm_mpi_backend_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/comm_mpi_backend_test.cc.o.d"
  "/root/repo/tests/comm_process_group_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/comm_process_group_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/comm_process_group_test.cc.o.d"
  "/root/repo/tests/comm_round_robin_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/comm_round_robin_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/comm_round_robin_test.cc.o.d"
  "/root/repo/tests/comm_store_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/comm_store_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/comm_store_test.cc.o.d"
  "/root/repo/tests/common_parallel_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/common_parallel_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/common_parallel_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_bucket_view_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_bucket_view_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_bucket_view_test.cc.o.d"
  "/root/repo/tests/core_bucketing_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_bucketing_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_bucketing_test.cc.o.d"
  "/root/repo/tests/core_compression_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_compression_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_compression_test.cc.o.d"
  "/root/repo/tests/core_ddp_equivalence_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_ddp_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_ddp_equivalence_test.cc.o.d"
  "/root/repo/tests/core_multi_device_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_multi_device_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_multi_device_test.cc.o.d"
  "/root/repo/tests/core_no_sync_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_no_sync_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_no_sync_test.cc.o.d"
  "/root/repo/tests/core_order_tracer_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_order_tracer_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_order_tracer_test.cc.o.d"
  "/root/repo/tests/core_reducer_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_reducer_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_reducer_test.cc.o.d"
  "/root/repo/tests/core_sweep_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_sweep_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_sweep_test.cc.o.d"
  "/root/repo/tests/core_trace_memory_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_trace_memory_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_trace_memory_test.cc.o.d"
  "/root/repo/tests/core_unused_params_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_unused_params_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_unused_params_test.cc.o.d"
  "/root/repo/tests/core_zero_optimizer_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/core_zero_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/core_zero_optimizer_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/integration_training_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/integration_training_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/integration_training_test.cc.o.d"
  "/root/repo/tests/nn_layers_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/nn_layers_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/nn_layers_test.cc.o.d"
  "/root/repo/tests/nn_module_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/nn_module_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/nn_module_test.cc.o.d"
  "/root/repo/tests/nn_serialization_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/nn_serialization_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/nn_serialization_test.cc.o.d"
  "/root/repo/tests/nn_stochastic_depth_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/nn_stochastic_depth_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/nn_stochastic_depth_test.cc.o.d"
  "/root/repo/tests/nn_zoo_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/nn_zoo_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/nn_zoo_test.cc.o.d"
  "/root/repo/tests/ops_extra_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/ops_extra_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/ops_extra_test.cc.o.d"
  "/root/repo/tests/optim_extras_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/optim_extras_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/optim_extras_test.cc.o.d"
  "/root/repo/tests/optim_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/optim_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/optim_test.cc.o.d"
  "/root/repo/tests/sim_cost_model_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/sim_cost_model_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/sim_cost_model_test.cc.o.d"
  "/root/repo/tests/sim_topology_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/sim_topology_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/sim_topology_test.cc.o.d"
  "/root/repo/tests/tensor_ops_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/tensor_ops_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/tensor_ops_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/ddpkit_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/ddpkit_tests.dir/tensor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_optim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_comm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
