# Empty dependencies file for ddpkit_trainer.
# This may be replaced when dependencies are built.
