file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_trainer.dir/ddpkit_trainer.cc.o"
  "CMakeFiles/ddpkit_trainer.dir/ddpkit_trainer.cc.o.d"
  "ddpkit_trainer"
  "ddpkit_trainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
