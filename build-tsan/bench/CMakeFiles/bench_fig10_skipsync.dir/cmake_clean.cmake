file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_skipsync.dir/bench_fig10_skipsync.cc.o"
  "CMakeFiles/bench_fig10_skipsync.dir/bench_fig10_skipsync.cc.o.d"
  "bench_fig10_skipsync"
  "bench_fig10_skipsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_skipsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
