# Empty compiler generated dependencies file for bench_fig10_skipsync.
# This may be replaced when dependencies are built.
