# Empty compiler generated dependencies file for bench_fig8_bucket32.
# This may be replaced when dependencies are built.
