file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bucket32.dir/bench_fig8_bucket32.cc.o"
  "CMakeFiles/bench_fig8_bucket32.dir/bench_fig8_bucket32.cc.o.d"
  "bench_fig8_bucket32"
  "bench_fig8_bucket32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bucket32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
