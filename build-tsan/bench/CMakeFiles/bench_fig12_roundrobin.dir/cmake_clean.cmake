file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_roundrobin.dir/bench_fig12_roundrobin.cc.o"
  "CMakeFiles/bench_fig12_roundrobin.dir/bench_fig12_roundrobin.cc.o.d"
  "bench_fig12_roundrobin"
  "bench_fig12_roundrobin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_roundrobin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
