# Empty compiler generated dependencies file for bench_fig12_roundrobin.
# This may be replaced when dependencies are built.
