# Empty dependencies file for bench_fig2_backward.
# This may be replaced when dependencies are built.
