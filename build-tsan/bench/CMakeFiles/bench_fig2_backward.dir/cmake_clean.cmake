file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_backward.dir/bench_fig2_backward.cc.o"
  "CMakeFiles/bench_fig2_backward.dir/bench_fig2_backward.cc.o.d"
  "bench_fig2_backward"
  "bench_fig2_backward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_backward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
