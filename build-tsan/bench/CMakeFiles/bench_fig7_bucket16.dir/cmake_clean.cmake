file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_bucket16.dir/bench_fig7_bucket16.cc.o"
  "CMakeFiles/bench_fig7_bucket16.dir/bench_fig7_bucket16.cc.o.d"
  "bench_fig7_bucket16"
  "bench_fig7_bucket16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_bucket16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
