# Empty dependencies file for bench_fig7_bucket16.
# This may be replaced when dependencies are built.
