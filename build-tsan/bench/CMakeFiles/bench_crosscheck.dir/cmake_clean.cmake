file(REMOVE_RECURSE
  "CMakeFiles/bench_crosscheck.dir/bench_crosscheck.cc.o"
  "CMakeFiles/bench_crosscheck.dir/bench_crosscheck.cc.o.d"
  "bench_crosscheck"
  "bench_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
