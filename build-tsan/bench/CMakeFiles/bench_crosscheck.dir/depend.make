# Empty dependencies file for bench_crosscheck.
# This may be replaced when dependencies are built.
