file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_allreduce.dir/bench_fig2_allreduce.cc.o"
  "CMakeFiles/bench_fig2_allreduce.dir/bench_fig2_allreduce.cc.o.d"
  "bench_fig2_allreduce"
  "bench_fig2_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
