# Empty dependencies file for bench_fig2_allreduce.
# This may be replaced when dependencies are built.
