file(REMOVE_RECURSE
  "CMakeFiles/bucket_tuning.dir/bucket_tuning.cpp.o"
  "CMakeFiles/bucket_tuning.dir/bucket_tuning.cpp.o.d"
  "bucket_tuning"
  "bucket_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
