# Empty dependencies file for bucket_tuning.
# This may be replaced when dependencies are built.
