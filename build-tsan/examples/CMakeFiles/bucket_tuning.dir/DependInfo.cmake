
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bucket_tuning.cpp" "examples/CMakeFiles/bucket_tuning.dir/bucket_tuning.cpp.o" "gcc" "examples/CMakeFiles/bucket_tuning.dir/bucket_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_optim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_comm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
