# Empty compiler generated dependencies file for parameter_averaging.
# This may be replaced when dependencies are built.
