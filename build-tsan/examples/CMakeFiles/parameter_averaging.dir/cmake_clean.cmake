file(REMOVE_RECURSE
  "CMakeFiles/parameter_averaging.dir/parameter_averaging.cpp.o"
  "CMakeFiles/parameter_averaging.dir/parameter_averaging.cpp.o.d"
  "parameter_averaging"
  "parameter_averaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_averaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
