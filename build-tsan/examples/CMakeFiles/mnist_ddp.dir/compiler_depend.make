# Empty compiler generated dependencies file for mnist_ddp.
# This may be replaced when dependencies are built.
