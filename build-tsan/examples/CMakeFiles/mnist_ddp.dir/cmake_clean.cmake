file(REMOVE_RECURSE
  "CMakeFiles/mnist_ddp.dir/mnist_ddp.cpp.o"
  "CMakeFiles/mnist_ddp.dir/mnist_ddp.cpp.o.d"
  "mnist_ddp"
  "mnist_ddp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_ddp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
