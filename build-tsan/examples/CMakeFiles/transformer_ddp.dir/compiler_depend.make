# Empty compiler generated dependencies file for transformer_ddp.
# This may be replaced when dependencies are built.
