file(REMOVE_RECURSE
  "CMakeFiles/transformer_ddp.dir/transformer_ddp.cpp.o"
  "CMakeFiles/transformer_ddp.dir/transformer_ddp.cpp.o.d"
  "transformer_ddp"
  "transformer_ddp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_ddp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
