file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_optim.dir/optim/adam.cc.o"
  "CMakeFiles/ddpkit_optim.dir/optim/adam.cc.o.d"
  "CMakeFiles/ddpkit_optim.dir/optim/clip.cc.o"
  "CMakeFiles/ddpkit_optim.dir/optim/clip.cc.o.d"
  "CMakeFiles/ddpkit_optim.dir/optim/lr_scheduler.cc.o"
  "CMakeFiles/ddpkit_optim.dir/optim/lr_scheduler.cc.o.d"
  "CMakeFiles/ddpkit_optim.dir/optim/optimizer.cc.o"
  "CMakeFiles/ddpkit_optim.dir/optim/optimizer.cc.o.d"
  "CMakeFiles/ddpkit_optim.dir/optim/sgd.cc.o"
  "CMakeFiles/ddpkit_optim.dir/optim/sgd.cc.o.d"
  "libddpkit_optim.a"
  "libddpkit_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
