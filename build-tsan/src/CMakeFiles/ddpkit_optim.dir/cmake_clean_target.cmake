file(REMOVE_RECURSE
  "libddpkit_optim.a"
)
