# Empty dependencies file for ddpkit_optim.
# This may be replaced when dependencies are built.
