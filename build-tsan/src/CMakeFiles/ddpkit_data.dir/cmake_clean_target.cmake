file(REMOVE_RECURSE
  "libddpkit_data.a"
)
