
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/distributed_sampler.cc" "src/CMakeFiles/ddpkit_data.dir/data/distributed_sampler.cc.o" "gcc" "src/CMakeFiles/ddpkit_data.dir/data/distributed_sampler.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/ddpkit_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/ddpkit_data.dir/data/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
