# Empty dependencies file for ddpkit_data.
# This may be replaced when dependencies are built.
