file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_data.dir/data/distributed_sampler.cc.o"
  "CMakeFiles/ddpkit_data.dir/data/distributed_sampler.cc.o.d"
  "CMakeFiles/ddpkit_data.dir/data/synthetic.cc.o"
  "CMakeFiles/ddpkit_data.dir/data/synthetic.cc.o.d"
  "libddpkit_data.a"
  "libddpkit_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
