file(REMOVE_RECURSE
  "libddpkit_core.a"
)
