file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_core.dir/core/bucketing.cc.o"
  "CMakeFiles/ddpkit_core.dir/core/bucketing.cc.o.d"
  "CMakeFiles/ddpkit_core.dir/core/compression.cc.o"
  "CMakeFiles/ddpkit_core.dir/core/compression.cc.o.d"
  "CMakeFiles/ddpkit_core.dir/core/distributed_data_parallel.cc.o"
  "CMakeFiles/ddpkit_core.dir/core/distributed_data_parallel.cc.o.d"
  "CMakeFiles/ddpkit_core.dir/core/memory.cc.o"
  "CMakeFiles/ddpkit_core.dir/core/memory.cc.o.d"
  "CMakeFiles/ddpkit_core.dir/core/order_tracer.cc.o"
  "CMakeFiles/ddpkit_core.dir/core/order_tracer.cc.o.d"
  "CMakeFiles/ddpkit_core.dir/core/reducer.cc.o"
  "CMakeFiles/ddpkit_core.dir/core/reducer.cc.o.d"
  "CMakeFiles/ddpkit_core.dir/core/trace.cc.o"
  "CMakeFiles/ddpkit_core.dir/core/trace.cc.o.d"
  "CMakeFiles/ddpkit_core.dir/core/zero_redundancy_optimizer.cc.o"
  "CMakeFiles/ddpkit_core.dir/core/zero_redundancy_optimizer.cc.o.d"
  "libddpkit_core.a"
  "libddpkit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
