
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bucketing.cc" "src/CMakeFiles/ddpkit_core.dir/core/bucketing.cc.o" "gcc" "src/CMakeFiles/ddpkit_core.dir/core/bucketing.cc.o.d"
  "/root/repo/src/core/compression.cc" "src/CMakeFiles/ddpkit_core.dir/core/compression.cc.o" "gcc" "src/CMakeFiles/ddpkit_core.dir/core/compression.cc.o.d"
  "/root/repo/src/core/distributed_data_parallel.cc" "src/CMakeFiles/ddpkit_core.dir/core/distributed_data_parallel.cc.o" "gcc" "src/CMakeFiles/ddpkit_core.dir/core/distributed_data_parallel.cc.o.d"
  "/root/repo/src/core/memory.cc" "src/CMakeFiles/ddpkit_core.dir/core/memory.cc.o" "gcc" "src/CMakeFiles/ddpkit_core.dir/core/memory.cc.o.d"
  "/root/repo/src/core/order_tracer.cc" "src/CMakeFiles/ddpkit_core.dir/core/order_tracer.cc.o" "gcc" "src/CMakeFiles/ddpkit_core.dir/core/order_tracer.cc.o.d"
  "/root/repo/src/core/reducer.cc" "src/CMakeFiles/ddpkit_core.dir/core/reducer.cc.o" "gcc" "src/CMakeFiles/ddpkit_core.dir/core/reducer.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/CMakeFiles/ddpkit_core.dir/core/trace.cc.o" "gcc" "src/CMakeFiles/ddpkit_core.dir/core/trace.cc.o.d"
  "/root/repo/src/core/zero_redundancy_optimizer.cc" "src/CMakeFiles/ddpkit_core.dir/core/zero_redundancy_optimizer.cc.o" "gcc" "src/CMakeFiles/ddpkit_core.dir/core/zero_redundancy_optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_comm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_optim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
