# Empty compiler generated dependencies file for ddpkit_core.
# This may be replaced when dependencies are built.
