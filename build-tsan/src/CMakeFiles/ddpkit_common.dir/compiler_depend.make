# Empty compiler generated dependencies file for ddpkit_common.
# This may be replaced when dependencies are built.
