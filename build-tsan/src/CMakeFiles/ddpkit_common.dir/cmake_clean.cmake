file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_common.dir/common/logging.cc.o"
  "CMakeFiles/ddpkit_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ddpkit_common.dir/common/parallel.cc.o"
  "CMakeFiles/ddpkit_common.dir/common/parallel.cc.o.d"
  "CMakeFiles/ddpkit_common.dir/common/rng.cc.o"
  "CMakeFiles/ddpkit_common.dir/common/rng.cc.o.d"
  "CMakeFiles/ddpkit_common.dir/common/stats.cc.o"
  "CMakeFiles/ddpkit_common.dir/common/stats.cc.o.d"
  "CMakeFiles/ddpkit_common.dir/common/status.cc.o"
  "CMakeFiles/ddpkit_common.dir/common/status.cc.o.d"
  "libddpkit_common.a"
  "libddpkit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
