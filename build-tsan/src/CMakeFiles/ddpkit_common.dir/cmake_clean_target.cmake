file(REMOVE_RECURSE
  "libddpkit_common.a"
)
