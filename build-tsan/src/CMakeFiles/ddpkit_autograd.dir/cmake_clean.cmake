file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_autograd.dir/autograd/engine.cc.o"
  "CMakeFiles/ddpkit_autograd.dir/autograd/engine.cc.o.d"
  "CMakeFiles/ddpkit_autograd.dir/autograd/grad_accumulator.cc.o"
  "CMakeFiles/ddpkit_autograd.dir/autograd/grad_accumulator.cc.o.d"
  "CMakeFiles/ddpkit_autograd.dir/autograd/graph_utils.cc.o"
  "CMakeFiles/ddpkit_autograd.dir/autograd/graph_utils.cc.o.d"
  "CMakeFiles/ddpkit_autograd.dir/autograd/node.cc.o"
  "CMakeFiles/ddpkit_autograd.dir/autograd/node.cc.o.d"
  "CMakeFiles/ddpkit_autograd.dir/autograd/ops.cc.o"
  "CMakeFiles/ddpkit_autograd.dir/autograd/ops.cc.o.d"
  "libddpkit_autograd.a"
  "libddpkit_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
