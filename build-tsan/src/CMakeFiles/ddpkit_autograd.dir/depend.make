# Empty dependencies file for ddpkit_autograd.
# This may be replaced when dependencies are built.
