file(REMOVE_RECURSE
  "libddpkit_autograd.a"
)
