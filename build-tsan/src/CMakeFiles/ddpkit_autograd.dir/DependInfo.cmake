
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/engine.cc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/engine.cc.o" "gcc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/engine.cc.o.d"
  "/root/repo/src/autograd/grad_accumulator.cc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/grad_accumulator.cc.o" "gcc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/grad_accumulator.cc.o.d"
  "/root/repo/src/autograd/graph_utils.cc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/graph_utils.cc.o" "gcc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/graph_utils.cc.o.d"
  "/root/repo/src/autograd/node.cc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/node.cc.o" "gcc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/node.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/ddpkit_autograd.dir/autograd/ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
