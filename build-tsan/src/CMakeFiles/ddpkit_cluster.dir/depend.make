# Empty dependencies file for ddpkit_cluster.
# This may be replaced when dependencies are built.
