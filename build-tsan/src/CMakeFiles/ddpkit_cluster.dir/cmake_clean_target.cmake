file(REMOVE_RECURSE
  "libddpkit_cluster.a"
)
