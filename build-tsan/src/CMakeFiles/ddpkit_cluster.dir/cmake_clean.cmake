file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_cluster.dir/cluster/cluster_sim.cc.o"
  "CMakeFiles/ddpkit_cluster.dir/cluster/cluster_sim.cc.o.d"
  "CMakeFiles/ddpkit_cluster.dir/cluster/model_specs.cc.o"
  "CMakeFiles/ddpkit_cluster.dir/cluster/model_specs.cc.o.d"
  "libddpkit_cluster.a"
  "libddpkit_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
