file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_tensor.dir/tensor/storage.cc.o"
  "CMakeFiles/ddpkit_tensor.dir/tensor/storage.cc.o.d"
  "CMakeFiles/ddpkit_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/ddpkit_tensor.dir/tensor/tensor.cc.o.d"
  "CMakeFiles/ddpkit_tensor.dir/tensor/tensor_ops.cc.o"
  "CMakeFiles/ddpkit_tensor.dir/tensor/tensor_ops.cc.o.d"
  "libddpkit_tensor.a"
  "libddpkit_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
