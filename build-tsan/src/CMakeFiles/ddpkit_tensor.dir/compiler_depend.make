# Empty compiler generated dependencies file for ddpkit_tensor.
# This may be replaced when dependencies are built.
