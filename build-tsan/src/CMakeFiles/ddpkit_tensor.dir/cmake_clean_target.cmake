file(REMOVE_RECURSE
  "libddpkit_tensor.a"
)
