
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/comm_cost_model.cc" "src/CMakeFiles/ddpkit_sim.dir/sim/comm_cost_model.cc.o" "gcc" "src/CMakeFiles/ddpkit_sim.dir/sim/comm_cost_model.cc.o.d"
  "/root/repo/src/sim/compute_cost_model.cc" "src/CMakeFiles/ddpkit_sim.dir/sim/compute_cost_model.cc.o" "gcc" "src/CMakeFiles/ddpkit_sim.dir/sim/compute_cost_model.cc.o.d"
  "/root/repo/src/sim/jitter.cc" "src/CMakeFiles/ddpkit_sim.dir/sim/jitter.cc.o" "gcc" "src/CMakeFiles/ddpkit_sim.dir/sim/jitter.cc.o.d"
  "/root/repo/src/sim/topology.cc" "src/CMakeFiles/ddpkit_sim.dir/sim/topology.cc.o" "gcc" "src/CMakeFiles/ddpkit_sim.dir/sim/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
