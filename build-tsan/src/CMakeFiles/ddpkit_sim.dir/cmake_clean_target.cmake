file(REMOVE_RECURSE
  "libddpkit_sim.a"
)
