# Empty dependencies file for ddpkit_sim.
# This may be replaced when dependencies are built.
