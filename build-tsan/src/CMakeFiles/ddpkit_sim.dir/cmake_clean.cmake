file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_sim.dir/sim/comm_cost_model.cc.o"
  "CMakeFiles/ddpkit_sim.dir/sim/comm_cost_model.cc.o.d"
  "CMakeFiles/ddpkit_sim.dir/sim/compute_cost_model.cc.o"
  "CMakeFiles/ddpkit_sim.dir/sim/compute_cost_model.cc.o.d"
  "CMakeFiles/ddpkit_sim.dir/sim/jitter.cc.o"
  "CMakeFiles/ddpkit_sim.dir/sim/jitter.cc.o.d"
  "CMakeFiles/ddpkit_sim.dir/sim/topology.cc.o"
  "CMakeFiles/ddpkit_sim.dir/sim/topology.cc.o.d"
  "libddpkit_sim.a"
  "libddpkit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
