# Empty compiler generated dependencies file for ddpkit_comm.
# This may be replaced when dependencies are built.
