file(REMOVE_RECURSE
  "libddpkit_comm.a"
)
