file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_comm.dir/comm/algorithms.cc.o"
  "CMakeFiles/ddpkit_comm.dir/comm/algorithms.cc.o.d"
  "CMakeFiles/ddpkit_comm.dir/comm/process_group.cc.o"
  "CMakeFiles/ddpkit_comm.dir/comm/process_group.cc.o.d"
  "CMakeFiles/ddpkit_comm.dir/comm/process_group_sim.cc.o"
  "CMakeFiles/ddpkit_comm.dir/comm/process_group_sim.cc.o.d"
  "CMakeFiles/ddpkit_comm.dir/comm/round_robin_process_group.cc.o"
  "CMakeFiles/ddpkit_comm.dir/comm/round_robin_process_group.cc.o.d"
  "CMakeFiles/ddpkit_comm.dir/comm/sim_world.cc.o"
  "CMakeFiles/ddpkit_comm.dir/comm/sim_world.cc.o.d"
  "CMakeFiles/ddpkit_comm.dir/comm/store.cc.o"
  "CMakeFiles/ddpkit_comm.dir/comm/store.cc.o.d"
  "CMakeFiles/ddpkit_comm.dir/comm/work.cc.o"
  "CMakeFiles/ddpkit_comm.dir/comm/work.cc.o.d"
  "libddpkit_comm.a"
  "libddpkit_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
