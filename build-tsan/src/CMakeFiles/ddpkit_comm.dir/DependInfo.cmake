
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/algorithms.cc" "src/CMakeFiles/ddpkit_comm.dir/comm/algorithms.cc.o" "gcc" "src/CMakeFiles/ddpkit_comm.dir/comm/algorithms.cc.o.d"
  "/root/repo/src/comm/process_group.cc" "src/CMakeFiles/ddpkit_comm.dir/comm/process_group.cc.o" "gcc" "src/CMakeFiles/ddpkit_comm.dir/comm/process_group.cc.o.d"
  "/root/repo/src/comm/process_group_sim.cc" "src/CMakeFiles/ddpkit_comm.dir/comm/process_group_sim.cc.o" "gcc" "src/CMakeFiles/ddpkit_comm.dir/comm/process_group_sim.cc.o.d"
  "/root/repo/src/comm/round_robin_process_group.cc" "src/CMakeFiles/ddpkit_comm.dir/comm/round_robin_process_group.cc.o" "gcc" "src/CMakeFiles/ddpkit_comm.dir/comm/round_robin_process_group.cc.o.d"
  "/root/repo/src/comm/sim_world.cc" "src/CMakeFiles/ddpkit_comm.dir/comm/sim_world.cc.o" "gcc" "src/CMakeFiles/ddpkit_comm.dir/comm/sim_world.cc.o.d"
  "/root/repo/src/comm/store.cc" "src/CMakeFiles/ddpkit_comm.dir/comm/store.cc.o" "gcc" "src/CMakeFiles/ddpkit_comm.dir/comm/store.cc.o.d"
  "/root/repo/src/comm/work.cc" "src/CMakeFiles/ddpkit_comm.dir/comm/work.cc.o" "gcc" "src/CMakeFiles/ddpkit_comm.dir/comm/work.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
