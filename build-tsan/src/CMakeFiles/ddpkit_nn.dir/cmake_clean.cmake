file(REMOVE_RECURSE
  "CMakeFiles/ddpkit_nn.dir/nn/layers.cc.o"
  "CMakeFiles/ddpkit_nn.dir/nn/layers.cc.o.d"
  "CMakeFiles/ddpkit_nn.dir/nn/losses.cc.o"
  "CMakeFiles/ddpkit_nn.dir/nn/losses.cc.o.d"
  "CMakeFiles/ddpkit_nn.dir/nn/module.cc.o"
  "CMakeFiles/ddpkit_nn.dir/nn/module.cc.o.d"
  "CMakeFiles/ddpkit_nn.dir/nn/serialization.cc.o"
  "CMakeFiles/ddpkit_nn.dir/nn/serialization.cc.o.d"
  "CMakeFiles/ddpkit_nn.dir/nn/stochastic_depth.cc.o"
  "CMakeFiles/ddpkit_nn.dir/nn/stochastic_depth.cc.o.d"
  "CMakeFiles/ddpkit_nn.dir/nn/zoo.cc.o"
  "CMakeFiles/ddpkit_nn.dir/nn/zoo.cc.o.d"
  "libddpkit_nn.a"
  "libddpkit_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpkit_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
