# Empty dependencies file for ddpkit_nn.
# This may be replaced when dependencies are built.
