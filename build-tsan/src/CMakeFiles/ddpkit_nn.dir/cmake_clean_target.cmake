file(REMOVE_RECURSE
  "libddpkit_nn.a"
)
