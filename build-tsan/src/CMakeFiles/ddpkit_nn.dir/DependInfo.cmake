
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/ddpkit_nn.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/ddpkit_nn.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/CMakeFiles/ddpkit_nn.dir/nn/losses.cc.o" "gcc" "src/CMakeFiles/ddpkit_nn.dir/nn/losses.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/ddpkit_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/ddpkit_nn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/CMakeFiles/ddpkit_nn.dir/nn/serialization.cc.o" "gcc" "src/CMakeFiles/ddpkit_nn.dir/nn/serialization.cc.o.d"
  "/root/repo/src/nn/stochastic_depth.cc" "src/CMakeFiles/ddpkit_nn.dir/nn/stochastic_depth.cc.o" "gcc" "src/CMakeFiles/ddpkit_nn.dir/nn/stochastic_depth.cc.o.d"
  "/root/repo/src/nn/zoo.cc" "src/CMakeFiles/ddpkit_nn.dir/nn/zoo.cc.o" "gcc" "src/CMakeFiles/ddpkit_nn.dir/nn/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/ddpkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
